"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation flips one modeled hardware knob and verifies the paper's
prediction about it:

* **ASIC vs FPGA controller** — §4.2 anticipates "an ASIC implementation
  of the CXL memory device will result in improved latency ... [but] it
  will still be higher than that of regular cross-NUMA access".
* **CXL device channel count** — §6 expects interleaving to pay off
  "especially when the CXL memory device has more memory channels".
* **Write-buffer depth** — §4.3.2 pins the nt-store sweet spot on "the
  memory buffer inside the CXL memory device".
* **Flushed-line penalty** — §4.2 attributes part of the probe latency
  to the coherence handshake on flushed lines [31].
"""

from dataclasses import replace

import pytest

from repro import build_system, combined_testbed
from repro.config import combined_testbed as _combined
from repro.cpu import AccessKind, MemoryScheme
from repro.cxl.controller import CxlDeviceController
from repro.mem import AccessPattern
from repro.perfmodel import LatencyModel, ThroughputModel
from repro.perfmodel.contention import nt_store_sweet_spot_derate

L8, R1, CXL = (MemoryScheme.DDR5_L8, MemoryScheme.DDR5_R1,
               MemoryScheme.CXL)


def system_with_cxl(cxl_config):
    base = _combined()
    return build_system(replace(base, cxl_devices=(cxl_config,)))


def test_bench_ablation_asic_controller(benchmark):
    """ASIC removes the FPGA penalty but CXL stays slower than NUMA."""

    def run():
        base = combined_testbed()
        fpga = LatencyModel(build_system(base))
        asic = LatencyModel(system_with_cxl(base.cxl.as_asic()))
        return (fpga.pointer_chase_ns(CXL), asic.pointer_chase_ns(CXL),
                asic.pointer_chase_ns(R1))

    fpga_chase, asic_chase, r1_chase = benchmark(run)
    print(f"\nptr-chase: FPGA={fpga_chase:.0f}ns ASIC={asic_chase:.0f}ns "
          f"R1={r1_chase:.0f}ns")
    assert asic_chase < fpga_chase                 # ASIC improves latency
    assert asic_chase > r1_chase                   # but protocol overhead remains


def test_bench_ablation_cxl_channel_count(benchmark):
    """More device channels lift the CXL ceiling — until PCIe binds.

    A second DDR4 channel raises load bandwidth substantially; beyond
    that the x16 Gen5 link's flit framing (64 B payload per 136 B of
    DRS wire traffic) becomes the bottleneck, so 4 channels buy nothing
    more — exactly the regime where the paper expects multi-device
    interleaving to matter instead.
    """

    def run():
        base = combined_testbed()
        results = {}
        for channels in (1, 2, 4):
            dram = base.cxl.dram.with_channels(channels) if channels > 1 \
                else base.cxl.dram
            system = system_with_cxl(replace(base.cxl, dram=dram))
            model = ThroughputModel(system)
            results[channels] = model.bandwidth(
                CXL, AccessKind.LOAD, threads=16).gb_per_s
        return results

    by_channels = benchmark(run)
    print(f"\nCXL load GB/s by device channels (16 threads): "
          f"{by_channels}")
    assert by_channels[2] > 1.2 * by_channels[1]
    assert by_channels[4] == pytest.approx(by_channels[2], rel=0.05)


def test_bench_ablation_write_buffer_depth(benchmark):
    """A deeper device write buffer tolerates more nt-store writers."""

    def run():
        base = combined_testbed().cxl
        shallow = CxlDeviceController(base)
        deep = CxlDeviceController(replace(base,
                                           write_buffer_entries=512))
        return (shallow.write_buffer_derate(8),
                deep.write_buffer_derate(8))

    shallow_derate, deep_derate = benchmark(run)
    print(f"\n8-writer derate: 128-entry={shallow_derate:.2f} "
          f"512-entry={deep_derate:.2f}")
    assert deep_derate > shallow_derate


def test_bench_ablation_nt_buffer_sweet_spot(benchmark):
    """The sweet spot tracks the buffer size (threads x block ~ buffer)."""

    def run():
        blocks = [4096, 8192, 16384, 32768, 65536, 131072]

        def peak_block(buffer_bytes):
            curve = {b: nt_store_sweet_spot_derate(2, b, buffer_bytes)
                     * b for b in blocks}       # proxy for throughput
            return max(blocks,
                       key=lambda b: nt_store_sweet_spot_derate(
                           2, b, buffer_bytes) * min(b, 32768))

        return peak_block(64 * 1024), peak_block(256 * 1024)

    small_peak, large_peak = benchmark(run)
    print(f"\n2-thread sweet spot: 64KiB buffer -> {small_peak}B, "
          f"256KiB buffer -> {large_peak}B")
    assert large_peak >= small_peak


def test_bench_ablation_flushed_line_penalty(benchmark):
    """Removing the coherence handshake shrinks the probe latency gap
    between flushed loads and pointer chasing."""

    def run():
        base = combined_testbed()
        with_penalty = LatencyModel(build_system(base))
        without = LatencyModel(build_system(
            replace(base, flushed_line_penalty_ns=0.0)))
        return (with_penalty.flushed_load_ns(L8)
                - with_penalty.pointer_chase_ns(L8),
                without.flushed_load_ns(L8)
                - without.pointer_chase_ns(L8))

    gap_with, gap_without = benchmark(run)
    print(f"\nflushed-vs-chase gap: with handshake={gap_with:.0f}ns, "
          f"without={gap_without:.0f}ns")
    assert gap_with > gap_without


def test_bench_mechanism_e2e_cxl_sweep(benchmark):
    """Fig 3b's shape from mechanism alone: the end-to-end DES (host
    MLP -> flits -> DDR4 banks) with no tuned efficiency constants."""
    from repro.cxl.e2e_sim import CxlEndToEndSim

    def run():
        return CxlEndToEndSim().sweep([1, 4, 8, 16],
                                      lines_per_thread=800)

    sweep = benchmark(run)
    print("\nmechanism-only CXL load GB/s: "
          + "  ".join(f"{n}T={r.gb_per_s:.1f}"
                      for n, r in sweep.items()))
    assert sweep[16].gb_per_s == pytest.approx(21.3, rel=0.05)


def test_bench_ablation_random_efficiency(benchmark):
    """Random-access efficiency drives the Fig-5 block-size spread."""

    def run():
        system = build_system(combined_testbed())
        model = ThroughputModel(system)
        small = model.bandwidth(L8, AccessKind.LOAD,
                                AccessPattern.RANDOM_BLOCK, threads=8,
                                block_bytes=1024)
        large = model.bandwidth(L8, AccessKind.LOAD,
                                AccessPattern.RANDOM_BLOCK, threads=8,
                                block_bytes=131072)
        return small.gb_per_s, large.gb_per_s

    small_bw, large_bw = benchmark(run)
    print(f"\nL8 random loads: 1KiB={small_bw:.1f} vs "
          f"128KiB={large_bw:.1f} GB/s")
    assert large_bw > 1.5 * small_bw
