"""Fig 2: access-latency probes and the pointer-chase staircase."""

from repro.experiments import get


def test_bench_fig2(benchmark):
    result = benchmark(lambda: get("fig2").run(fast=True))
    print(result.render())
    assert result.passed
