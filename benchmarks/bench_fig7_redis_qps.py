"""Fig 7: Redis max sustainable QPS table."""

from repro.experiments import get


def test_bench_fig7(benchmark):
    result = benchmark(lambda: get("fig7").run(fast=True))
    print(result.render())
    assert result.passed
