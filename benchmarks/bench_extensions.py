"""Benches for the extension studies built on the paper's outlook.

* tiering vs the weighted-interleave baseline (§5's baseline claim);
* near-memory inline acceleration (§6's final guideline);
* multi-device pooling (§5.2's bandwidth anticipation).
"""

from repro import build_system, combined_testbed
from repro.apps.dlrm import DlrmInferenceStudy
from repro.apps.dlrm.nearmem import NearMemoryReduction
from repro.config import pooled_cxl_testbed
from repro.tiering import (
    MigrationEngine,
    NoMigration,
    PageMigrator,
    TieringSimulator,
    TppLikePolicy,
)


def test_bench_ext_tiering_vs_baseline(benchmark):
    system = build_system(combined_testbed())
    simulator = TieringSimulator(system, num_pages=4096,
                                 dram_capacity_pages=1024,
                                 accesses_per_epoch=20_000)
    migrator = PageMigrator(system, engine=MigrationEngine.DSA_ASYNC)

    def run():
        static = simulator.run(NoMigration(), migrator, epochs=16)
        tpp = simulator.run(TppLikePolicy(max_migrations_per_epoch=512),
                            migrator, epochs=16)
        return (simulator.steady_state_ns(static),
                simulator.steady_state_ns(tpp))

    static_ns, tpp_ns = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\neffective ns/access: weighted-interleave={static_ns:.0f} "
          f"TPP-like={tpp_ns:.0f}")
    assert tpp_ns < static_ns       # tiering beats the §5 baseline


def test_bench_ext_nearmem_acceleration(benchmark):
    study = DlrmInferenceStudy(combined_testbed())

    def run():
        kernel = study.kernel("cxl")
        nearmem = NearMemoryReduction(kernel)
        return (kernel.throughput(16), nearmem.throughput(16),
                nearmem.link_traffic_reduction())

    host, offload, reduction = benchmark(run)
    print(f"\nDLRM @16T: host-gather={host:.0f} near-mem={offload:.0f} "
          f"inf/s; link traffic /{reduction:.0f}")
    assert offload > host


def test_bench_ext_device_pooling(benchmark):
    def run():
        bounds = {}
        for devices in (1, 2, 4):
            study = DlrmInferenceStudy(pooled_cxl_testbed(devices))
            bounds[devices] = study.kernel("cxl-pool").throughput(32)
        return bounds

    bounds = benchmark(run)
    print(f"\nDLRM 32T inf/s by pooled devices: "
          f"{ {k: round(v) for k, v in bounds.items()} }")
    assert bounds[2] > 1.8 * bounds[1]
