"""Shared fixtures for the benchmark harness.

Each ``bench_*`` module regenerates one of the paper's tables/figures
under pytest-benchmark timing.  Run with::

    pytest benchmarks/ --benchmark-only

Benchmarks print the regenerated rows/series (``-s`` to see them) and
assert the experiment's shape checks, so a benchmark run doubles as a
full reproduction pass.
"""

import pytest

from repro import build_system, combined_testbed


@pytest.fixture(scope="session")
def system():
    """One combined testbed shared across benchmark modules."""
    return build_system(combined_testbed())
