"""Raw DES engine throughput: dispatched events per second.

Figure wall times conflate the engine with app-model work (RNG draws,
numpy latency tables, recorder updates).  This microbenchmark isolates
the scheduler itself: ``TIMERS`` self-rescheduling callbacks with
pre-drawn exponential gaps, so the measured loop is exactly
``schedule -> dispatch -> callback`` with a trivial callback body.
The workload exercises both calendar-queue regimes — in-run insertion
(a short gap lands before the current run's horizon) and future-append
(a long gap lands past it) — which is the same shape the app models
drive.

Run standalone::

    PYTHONPATH=src python benchmarks/engine_events_per_sec.py
    PYTHONPATH=src python benchmarks/engine_events_per_sec.py \
        --scheduler both --events 500000

or let ``bench_to_json.py`` fold the number into the
``engine.events_per_sec`` field of BENCH_<label>.json (see
docs/PERFORMANCE.md).
"""

from __future__ import annotations

import argparse
import sys
import time

DEFAULT_EVENTS = 200_000
TIMERS = 64
SEED = 7


def run_engine_load(events: int, *, scheduler: str | None = None,
                    timers: int = TIMERS) -> tuple[int, float]:
    """Dispatch ~``events`` timer events; return (dispatched, seconds).

    Each timer callback reschedules itself with the next pre-drawn
    exponential gap until the shared budget runs out, so the engine
    sees a steady interleaved event stream rather than one pre-built
    queue — the schedule path is measured as much as the dispatch path.
    """
    import numpy as np

    from repro.sim import Engine

    rng = np.random.default_rng(SEED)
    gaps = rng.exponential(1_000.0, size=events + timers)
    engine = Engine(scheduler=scheduler)
    budget = [events]
    cursor = [timers]

    def tick() -> None:
        if budget[0] <= 0:
            return
        budget[0] -= 1
        gap = float(gaps[cursor[0]])
        cursor[0] += 1
        engine.schedule(gap, tick)

    for index in range(timers):
        engine.schedule(float(gaps[index]), tick)

    start = time.perf_counter()
    engine.run()
    elapsed = time.perf_counter() - start
    return engine.events_processed, elapsed


def events_per_sec(events: int = DEFAULT_EVENTS, *, repeats: int = 3,
                   scheduler: str | None = None) -> float:
    """Best-of-``repeats`` engine throughput in events per second."""
    best = 0.0
    for _ in range(max(1, repeats)):
        dispatched, elapsed = run_engine_load(events, scheduler=scheduler)
        if elapsed > 0:
            best = max(best, dispatched / elapsed)
    return best


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure raw DES engine events/second")
    parser.add_argument("--events", type=int, default=DEFAULT_EVENTS,
                        help=f"events per run (default: {DEFAULT_EVENTS})")
    parser.add_argument("--repeats", type=int, default=3,
                        help="runs per scheduler, best-of (default: 3)")
    parser.add_argument("--scheduler", default=None,
                        choices=["calendar", "heap", "both"],
                        help="scheduler to measure (default: the active "
                             "REPRO_SIM_SCHEDULER mode)")
    args = parser.parse_args(argv)
    if args.events <= 0:
        print("error: --events must be positive", file=sys.stderr)
        return 2

    modes = (["calendar", "heap"] if args.scheduler == "both"
             else [args.scheduler])
    for mode in modes:
        rate = events_per_sec(args.events, repeats=args.repeats,
                              scheduler=mode)
        from repro.sim.engine import scheduler_mode
        shown = mode if mode is not None else scheduler_mode()
        print(f"{shown:10s} {rate:12,.0f} events/s "
              f"({args.events} events, best of {args.repeats})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
