"""Fig 3: sequential bandwidth sweeps over all three schemes."""

from repro.experiments import get


def test_bench_fig3(benchmark):
    result = benchmark(lambda: get("fig3").run(fast=True))
    print(result.render())
    assert result.passed
