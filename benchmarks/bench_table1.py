"""Table 1: testbed construction and rendering."""

from repro.experiments import get


def test_bench_table1(benchmark):
    result = benchmark(lambda: get("table1").run(fast=True))
    print(result.render())
    assert result.passed
