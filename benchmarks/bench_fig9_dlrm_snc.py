"""Fig 9: DLRM under SNC with CXL interleaving."""

from repro.experiments import get


def test_bench_fig9(benchmark):
    result = benchmark(lambda: get("fig9").run(fast=True))
    print(result.render())
    assert result.passed
