"""Fig 8: DLRM embedding-reduction throughput sweep."""

from repro.experiments import get


def test_bench_fig8(benchmark):
    result = benchmark(lambda: get("fig8").run(fast=True))
    print(result.render())
    assert result.passed
