"""Fig 5: random block-access bandwidth grid."""

from repro.experiments import get


def test_bench_fig5(benchmark):
    result = benchmark(lambda: get("fig5").run(fast=True))
    print(result.render())
    assert result.passed
