"""Record wall-clock timings for the experiment suite as BENCH_<label>.json.

Gives perf PRs a written trajectory: each run captures per-figure serial
seconds (plus ``--jobs N`` seconds for internally-sharded figures), the
whole-suite serial vs ``--jobs N`` wall clock, the effective CPU count
(affinity/cgroup aware, so recorded speedups carry honest context), and
the DES engine microbenchmarks — including raw scheduler throughput
(``engine.events_per_sec``) — the hot-path optimizations target.
Usage::

    PYTHONPATH=src python benchmarks/bench_to_json.py --label local --jobs 4
    PYTHONPATH=src python benchmarks/bench_to_json.py --label ci \
        --jobs 2 --ids fig3 fig5 --repeats 1 --append

The output lands next to the repo's other ``BENCH_*.json`` files (repo
root by default); compare fields across commits to see the trend.  See
docs/PERFORMANCE.md.

``--append`` keeps a bounded history instead of overwriting: the file
becomes ``{"label": ..., "history": [entry, ...]}`` with the newest
entry last and at most ``--history-limit`` entries retained.  An
existing single-entry file (the pre-history shape) migrates
transparently — it becomes the first history entry — so
``repro-report`` gets a real trajectory to plot either way
(docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from datetime import datetime, timezone
from pathlib import Path


def _time_once(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _best_of(fn, repeats: int) -> float:
    """Best-of-N wall clock (minimum is the least noisy estimator)."""
    return min(_time_once(fn) for _ in range(max(1, repeats)))


def effective_cpu_count() -> int:
    """CPUs this process can actually use, not what the host has.

    ``os.cpu_count()`` reports the machine; in a container with a CPU
    affinity mask or a cgroup-v2 quota that overstates the parallelism
    a ``--jobs N`` run really got, which makes recorded speedups
    uninterpretable.  Take the most restrictive of the affinity mask,
    the cgroup quota (``cpu.max``), and the host count.
    """
    host = os.cpu_count() or 1
    candidates = [host]
    try:
        candidates.append(len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):
        pass
    try:
        quota_text = Path("/sys/fs/cgroup/cpu.max").read_text().split()
        if quota_text and quota_text[0] != "max":
            quota, period = int(quota_text[0]), int(quota_text[1])
            if quota > 0 and period > 0:
                candidates.append(max(1, quota // period))
    except (FileNotFoundError, OSError, ValueError, IndexError):
        pass
    return min(candidates)


def _load_sibling(name: str):
    """Import a benchmarks/ sibling by path (works however this file
    was loaded — ``python benchmarks/bench_to_json.py`` or an importlib
    spec, neither of which guarantees benchmarks/ on sys.path)."""
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        name, Path(__file__).resolve().parent / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def engine_microbench(repeats: int) -> dict:
    """The DES hot paths: raw event throughput + the e2e sims."""
    from repro.cxl.e2e_sim import CxlEndToEndSim, CxlWriteEndToEndSim

    rate = _load_sibling("engine_events_per_sec").events_per_sec(
        repeats=repeats)
    read_sweep_s = _best_of(
        lambda: CxlEndToEndSim().sweep([1, 2, 4, 8, 12, 16, 32],
                                       lines_per_thread=1000),
        repeats)
    write_run_s = _best_of(
        lambda: CxlWriteEndToEndSim().run(threads=8,
                                          lines_per_thread=1000),
        repeats)
    return {"events_per_sec": round(rate),
            "e2e_read_sweep_s": round(read_sweep_s, 4),
            "e2e_write_run_s": round(write_run_s, 4)}


def append_history(path: Path, entry: dict, *, limit: int) -> dict:
    """Fold ``entry`` into ``path``'s bounded history (newest last).

    Reads the existing file if any: a history-shaped file gains one
    entry; a legacy single-entry file (the pre-``--append`` shape, with
    its measurements at top level) is migrated in place — it becomes
    the first history entry; an unreadable file starts a fresh history.
    Only the last ``limit`` entries are kept.
    """
    history: list[dict] = []
    try:
        existing = json.loads(path.read_text())
    except (FileNotFoundError, json.JSONDecodeError, OSError):
        existing = None
    if isinstance(existing, dict):
        if isinstance(existing.get("history"), list):
            history = [item for item in existing["history"]
                       if isinstance(item, dict)]
        elif "suite" in existing or "figures" in existing:
            history = [existing]
    history.append(entry)
    return {"label": entry["label"], "history": history[-limit:]}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Time the experiment suite, write BENCH_<label>.json")
    parser.add_argument("--label", required=True,
                        help="suffix for BENCH_<label>.json")
    parser.add_argument("--jobs", type=int, default=4, metavar="N",
                        help="worker count for the parallel pass "
                             "(default: 4)")
    parser.add_argument("--ids", nargs="*", default=None,
                        help="experiment ids or aliases, e.g. figC "
                             "(default: all)")
    parser.add_argument("--full", action="store_true",
                        help="time full-resolution sweeps")
    parser.add_argument("--repeats", type=int, default=2,
                        help="repetitions per measurement, best-of "
                             "(default: 2)")
    parser.add_argument("--out", default=None,
                        help="output path (default: "
                             "<repo>/BENCH_<label>.json)")
    parser.add_argument("--append", action="store_true",
                        help="append to a bounded dated history in the "
                             "output file instead of overwriting "
                             "(migrates a single-entry file in place)")
    parser.add_argument("--history-limit", type=int, default=20,
                        metavar="N",
                        help="entries retained with --append "
                             "(default: 20)")
    args = parser.parse_args(argv)
    if args.history_limit < 1:
        print("error: --history-limit must be >= 1", file=sys.stderr)
        return 2

    import repro
    from repro.experiments import REGISTRY
    from repro.experiments.registry import resolve_id
    from repro.experiments.runner import _run_ids

    ids = [resolve_id(eid) for eid in args.ids] if args.ids \
        else sorted(REGISTRY)
    unknown = [eid for eid in ids if eid not in REGISTRY]
    if unknown:
        print(f"error: unknown experiment id(s): {unknown}",
              file=sys.stderr)
        return 2
    fast = not args.full

    # Measure the parallel pass FIRST, while this process is still
    # lean: the suite schedule forks worker pools, and forking after
    # the serial figure loop has bloated the parent heap overstates
    # the wall time vs what `repro-experiments --jobs N` (a fresh
    # process) actually costs.  Same scheduling as
    # `repro-experiments --jobs N --no-cache`: internally-sharded
    # heavies + one-experiment-per-worker rest.
    parallel_total = _best_of(
        lambda: _run_ids(ids, fast=fast, jobs=args.jobs,
                         use_cache=False),
        args.repeats)
    print(f"{'suite':20s} --jobs {args.jobs} {parallel_total:7.3f}s",
          flush=True)

    figures = {}
    for eid in ids:
        seconds = _best_of(lambda: REGISTRY[eid].run(fast=fast),
                           args.repeats)
        figures[eid] = {"serial_s": round(seconds, 4)}
        line = f"{eid:20s} serial {seconds:7.3f}s"
        if REGISTRY[eid].accepts_jobs and args.jobs > 1:
            jobs_seconds = _best_of(
                lambda: REGISTRY[eid].run(fast=fast, jobs=args.jobs),
                args.repeats)
            figures[eid]["jobs_s"] = round(jobs_seconds, 4)
            line += f"  --jobs {args.jobs} {jobs_seconds:7.3f}s"
        print(line, flush=True)

    serial_total = sum(entry["serial_s"] for entry in figures.values())
    speedup = serial_total / parallel_total if parallel_total else 0.0
    print(f"{'suite':20s} serial {serial_total:7.3f}s  "
          f"--jobs {args.jobs} {parallel_total:7.3f}s  "
          f"(x{speedup:.2f})", flush=True)

    engine = engine_microbench(args.repeats)
    print(f"{'engine':20s} {engine['events_per_sec']:,} events/s  "
          f"read-sweep {engine['e2e_read_sweep_s']}s  "
          f"write-run {engine['e2e_write_run_s']}s")

    payload = {
        "label": args.label,
        "recorded_at": datetime.now(timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
        "version": repro.__version__,
        "python": platform.python_version(),
        "cpus": effective_cpu_count(),
        "mode": "full" if args.full else "fast",
        "jobs": args.jobs,
        "figures": figures,
        "suite": {
            "serial_s": round(serial_total, 4),
            "parallel_s": round(parallel_total, 4),
            "speedup": round(speedup, 3),
        },
        "engine": engine,
    }
    out = Path(args.out) if args.out \
        else Path(__file__).resolve().parent.parent \
        / f"BENCH_{args.label}.json"
    if args.append:
        payload = append_history(out, payload,
                                 limit=args.history_limit)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
