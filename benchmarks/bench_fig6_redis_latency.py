"""Fig 6: Redis p99 latency vs QPS (DES-backed)."""

from repro.experiments import get


def test_bench_fig6(benchmark):
    result = benchmark.pedantic(lambda: get("fig6").run(fast=True),
                                rounds=1, iterations=1)
    print(result.render())
    assert result.passed
