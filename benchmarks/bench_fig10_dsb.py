"""Fig 10: DeathStarBench p99 latency and memory breakdown (DES-backed)."""

from repro.experiments import get


def test_bench_fig10(benchmark):
    result = benchmark.pedantic(lambda: get("fig10").run(fast=True),
                                rounds=1, iterations=1)
    print(result.render())
    assert result.passed
