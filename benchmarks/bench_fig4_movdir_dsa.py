"""Fig 4: movdir64B routes and DSA offload methods."""

from repro.experiments import get


def test_bench_fig4(benchmark):
    result = benchmark(lambda: get("fig4").run(fast=True))
    print(result.render())
    assert result.passed
