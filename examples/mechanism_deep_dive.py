#!/usr/bin/env python
"""Deriving the paper's numbers from mechanism, not calibration.

Most of the library reproduces figures through a calibrated analytic
model.  This example runs the *mechanism-only* simulators — JEDEC-timed
DRAM banks, flit-serialized links, credit-gated device buffers — and
shows the paper's anchors emerging with no tuned efficiency constants:

* Fig 3b's grey line (21.3 GB/s) as the read plateau;
* "22 GB/s with only 2 [nt-store] threads";
* §4.3.1's multi-stream row-locality collapse;
* §4.3.2's write-buffer sensitivity.

Run:  python examples/mechanism_deep_dive.py
"""

from repro.cxl.e2e_sim import CxlEndToEndSim, CxlWriteEndToEndSim
from repro.mem import DramChannelSim, ddr4_2666_timings


def main() -> None:
    print("1) CXL streaming reads: host MLP -> flits -> DDR4 banks")
    sweep = CxlEndToEndSim().sweep([1, 2, 4, 8, 16, 32],
                                   lines_per_thread=1000)
    for threads, result in sweep.items():
        bar = "#" * int(result.gb_per_s)
        print(f"   {threads:2d} threads: {result.gb_per_s:5.1f} GB/s "
              f"(row-hit {result.row_hit_rate:.1%})  {bar}")
    print("   -> saturates at the paper's grey dashed line "
          "(DDR4-2666 = 21.3 GB/s) by ~8 threads\n")

    print("2) nt-store writers through the device's credit buffer")
    for threads in (1, 2, 4):
        result = CxlWriteEndToEndSim().run(threads=threads,
                                           lines_per_thread=1200)
        print(f"   {threads} writer(s): {result.gb_per_s:5.1f} GB/s")
    print("   -> two writers reach the pin rate: the paper's "
          "'22 GB/s with only 2 threads'\n")

    print("3) Buffer-depth ablation (§4.3.2's mechanism)")
    for entries in (128, 32, 8):
        result = CxlWriteEndToEndSim(buffer_entries=entries).run(
            threads=8, lines_per_thread=1000)
        print(f"   {entries:3d}-entry buffer: {result.gb_per_s:5.1f} GB/s")
    print()

    print("4) Multi-stream row locality at the 16-bank DDR4 (§4.3.1)")
    sim = DramChannelSim(ddr4_2666_timings())
    for streams in (1, 8, 16, 32):
        eff = sim.measured_multistream_efficiency(
            streams, lines_per_thread=max(256, 4096 // streams))
        print(f"   {streams:2d} interleaved streams: "
              f"{eff:.0%} of pin rate")
    print("   -> 'requests with fewer patterns as the thread count "
          "increased'")


if __name__ == "__main__":
    main()
