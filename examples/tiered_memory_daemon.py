#!/usr/bin/env python
"""A tiered-memory daemon on DRAM + CXL, end to end.

The paper positions its weighted-interleave results as "a baseline for
most memory tiering policies" (§5) and recommends DSA for the page
movement tiering performs (§6).  This example runs that comparison: a
TPP-like promotion/demotion daemon against the static weighted
interleave, on a Zipfian workload whose hot set drifts — with both DSA
and CPU migration engines.

Run:  python examples/tiered_memory_daemon.py
"""

from repro import build_system, combined_testbed
from repro.analysis.tables import series_table
from repro.tiering import (
    MigrationEngine,
    NoMigration,
    PageMigrator,
    TieringSimulator,
    TppLikePolicy,
)


def main() -> None:
    system = build_system(combined_testbed())
    simulator = TieringSimulator(system, num_pages=8192,
                                 dram_capacity_pages=2048,
                                 accesses_per_epoch=30_000,
                                 shift_every=8)
    policy = TppLikePolicy(max_migrations_per_epoch=1024)

    runs = {
        "weighted-interleave": (NoMigration(),
                                PageMigrator(system)),
        "TPP-like (DSA)": (policy, PageMigrator(
            system, engine=MigrationEngine.DSA_ASYNC)),
        "TPP-like (memcpy)": (policy, PageMigrator(
            system, engine=MigrationEngine.CPU_MEMCPY)),
    }

    curves = []
    print("Effective memory latency per epoch (hot set shifts every 8):")
    for name, (run_policy, migrator) in runs.items():
        stats = simulator.run(run_policy, migrator, epochs=24)
        curves.append(TieringSimulator.latency_series(stats, name))
        steady = simulator.steady_state_ns(stats)
        migrated = sum(s.migrated_pages for s in stats)
        print(f"  {name:22s} steady-state {steady:6.1f} ns/access, "
              f"{migrated:6d} pages migrated")
    print()
    print(series_table(curves, y_format="{:.0f}"))
    print()
    print("Takeaways: the tiering daemon beats the paper's round-robin "
          "baseline once\nthe hot set stabilizes, pays a re-convergence "
          "spike at each shift, and DSA\nmigration keeps the overhead "
          "lower than CPU copies (§6).")


if __name__ == "__main__":
    main()
