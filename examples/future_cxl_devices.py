#!/usr/bin/env python
"""What the paper predicts about future CXL devices, simulated.

Three forward-looking claims from the paper, each runnable here:

1. §4.2 — "an ASIC implementation ... will result in improved latency
   [but] still be higher than that of regular cross-NUMA access";
2. §5.2 — devices with DRAM-class bandwidth "will further enhance the
   throughput of memory bandwidth-bound applications" (modeled as a
   pool of expanders);
3. §6 — inline near-memory acceleration whose extra latency "will not
   be visible from an end-to-end point of view".

Run:  python examples/future_cxl_devices.py
"""

from dataclasses import replace

from repro import build_system
from repro.apps.dlrm import DlrmInferenceStudy
from repro.apps.dlrm.nearmem import NearMemoryReduction
from repro.config import combined_testbed, pooled_cxl_testbed
from repro.cpu import MemoryScheme
from repro.perfmodel import LatencyModel


def main() -> None:
    base = combined_testbed()

    print("1) ASIC vs FPGA controller (pointer-chase latency, ns)")
    fpga = LatencyModel(build_system(base))
    asic_config = replace(base, cxl_devices=(base.cxl.as_asic(),))
    asic = LatencyModel(build_system(asic_config))
    for name, model in (("FPGA", fpga), ("ASIC", asic)):
        print(f"   {name}: CXL={model.pointer_chase_ns(MemoryScheme.CXL):.0f}"
              f"  (DDR5-R1={model.pointer_chase_ns(MemoryScheme.DDR5_R1):.0f},"
              f" DDR5-L8={model.pointer_chase_ns(MemoryScheme.DDR5_L8):.0f})")
    print("   -> faster, but still above cross-NUMA, as §4.2 predicts")
    print()

    print("2) Pooled expanders lift bandwidth-bound DLRM (32 threads)")
    for devices in (1, 2, 4):
        study = DlrmInferenceStudy(pooled_cxl_testbed(devices))
        kernel = study.kernel("cxl-pool")
        print(f"   {devices} device(s): "
              f"{kernel.throughput(32):10,.0f} inferences/s")
    dram = DlrmInferenceStudy(base).kernel("local").throughput(32)
    print(f"   (pure DRAM:      {dram:10,.0f})")
    print()

    print("3) Inline near-memory embedding reduction")
    study = DlrmInferenceStudy(base)
    kernel = study.kernel("cxl")
    nearmem = NearMemoryReduction(kernel)
    print(f"   host-gather @16T: {kernel.throughput(16):10,.0f} inf/s")
    print(f"   near-memory @16T: {nearmem.throughput(16):10,.0f} inf/s "
          f"({nearmem.speedup_over_host_gather(16):.2f}x)")
    print(f"   link traffic:     {nearmem.link_traffic_reduction():.0f}x "
          "less per inference")
    print(f"   accel latency hidden at throughput: "
          f"{nearmem.accel_latency_hidden(16)}")


if __name__ == "__main__":
    main()
