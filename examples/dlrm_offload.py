#!/usr/bin/env python
"""DLRM embedding reduction: when CXL interleaving actually helps.

Reproduces Figs 8 and 9 in miniature: thread-scaling curves for five
table placements, then the SNC experiment where two DDR5 channels make
the kernel bandwidth-bound — the one regime in the paper where adding
CXL memory *increases* throughput.

Run:  python examples/dlrm_offload.py
"""

from repro import combined_testbed
from repro.analysis.guidelines import classify
from repro.analysis.tables import series_table
from repro.apps.dlrm import DlrmInferenceStudy


def main() -> None:
    study = DlrmInferenceStudy(combined_testbed())
    threads = [1, 4, 8, 16, 24, 32]

    print("Fig 8: embedding-reduction throughput (inferences/s)")
    curves = [study.curve(placement, threads)
              for placement in ("local", "cxl", "remote", 0.0323, 0.5)]
    print(series_table(curves, y_format="{:.0f}"))
    print()

    normalized = study.normalized_at(["cxl", "remote", 0.0323, 0.5])
    print("Normalized to DRAM at 32 threads (Fig 8 right):")
    for name, value in normalized.items():
        print(f"  {name:12s} {value:.3f}")
    print()

    print("Fig 9: the SNC experiment (memory limited to 2 channels)")
    snc = study.curve("local", threads, snc=True, name="SNC")
    snc20 = study.curve(0.2, threads, snc=True, name="SNC+20%CXL")
    print(series_table([snc, snc20], y_format="{:.0f}"))
    gain = study.snc_gain(0.2)
    print(f"\n32-thread gain from 20% CXL interleave: {gain * 100:+.1f}% "
          "(paper: +11%)")
    print()

    print("§6.1 classification of the scaling curves:")
    for series in (study.curve("local", threads), snc):
        print(f"  {series.name:8s}: {classify(series)}")


if __name__ == "__main__":
    main()
