#!/usr/bin/env python
"""Describe your own CXL machine in JSON and benchmark it.

The built-in presets model the paper's exact testbeds; real deployments
differ.  This example dumps the single-socket preset to JSON, edits it
into a hypothetical next-generation device — ASIC controller (no FPGA
penalty), two DDR5 channels on the expander — reloads it, and compares
MEMO results against the paper's hardware.

Run:  python examples/custom_testbed.py
"""

import json
import tempfile
from pathlib import Path

from repro import build_system
from repro.config import single_socket_testbed
from repro.config_io import load_system, save_system, system_to_dict
from repro.cpu import AccessKind, MemoryScheme
from repro.perfmodel import LatencyModel, ThroughputModel


def edited_testbed_json(workdir: Path) -> Path:
    """Write the preset, then apply the 'next-gen device' edits."""
    path = workdir / "nextgen.json"
    save_system(single_socket_testbed(), path)
    data = json.loads(path.read_text())
    device = data["cxl_devices"][0]
    device["fpga_penalty_ns"] = 0.0                 # hardened ASIC
    device["write_buffer_entries"] = 1024           # deeper buffering
    device["dram"]["generation"] = "DDR5"
    device["dram"]["transfer_mt_s"] = 4800
    device["dram"]["channels"] = 2
    device["dram"]["access_ns"] = 52.0
    data["name"] = "nextgen-cxl"
    path.write_text(json.dumps(data, indent=2))
    return path


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        config = load_system(edited_testbed_json(Path(tmp)))
    paper_system = build_system(single_socket_testbed())
    nextgen_system = build_system(config)

    print("Paper device vs a hypothetical next-gen expander\n")
    header = f"{'metric':38s} {'Agilex (paper)':>15s} {'next-gen':>10s}"
    print(header)
    print("-" * len(header))

    for name, probe in [
            ("pointer-chase latency (ns)",
             lambda s: LatencyModel(s).pointer_chase_ns(MemoryScheme.CXL)),
            ("flushed-load latency (ns)",
             lambda s: LatencyModel(s).flushed_load_ns(MemoryScheme.CXL)),
            ("load bandwidth @16T (GB/s)",
             lambda s: ThroughputModel(s).bandwidth(
                 MemoryScheme.CXL, AccessKind.LOAD, threads=16).gb_per_s),
            ("nt-store bandwidth @8T (GB/s)",
             lambda s: ThroughputModel(s).bandwidth(
                 MemoryScheme.CXL, AccessKind.NT_STORE,
                 threads=8).gb_per_s)]:
        print(f"{name:38s} {probe(paper_system):15.1f} "
              f"{probe(nextgen_system):10.1f}")

    print("\nEven the next-gen device stays above local DDR5 latency "
          f"({LatencyModel(paper_system).pointer_chase_ns(MemoryScheme.DDR5_L8):.0f} ns)"
          " — the CXL protocol round trip remains (§4.2).")


if __name__ == "__main__":
    main()
