#!/usr/bin/env python
"""Redis under YCSB: the µs-latency application the paper warns about.

Reproduces a compact version of Figs 6 and 7: p99 tail latency versus
offered QPS at three CXL placements, and the max-sustainable-QPS table
across YCSB workloads (including workload D's three request
distributions).

Run:  python examples/redis_ycsb.py
"""

from repro import build_system, combined_testbed
from repro.analysis.tables import format_table, series_table
from repro.apps.kvstore import RedisYcsbStudy
from repro.workloads import WORKLOADS


def main() -> None:
    system = build_system(combined_testbed())
    study = RedisYcsbStudy(system, num_keys=200_000)
    workload = WORKLOADS["A"]

    print("Fig 6: p99 latency (us) vs QPS, YCSB-A "
          "(50% read / 50% update, uniform keys)")
    qps_points = [20_000.0, 35_000.0, 50_000.0, 60_000.0]
    curves = [study.p99_curve(workload, fraction, qps_points,
                              requests=8000)
              for fraction in (0.0, 0.5, 1.0)]
    print(series_table(curves))
    print()

    print("Fig 7: max sustainable QPS (columns = share of Redis memory "
          "on CXL)")
    fractions = [1.0, 0.5, 0.1, 1 / 31, 0.0]
    table = study.max_qps_table(cxl_fractions=fractions,
                                workload_names=["A", "B", "C", "D", "F"])
    rows = [[name] + [f"{v / 1000:.1f}k" for v in series.y]
            for name, series in table.items()]
    print(format_table(["workload", "100%", "50%", "10%", "3.23%", "0%"],
                       rows))
    print()
    print("Takeaway (§5.1): the us-level store is latency-bound — every "
          "CXL percentage costs QPS, and pure CXL roughly doubles p99.")


if __name__ == "__main__":
    main()
