#!/usr/bin/env python
"""Quickstart: build the paper's testbed and probe CXL memory.

Builds the combined testbed (dual-socket SPR + Agilex-I CXL device),
measures the Fig-2 latency probes, and asks the throughput model for a
few Fig-3 bandwidth points — about thirty lines covering the library's
core API surface.

Run:  python examples/quickstart.py
"""

from repro import build_system, combined_testbed
from repro.cpu import AccessKind, MemoryScheme
from repro.memo import LatencyBench
from repro.perfmodel import ThroughputModel


def main() -> None:
    system = build_system(combined_testbed())

    print("NUMA topology (the CXL device appears as a CPU-less node):")
    for node in system.topology.nodes:
        print(f"  node {node.node_id}: {node.label:8s} "
              f"{node.capacity_bytes >> 30} GiB, {node.cpus} cpus")
    print()

    print("Fig-2 latency probes (prefetch disabled):")
    print(LatencyBench(system).run().render())
    print()

    model = ThroughputModel(system)
    print("Sequential bandwidth highlights (Fig 3):")
    for scheme, kind, threads in [
            (MemoryScheme.DDR5_L8, AccessKind.LOAD, 26),
            (MemoryScheme.DDR5_L8, AccessKind.NT_STORE, 16),
            (MemoryScheme.CXL, AccessKind.LOAD, 8),
            (MemoryScheme.CXL, AccessKind.LOAD, 16),
            (MemoryScheme.CXL, AccessKind.NT_STORE, 2),
            (MemoryScheme.DDR5_R1, AccessKind.LOAD, 8)]:
        result = model.bandwidth(scheme, kind, threads=threads)
        print(f"  {scheme.label:8s} {kind.value:6s} x{threads:2d} threads: "
              f"{result.gb_per_s:6.1f} GB/s")


if __name__ == "__main__":
    main()
