#!/usr/bin/env python
"""A data-movement cookbook for tiered-memory software.

Walks the §4.3/§6 decision space for moving pages between DRAM and CXL
memory: instruction choice (temporal store vs nt-store vs movdir64B),
thread counts, and DSA offload with batching — printing the simulated
throughput of each option so the recommendations are visibly grounded.

Run:  python examples/data_movement_cookbook.py
"""

from repro import build_system, combined_testbed
from repro.analysis.guidelines import LatencyClass, WorkloadProfile, advise
from repro.cpu import AccessKind, MemoryScheme
from repro.dsa import DsaDevice, SubmissionMode
from repro.perfmodel import ThroughputModel

L8, CXL = MemoryScheme.DDR5_L8, MemoryScheme.CXL


def main() -> None:
    system = build_system(combined_testbed())
    model = ThroughputModel(system)
    dsa = DsaDevice(system)

    print("1) Instruction choice for writing 64 B lines into CXL memory")
    for kind in (AccessKind.STORE, AccessKind.NT_STORE):
        result = model.bandwidth(CXL, kind, threads=2)
        print(f"   {kind.value:6s} x2 threads: {result.gb_per_s:5.1f} GB/s"
              f"   (traffic factor {kind.traffic_factor}x"
              f"{' — RFO!' if kind.traffic_factor > 1 else ''})")
    print()

    print("2) Writer-thread scaling on the CXL device (nt-store)")
    for threads in (1, 2, 4, 8):
        result = model.bandwidth(CXL, AccessKind.NT_STORE, threads=threads)
        print(f"   {threads} writer(s): {result.gb_per_s:5.1f} GB/s")
    print("   -> the device buffer overflows past 2 writers (§4.3.2)")
    print()

    print("3) Bulk movement: CPU copies vs DSA (single thread, D2C)")
    print(f"   memcpy:           "
          f"{model.memcpy_bandwidth(L8, CXL).gb_per_s:5.1f} GB/s")
    print(f"   movdir64B:        "
          f"{model.copy_bandwidth(L8, CXL).gb_per_s:5.1f} GB/s")
    for mode, batch in ((SubmissionMode.SYNC, 1),
                        (SubmissionMode.SYNC, 128),
                        (SubmissionMode.ASYNC, 128)):
        throughput = dsa.copy_throughput(L8, CXL, mode=mode,
                                         batch_size=batch) / 1e9
        print(f"   DSA {mode.value:5s} b{batch:<4d}: {throughput:5.1f} GB/s")
    print()

    print("4) What the §6 advisor concludes for a tiering daemon:")
    daemon = WorkloadProfile("tier-daemon", LatencyClass.MILLISECONDS,
                             read_fraction=0.5,
                             bulk_transfer_bytes=2 * 1024 * 1024,
                             writer_threads=8, short_term_reuse=False)
    for advice in advise(daemon):
        print(f"   {advice}")


if __name__ == "__main__":
    main()
