#!/usr/bin/env python
"""Microservices on CXL: the paper's favorable offload case.

Reproduces Fig 10 in miniature: pins the DeathStarBench social
network's databases (cache + storage) to DRAM vs CXL and compares p99
latency per request type, then prints the memory breakdown and what the
§6 advisor says about this workload.

Run:  python examples/microservice_offload.py
"""

from repro import build_system, combined_testbed
from repro.analysis.guidelines import LatencyClass, WorkloadProfile, advise
from repro.analysis.tables import format_table, series_table
from repro.apps.dsb import DsbRunner, RequestType, memory_breakdown


def main() -> None:
    system = build_system(combined_testbed())
    dram = DsbRunner(system, database_node=system.LOCAL_NODE)
    cxl = DsbRunner(system, database_node=system.cxl_node_id)
    qps_points = [200.0, 600.0, 1000.0]

    for request_type in (RequestType.COMPOSE_POST,
                         RequestType.READ_USER_TIMELINE, None):
        name = request_type.value if request_type else "mixed (60/30/10)"
        print(f"Fig 10: {name} p99 (ms), databases on DRAM vs CXL")
        curves = [runner.p99_curve(qps_points, request_type=request_type,
                                   requests=2000)
                  for runner in (dram, cxl)]
        print(series_table(curves, y_format="{:.2f}"))
        print()

    print("Memory breakdown by functionality (Fig 10 right):")
    rows = [[name, f"{share * 100:.0f}%"]
            for name, share in memory_breakdown().items()]
    print(format_table(["component", "share"], rows))
    print()

    profile = WorkloadProfile("social-network", LatencyClass.MILLISECONDS,
                              read_fraction=0.85,
                              has_intermediate_compute=True)
    print("§6 advisor on this workload:")
    for advice in advise(profile):
        print(f"  {advice}")


if __name__ == "__main__":
    main()
