"""Legacy setup shim.

This offline environment lacks the ``wheel`` package, so PEP-517 editable
installs fail with ``invalid command 'bdist_wheel'``.  Keeping a minimal
``setup.py`` lets ``pip install -e . --no-build-isolation --no-use-pep517``
work; all real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
