"""Random block-access bandwidth (Fig 5).

§4.3.2: "we issue a block of AVX-512 access sequentially, but each time
with a random offset ... To ensure write order in block level, we issue
a sfence after each block of nt-store."

The figure is a 3x3 grid — rows: DDR5-L8 / CXL / DDR5-R1; columns:
load / store / nt-store — with block size on x and one curve per thread
count.
"""

from __future__ import annotations

from ..cpu.isa import AccessKind
from ..cpu.system import MemoryScheme, System
from ..analysis.series import Series
from ..errors import ConfigError
from ..mem.dram import AccessPattern
from ..perfmodel.throughput import ThroughputModel
from ..units import KIB
from .report import BenchReport

GRID_KINDS = (AccessKind.LOAD, AccessKind.STORE, AccessKind.NT_STORE)
DEFAULT_BLOCKS = [1 * KIB, 2 * KIB, 4 * KIB, 8 * KIB, 16 * KIB, 32 * KIB,
                  64 * KIB, 128 * KIB]
DEFAULT_THREADS = [1, 2, 4, 8, 16, 32]


class RandomBlockBench:
    """Block-size x thread-count sweeps of random block access."""

    def __init__(self, system: System, *,
                 block_sizes: list[int] | None = None,
                 thread_counts: list[int] | None = None,
                 schemes: list[MemoryScheme] | None = None,
                 jobs: int = 1, policy=None) -> None:
        self.system = system
        self.block_sizes = block_sizes or DEFAULT_BLOCKS
        if any(b < 64 for b in self.block_sizes):
            raise ConfigError("blocks must be at least one cacheline")
        self.thread_counts = thread_counts or [
            n for n in DEFAULT_THREADS if n <= system.socket.config.cores]
        self.schemes = schemes or system.available_schemes()
        self.model = ThroughputModel(system)
        self.jobs = jobs
        self.policy = policy
        # policy is a repro.resilience.SupervisionPolicy (or None):
        # when set, curve units run supervised regardless of ``jobs``.

    def run(self) -> BenchReport:
        report = BenchReport(title="MEMO random block bandwidth")
        units = [(scheme, kind, threads)
                 for scheme in self.schemes
                 for kind in GRID_KINDS
                 for threads in self.thread_counts]
        if self.policy is not None:
            from ..parallel.sweeps import run_series_supervised

            specs = [(self.system, scheme, kind,
                      AccessPattern.RANDOM_BLOCK,
                      [{"threads": threads, "block_bytes": block}
                       for block in self.block_sizes])
                     for scheme, kind, threads in units]
            curves = run_series_supervised(
                specs, jobs=self.jobs, policy=self.policy,
                names=[f"{scheme.label}-{kind.value}-{threads}T"
                       for scheme, kind, threads in units])
        elif self.jobs > 1:
            # One worker unit per thread-count curve of the 3x3 grid;
            # merged in sweep order — identical to a serial run.
            from ..parallel import ParallelRunner
            from ..parallel.sweeps import run_model_series

            specs = [(self.system, scheme, kind,
                      AccessPattern.RANDOM_BLOCK,
                      [{"threads": threads, "block_bytes": block}
                       for block in self.block_sizes])
                     for scheme, kind, threads in units]
            curves = ParallelRunner(self.jobs).map(run_model_series,
                                                   specs)
        else:
            curves = [[self.model.bandwidth(
                           scheme, kind, AccessPattern.RANDOM_BLOCK,
                           threads=threads, block_bytes=block).gb_per_s
                       for block in self.block_sizes]
                      for scheme, kind, threads in units]
        for (scheme, kind, threads), values in zip(units, curves):
            series = Series(f"{threads}T", x_label="block (KiB)",
                            y_label="GB/s")
            for block, gb_per_s in zip(self.block_sizes, values):
                series.append(block / KIB, gb_per_s)
            report.add_series(f"fig5-{scheme.label}-{kind.value}",
                              series)
        return report

    def point(self, scheme: MemoryScheme, kind: AccessKind, *,
              threads: int, block_bytes: int) -> float:
        """One grid cell in GB/s."""
        return self.model.bandwidth(scheme, kind,
                                    AccessPattern.RANDOM_BLOCK,
                                    threads=threads,
                                    block_bytes=block_bytes).gb_per_s
