"""Functional traffic measurement: counting what really hits the bus.

The analytic model *asserts* traffic factors (a temporal store moves 2x
the bus lines of an nt-store because of RFO + writeback).  This module
*measures* them by streaming real access sequences through the
functional :class:`~repro.cache.hierarchy.CacheHierarchy` and counting
memory-side reads and writes — including the deferred writebacks that
only appear when dirty lines are evicted or flushed.

It also demonstrates cache pollution (§6: nt-stores "avoid polluting
the precious cache resources"): after a bulk write, how much of a
victim working set survives in the LLC.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cache.hierarchy import CacheHierarchy
from ..cpu.isa import AccessKind
from ..errors import WorkloadError
from ..units import CACHELINE


@dataclass(frozen=True)
class TrafficCount:
    """Bus traffic observed for one access stream."""

    lines_accessed: int
    memory_reads: int
    memory_writes: int

    @property
    def reads_per_line(self) -> float:
        return self.memory_reads / self.lines_accessed

    @property
    def writes_per_line(self) -> float:
        return self.memory_writes / self.lines_accessed

    @property
    def traffic_factor(self) -> float:
        """Total bus lines per application line — the RFO number."""
        return (self.memory_reads + self.memory_writes) \
            / self.lines_accessed


def measure_stream_traffic(hierarchy: CacheHierarchy, kind: AccessKind,
                           num_lines: int, *,
                           base_address: int = 0,
                           flush_after: bool = True) -> TrafficCount:
    """Stream ``num_lines`` sequential accesses of ``kind``; count bus ops.

    ``flush_after`` drains dirty lines at the end (clflush), charging
    temporal stores their deferred writebacks — without it a short
    temporal-store stream looks artificially cheap because its dirty
    lines are still parked in the cache.
    """
    if num_lines <= 0:
        raise WorkloadError(f"num_lines must be positive: {num_lines}")
    reads = 0
    writes = 0
    writebacks_before = hierarchy.memory_writebacks
    for index in range(num_lines):
        address = base_address + index * CACHELINE
        if kind is AccessKind.LOAD:
            result = hierarchy.load(address)
        elif kind is AccessKind.STORE:
            result = hierarchy.store(address)
        elif kind is AccessKind.NT_STORE:
            result = hierarchy.nt_store(address)
        else:
            raise WorkloadError(
                f"movdir64B is a copy; measure its sides separately")
        reads += result.memory_reads
        writes += result.memory_writes
    if flush_after:
        for index in range(num_lines):
            writes += hierarchy.clflush(base_address + index * CACHELINE)
    # LLC dirty evictions during the stream also reached memory.
    writes += hierarchy.memory_writebacks - writebacks_before
    return TrafficCount(lines_accessed=num_lines, memory_reads=reads,
                        memory_writes=writes)


def measure_cache_pollution(hierarchy: CacheHierarchy, *,
                            victim_lines: int, writer_kind: AccessKind,
                            written_lines: int,
                            victim_base: int = 0,
                            writer_base: int = 1 << 30) -> float:
    """Fraction of a warm victim working set surviving a bulk write.

    Warm ``victim_lines`` into the hierarchy, stream a bulk write of
    ``written_lines`` with ``writer_kind``, then re-probe the victims:
    the returned survival fraction is ~1.0 for nt-stores (no
    allocation) and falls for temporal stores (write-allocate evicts).
    """
    if victim_lines <= 0 or written_lines <= 0:
        raise WorkloadError("line counts must be positive")
    for index in range(victim_lines):
        hierarchy.load(victim_base + index * CACHELINE)
    for index in range(written_lines):
        address = writer_base + index * CACHELINE
        if writer_kind is AccessKind.STORE:
            hierarchy.store(address)
        elif writer_kind is AccessKind.NT_STORE:
            hierarchy.nt_store(address)
        else:
            raise WorkloadError("pollution test writes with st or nt-st")
    survived = sum(
        1 for index in range(victim_lines)
        if hierarchy.llc.contains(victim_base + index * CACHELINE))
    return survived / victim_lines
