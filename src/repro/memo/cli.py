"""The ``memo`` command-line interface.

§4.1: "Users can provide command-line arguments to specify the workloads
to be executed by MEMO."  Example invocations::

    memo latency
    memo chase --scheme CXL
    memo bw --threads 1 2 4 8 16 32
    memo random --blocks 1024 16384 65536
    memo movdir
    memo dsa --batches 1 16 128

Every bench accepts ``--trace out.json`` (dump a Perfetto-loadable
timeline + an ``out.metrics.json`` snapshot) and ``--metrics`` (print
the metrics table after the report).  See docs/TELEMETRY.md.

Run-level observability (docs/OBSERVABILITY.md): every invocation
appends a record to the run ledger (``results/runs.jsonl``,
``--no-ledger`` to opt out), and ``--profile [DIR]`` writes a
wall-clock phase profile to ``DIR/memo-<bench>.profile.json``.

Resilience (docs/RESILIENCE.md): the sharded benches (``bw`` /
``random``) accept ``--unit-timeout`` / ``--retries`` /
``--fail-fast``; a unit still poisoned after its retries turns into
exit code 1 with a one-line summary, never a traceback.  ``memo`` has
no ``--resume`` — bench curves are cheap closed forms, so there is no
checkpoint journal to replay (that lives in ``repro-experiments``).

Exit codes: 0 = ok, 1 = bench unit failed under supervision,
2 = bad arguments.
"""

from __future__ import annotations

import argparse
import sys
import time
from datetime import datetime, timezone

from .. import build_system, combined_testbed
from ..cpu.system import MemoryScheme
from ..errors import ExperimentError
from ..obs import EXIT_FAILED_CHECKS, Profiler, RunLog
from ..telemetry import NULL_TELEMETRY, Telemetry
from .bandwidth_bench import SequentialBandwidthBench
from .dsa_bench import DsaBench
from .latency_bench import LatencyBench
from .movdir_bench import MovdirBench
from .pointer_chase import PointerChaseBench
from .random_bench import RandomBlockBench

RUNLOG = RunLog("memo")
"""The CLI's shared event stream (stderr; docs/OBSERVABILITY.md)."""


def _parse_schemes(names: list[str] | None) -> list[MemoryScheme] | None:
    if not names:
        return None
    lookup = {scheme.label: scheme for scheme in MemoryScheme}
    try:
        return [lookup[name] for name in names]
    except KeyError as missing:
        # Consolidated error path: the RunLog helper emits the stderr
        # event and pins the bad-args exit code (2).
        raise SystemExit(RUNLOG.error(
            f"unknown scheme {missing}; choose from {sorted(lookup)}"))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="memo",
        description="MEMO microbenchmark on the simulated CXL testbed")
    sub = parser.add_subparsers(dest="bench", required=True)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--scheme", nargs="*", default=None,
                        metavar="NAME",
                        help="memory schemes (DDR5-L8, DDR5-R1, CXL)")

    telemetry = argparse.ArgumentParser(add_help=False)
    telemetry.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write a Chrome/Perfetto trace JSON (plus a "
             "PATH-adjacent .metrics.json snapshot)")
    telemetry.add_argument(
        "--metrics", action="store_true",
        help="print the telemetry metrics table after the report")
    telemetry.add_argument(
        "--profile", metavar="DIR", nargs="?", const="results",
        default=None,
        help="write a wall-clock phase profile to "
             "DIR/memo-<bench>.profile.json (DIR defaults to results/)")
    telemetry.add_argument(
        "--no-ledger", action="store_true",
        help="do not append this run to the results/runs.jsonl "
             "run ledger")
    telemetry.add_argument(
        "--scenario", metavar="NAME|FILE", default=None,
        help="build the testbed from a scenario's device profile "
             "(a shipped pack name or a scenario file; see "
             "docs/SCENARIOS.md) instead of the combined testbed")
    telemetry.add_argument(
        "--spans", action="store_true",
        help="print the analytic read-path attribution per scheme "
             "(cpu.stall / link / ctrl / media shares) and record a "
             "spans digest in the run ledger; see docs/TELEMETRY.md")

    parallel = argparse.ArgumentParser(add_help=False)
    parallel.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="shard sweep points across N worker processes "
             "(default: 1, serial; results are identical either way)")
    parallel.add_argument(
        "--unit-timeout", type=float, default=None, metavar="SECONDS",
        help="kill any curve unit running longer than SECONDS and "
             "count it as a timeout failure (default: no limit)")
    parallel.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="respawn a crashed/timed-out curve unit up to N times "
             "with jittered exponential backoff (default: 0)")
    parallel.add_argument(
        "--fail-fast", action="store_true",
        help="cancel the remaining units as soon as one unit "
             "exhausts its retries")

    latency = sub.add_parser("latency", parents=[common, telemetry],
                             help="Fig 2 left: flushed-line probes")
    latency.set_defaults(runner=_run_latency)

    chase = sub.add_parser("chase", parents=[common, telemetry],
                           help="Fig 2 right: pointer chase vs WSS")
    chase.set_defaults(runner=_run_chase)

    bandwidth = sub.add_parser("bw",
                               parents=[common, telemetry, parallel],
                               help="Fig 3: sequential bandwidth sweep")
    bandwidth.add_argument("--threads", nargs="*", type=int, default=None)
    bandwidth.set_defaults(runner=_run_bw)

    random_ = sub.add_parser("random",
                             parents=[common, telemetry, parallel],
                             help="Fig 5: random block bandwidth")
    random_.add_argument("--blocks", nargs="*", type=int, default=None,
                         help="block sizes in bytes")
    random_.add_argument("--threads", nargs="*", type=int, default=None)
    random_.set_defaults(runner=_run_random)

    movdir = sub.add_parser("movdir", parents=[telemetry],
                            help="Fig 4a: movdir64B route bandwidth")
    movdir.add_argument("--threads", nargs="*", type=int, default=None)
    movdir.set_defaults(runner=_run_movdir)

    dsa = sub.add_parser("dsa", parents=[telemetry],
                         help="Fig 4b: bulk movement methods")
    dsa.add_argument("--batches", nargs="*", type=int, default=None)
    dsa.set_defaults(runner=_run_dsa)

    replay = sub.add_parser(
        "replay", parents=[telemetry],
        help="replay a generated trace through the functional caches")
    replay.add_argument("--kind", choices=["ld", "st+wb", "nt-st"],
                        default="ld")
    replay.add_argument("--pattern", choices=["sequential", "random"],
                        default="sequential")
    replay.add_argument("--lines", type=int, default=4096)
    replay.add_argument("--block", type=int, default=4096,
                        help="random-pattern block size in bytes")
    replay.add_argument("--scheme", dest="scheme", default="CXL",
                        help="memory scheme to charge misses against")
    replay.set_defaults(runner=_run_replay)

    loaded = sub.add_parser("loaded", parents=[common, telemetry],
                            help="loaded-latency curves (MLC-style)")
    loaded.add_argument("--points", type=int, default=12)
    loaded.set_defaults(runner=_run_loaded)
    return parser


def _trace_mechanism_companions(telemetry, *, threads: int) -> None:
    """Run the mechanism-level DES twins of the analytic Fig-3 sweep.

    The analytic bench has no timeline — its numbers come from closed
    forms — so a ``--trace`` run derives one from the end-to-end flit
    simulators instead: a read sweep (core / cxl.port / dram.channel
    tracks) plus an nt-store run (cxl.device.wbuf occupancy).
    """
    from ..cxl.e2e_sim import CxlEndToEndSim, CxlWriteEndToEndSim

    CxlEndToEndSim(telemetry=telemetry).run(
        threads=min(threads, 8), lines_per_thread=256)
    CxlWriteEndToEndSim(telemetry=telemetry).run(
        threads=min(threads, 4), lines_per_thread=192)


def _run_latency(system, args, telemetry):
    return LatencyBench(system,
                        schemes=_parse_schemes(args.scheme)).run()


def _run_chase(system, args, telemetry):
    return PointerChaseBench(system,
                             schemes=_parse_schemes(args.scheme)).run()


def _supervision_policy(args):
    """A SupervisionPolicy from the CLI flags, or None when unasked.

    ``None`` keeps the benches on their historical serial/pool paths;
    any of ``--unit-timeout`` / ``--retries`` / ``--fail-fast`` opts
    the run into the repro.resilience supervised path.
    """
    timeout = getattr(args, "unit_timeout", None)
    retries = getattr(args, "retries", 0)
    fail_fast = getattr(args, "fail_fast", False)
    if timeout is None and not retries and not fail_fast:
        return None
    if timeout is not None and timeout <= 0:
        raise SystemExit(RUNLOG.error(
            f"--unit-timeout must be > 0, got {timeout}"))
    if retries < 0:
        raise SystemExit(RUNLOG.error(
            f"--retries must be >= 0, got {retries}"))
    from ..resilience import SupervisionPolicy

    return SupervisionPolicy(timeout_s=timeout, retries=retries,
                             fail_fast=fail_fast)


def _run_bw(system, args, telemetry):
    report = SequentialBandwidthBench(
        system, thread_counts=args.threads,
        schemes=_parse_schemes(args.scheme),
        jobs=getattr(args, "jobs", 1),
        policy=_supervision_policy(args)).run()
    if telemetry.enabled:
        _trace_mechanism_companions(
            telemetry, threads=max(args.threads or [8]))
        report.notes.append(
            "telemetry: timeline traced from the mechanism-level "
            "e2e read/nt-store simulators")
    return report


def _run_random(system, args, telemetry):
    report = RandomBlockBench(system, block_sizes=args.blocks,
                              thread_counts=args.threads,
                              schemes=_parse_schemes(args.scheme),
                              jobs=getattr(args, "jobs", 1),
                              policy=_supervision_policy(args)).run()
    if telemetry.enabled:
        _trace_mechanism_companions(
            telemetry, threads=max(args.threads or [8]))
        report.notes.append(
            "telemetry: timeline traced from the mechanism-level "
            "e2e read/nt-store simulators")
    return report


def _run_movdir(system, args, telemetry):
    return MovdirBench(system, thread_counts=args.threads).run()


def _run_dsa(system, args, telemetry):
    return DsaBench(system, batch_sizes=args.batches).run()


def _run_loaded(system, args, telemetry):
    from .loaded_latency import LoadedLatencyBench

    return LoadedLatencyBench(system, schemes=_parse_schemes(args.scheme),
                              points=args.points).run()


def _run_replay(system, args, telemetry):
    from ..analysis.series import Series
    from ..cpu.isa import AccessKind
    from ..units import MIB
    from .report import BenchReport
    from .trace import AccessTrace, replay

    kind = {k.value: k for k in AccessKind}[args.kind]
    schemes = _parse_schemes([args.scheme])
    scheme = schemes[0]
    if args.pattern == "sequential":
        trace = AccessTrace.sequential(kind, num_lines=args.lines)
    else:
        lines_per_block = max(1, args.block // 64)
        trace = AccessTrace.random_block(
            kind, num_blocks=max(1, args.lines // lines_per_block),
            block_bytes=args.block, region_bytes=256 * MIB)
    hierarchy = system.socket.new_hierarchy(telemetry=telemetry)
    result = replay(trace, system, scheme, hierarchy=hierarchy)
    report = BenchReport(title=f"trace replay: {args.pattern} "
                               f"{kind.value} on {scheme.label}")
    summary = Series("replay", x_label="metric", y_label="value")
    summary.append(0, result.hit_rate)
    summary.append(1, float(result.memory_reads))
    summary.append(2, float(result.memory_writes))
    summary.append(3, result.estimated_ns / 1000.0)
    report.add_series("replay-summary", summary)
    report.notes.append("metrics: 0=hit-rate 1=memory-reads "
                        "2=memory-writes 3=estimated-us")
    report.notes.append(
        f"estimated bandwidth: "
        f"{result.estimated_bandwidth / 1e9:.2f} GB/s")
    return report


def _span_schemes(system, args):
    """The schemes the ``--spans`` attribution covers (selection order)."""
    names = getattr(args, "scheme", None)
    if isinstance(names, str):
        names = [names]
    schemes = _parse_schemes(names)
    return schemes if schemes is not None else system.available_schemes()


def _analytic_spans_payload(system, schemes) -> dict:
    """Per-scheme read-path spans from the closed-form latency model.

    The benches here are analytic (no per-request DES), so the span
    waterfall is derived the same way the paper decomposes an idle
    read: CPU edge stall, then the backend's link / controller / media
    components (:meth:`~repro.mem.device.MemoryBackend.read_components_ns`).
    One synthetic request per scheme keeps the payload shape identical
    to a DES-spanned experiment's, so the same digest, report section,
    and Perfetto export apply.
    """
    from ..telemetry.spans import SpanConfig, SpanRecorder

    points = {}
    for scheme in schemes:
        backend = system.scheme_backend(scheme)
        recorder = SpanRecorder(SpanConfig(exemplars=1))
        segments = (("cpu.stall", system.edge_ns()),) \
            + tuple(backend.read_components_ns())
        recorder.record(0, 0.0, segments, kind=scheme.label)
        points[scheme.label] = recorder.export()
    return {"config": SpanConfig(exemplars=1).to_dict(),
            "points": points}


def _render_analytic_spans(payload: dict) -> str:
    from ..telemetry.spans import render_waterfall

    lines = ["Analytic read-path attribution (idle read, per scheme)"]
    for label in sorted(payload["points"]):
        exemplar = payload["points"][label]["exemplars"][0]
        lines.append("")
        lines.append(f"{label}: {exemplar['total_ns']:.1f} ns end-to-end")
        # The waterfall header names a request index; the scheme label
        # above already identifies the trace, so keep the bars only.
        lines.extend(render_waterfall(exemplar).splitlines()[1:])
    return "\n".join(lines)


def _append_ledger(args, argv, *, started_at: str, wall_s: float,
                   telemetry, exit_code: int = 0,
                   failed_units: str | None = None,
                   spans: dict | None = None) -> None:
    """Best-effort ledger append (I/O trouble never fails a bench run)."""
    from ..obs import append_record, describe_append_failure, run_record
    from ..telemetry.report import snapshot_digest

    bench_id = f"memo-{args.bench}"
    try:
        verdict = {"passed": None if exit_code == 0 else False,
                   "wall_s": round(wall_s, 4),
                   "cached": False}
        if failed_units:
            verdict["failed"] = failed_units
        record = run_record(
            tool="memo",
            argv=list(argv) if argv is not None else sys.argv[1:],
            ids=[bench_id], started_at=started_at, wall_s=wall_s,
            config={"bench": args.bench,
                    "scheme": getattr(args, "scheme", None)},
            verdicts={bench_id: verdict},
            metrics_digest=snapshot_digest(telemetry.registry),
            spans=spans,
            exit_code=exit_code)
        path = append_record(record)
        RUNLOG.debug("ledger-appended", path=str(path))
    except OSError as exc:
        RUNLOG.warn("ledger-append-failed",
                    **describe_append_failure(exc))


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    tracing = bool(getattr(args, "trace", None))
    wants_metrics = bool(getattr(args, "metrics", False))
    telemetry = (Telemetry.on(process_name=f"memo-{args.bench}")
                 if tracing or wants_metrics else NULL_TELEMETRY)
    jobs = getattr(args, "jobs", 1)
    if jobs > 1:
        from ..parallel import effective_cpu_count

        cpus = effective_cpu_count()
        if jobs > cpus:
            RUNLOG.warn("jobs-oversubscribed", jobs=jobs, cpus=cpus)
            print(f"note: --jobs {jobs} exceeds the {cpus} CPU(s) "
                  f"available to this process; expect a slowdown, "
                  f"not a speedup", file=sys.stderr)
    profiler = Profiler(enabled=bool(args.profile))
    started_at = datetime.now(timezone.utc).strftime(
        "%Y-%m-%dT%H:%M:%SZ")
    start = time.perf_counter()
    with profiler.phase("build-system"):
        testbed = combined_testbed()
        if getattr(args, "scenario", None):
            from ..errors import ScenarioError
            from ..scenarios import scenario_testbed

            try:
                testbed = scenario_testbed(args.scenario)
            except ScenarioError as exc:
                return RUNLOG.error(f"bad --scenario: {exc}")
        system = build_system(testbed)
    try:
        with profiler.phase(f"run:{args.bench}"):
            report = args.runner(system, args, telemetry)
    except ExperimentError as exc:
        # A supervised bench unit stayed poisoned after its retries.
        # Summarize on stderr and exit 1 — a traceback here would bury
        # the per-unit detail the supervisor already collected.
        RUNLOG.warn("bench-failed", bench=args.bench, error=str(exc))
        print(f"memo {args.bench} failed: {exc}", file=sys.stderr)
        wall_s = time.perf_counter() - start
        if not args.no_ledger:
            _append_ledger(args, argv, started_at=started_at,
                           wall_s=wall_s, telemetry=telemetry,
                           exit_code=EXIT_FAILED_CHECKS,
                           failed_units=str(exc))
        return EXIT_FAILED_CHECKS
    with profiler.phase("render+write"):
        print(report.render())
        if tracing:
            from pathlib import Path

            from ..telemetry.report import write_metrics, write_trace

            trace_path = write_trace(telemetry.tracer, args.trace)
            metrics_path = write_metrics(
                telemetry.registry,
                trace_path.with_suffix(
                    trace_path.suffix + ".metrics.json")
                if trace_path.suffix != ".json"
                else Path(str(trace_path)[: -len(".json")]
                          + ".metrics.json"))
            print(f"\ntrace written to {trace_path} "
                  f"(metrics: {metrics_path})")
        spans_payload = None
        if getattr(args, "spans", False):
            spans_payload = _analytic_spans_payload(
                system, _span_schemes(system, args))
            print()
            print(_render_analytic_spans(spans_payload))
        if wants_metrics:
            from ..telemetry.report import render_metrics

            print()
            print(render_metrics(telemetry.registry))
    wall_s = time.perf_counter() - start
    if args.profile:
        from pathlib import Path

        path = profiler.write(
            Path(args.profile) / f"memo-{args.bench}.profile.json",
            extra={"bench": args.bench, "wall_s": round(wall_s, 6)})
        RUNLOG.info("profile-written", path=str(path))
    if not args.no_ledger:
        from ..telemetry.spans import spans_digest

        _append_ledger(args, argv, started_at=started_at,
                       wall_s=wall_s, telemetry=telemetry,
                       spans=spans_digest(spans_payload)
                       if spans_payload is not None else None)
    return 0


if __name__ == "__main__":
    sys.exit(main())
