"""Pointer chasing versus working-set size (Fig 2, right).

Two implementations:

* the **analytic** sweep used for the figure — the stacked-capacity hit
  model of :meth:`CacheHierarchy.expected_latency_ns`;
* a **functional** chase, :func:`simulate_chase`, that walks a real
  randomized permutation through the simulated caches — used by tests to
  validate the analytic model against actual line movement.
"""

from __future__ import annotations

import numpy as np

from ..cache.hierarchy import CacheHierarchy
from ..cpu.system import MemoryScheme, System
from ..analysis.series import Series
from ..errors import ConfigError
from ..perfmodel.latency import LatencyModel
from ..sim.rng import substream
from ..units import CACHELINE, KIB, MIB
from .report import BenchReport

DEFAULT_WSS_POINTS = [16 * KIB, 64 * KIB, 256 * KIB, 1 * MIB, 4 * MIB,
                      16 * MIB, 64 * MIB, 256 * MIB, 1024 * MIB]


class PointerChaseBench:
    """Average chase latency as WSS crosses the cache hierarchy."""

    def __init__(self, system: System, *,
                 wss_points: list[int] | None = None,
                 schemes: list[MemoryScheme] | None = None) -> None:
        self.system = system
        self.wss_points = wss_points or DEFAULT_WSS_POINTS
        if any(w <= 0 for w in self.wss_points):
            raise ConfigError("working-set sizes must be positive")
        self.schemes = schemes or system.available_schemes()
        self.model = LatencyModel(system)

    def run(self) -> BenchReport:
        report = BenchReport(title="MEMO pointer chase vs WSS")
        for scheme in self.schemes:
            series = Series(scheme.label, x_label="WSS (KiB)",
                            y_label="latency (ns)")
            for wss in self.wss_points:
                series.append(wss / KIB,
                              self.model.pointer_chase_ns(scheme, wss))
            report.add_series("fig2-right", series)
        return report


def build_chain(wss_bytes: int, rng: np.random.Generator) -> np.ndarray:
    """A random cyclic permutation of the cachelines in a working set.

    ``chain[i]`` is the line index the chase visits after line ``i``; the
    cycle covers every line exactly once (a Sattolo shuffle), which is
    how real pointer-chase kernels defeat prefetchers.
    """
    lines = wss_bytes // CACHELINE
    if lines < 2:
        raise ConfigError(f"working set too small to chase: {wss_bytes} B")
    order = np.arange(lines)
    # Sattolo's algorithm: a single cycle through all elements.
    for i in range(lines - 1, 0, -1):
        j = int(rng.integers(0, i))
        order[i], order[j] = order[j], order[i]
    chain = np.empty(lines, dtype=np.int64)
    chain[order[-1]] = order[0]
    for a, b in zip(order, order[1:]):
        chain[a] = b
    return chain


def simulate_chase(hierarchy: CacheHierarchy, wss_bytes: int, *,
                   accesses: int, memory_latency_ns: float,
                   seed: int = 7, warmup: bool = True) -> float:
    """Functionally chase a random chain; returns average latency in ns.

    MEMO warms the working set into the hierarchy first (§4.2: "the
    working set is first brought into the cache hierarchy in a warm-up
    run"), so small working sets measure pure cache latency.
    """
    if accesses <= 0:
        raise ConfigError(f"accesses must be positive: {accesses}")
    chain = build_chain(wss_bytes, substream(f"chase-{seed}", seed))
    if warmup:
        for line in range(len(chain)):
            hierarchy.load(line * CACHELINE)
    total = 0.0
    line = 0
    for _ in range(accesses):
        result = hierarchy.load(line * CACHELINE)
        total += result.latency_ns
        if not result.hit:
            total += memory_latency_ns
        line = int(chain[line])
    return total / accesses
