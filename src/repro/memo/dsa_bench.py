"""Bulk data-movement methods compared (Fig 4b).

"Figure 4b shows maximum throughput observed performing memory copy
operations on the host processor via memcpy() or movdir64B, and
synchronously/asynchronously using Intel DSA with varying batch sizes
(e.g. 1, 16, and 128)."  All single-threaded.
"""

from __future__ import annotations

from ..cpu.system import MemoryScheme, System
from ..analysis.series import Series
from ..dsa.device import DsaDevice, SubmissionMode
from ..errors import ConfigError
from ..perfmodel.throughput import ThroughputModel
from .report import BenchReport

DEFAULT_BATCHES = [1, 16, 128]
DEFAULT_TRANSFER = 8192


class DsaBench:
    """memcpy / movdir64B / DSA sync / DSA async, per route."""

    def __init__(self, system: System, *,
                 batch_sizes: list[int] | None = None,
                 transfer_bytes: int = DEFAULT_TRANSFER) -> None:
        if not system.has_cxl:
            raise ConfigError("the DSA bench compares DDR5 and CXL routes")
        if transfer_bytes <= 0:
            raise ConfigError("transfer size must be positive")
        self.system = system
        self.batch_sizes = batch_sizes or DEFAULT_BATCHES
        self.transfer_bytes = transfer_bytes
        self.model = ThroughputModel(system)
        self.dsa = DsaDevice(system)
        self.routes = [
            (MemoryScheme.DDR5_L8, MemoryScheme.CXL),        # D2C
            (MemoryScheme.CXL, MemoryScheme.DDR5_L8),        # C2D
            (MemoryScheme.CXL, MemoryScheme.CXL),            # C2C
            (MemoryScheme.DDR5_L8, MemoryScheme.DDR5_L8),    # D2D
        ]

    def methods(self) -> list[str]:
        """Column labels, in figure order."""
        labels = ["memcpy", "movdir64B"]
        labels += [f"dsa-sync-b{b}" for b in self.batch_sizes]
        labels += [f"dsa-async-b{b}" for b in self.batch_sizes]
        return labels

    def throughput(self, method: str, src: MemoryScheme,
                   dst: MemoryScheme) -> float:
        """Single-threaded throughput of one method on one route, GB/s."""
        if method == "memcpy":
            return self.model.memcpy_bandwidth(src, dst).gb_per_s
        if method == "movdir64B":
            return self.model.copy_bandwidth(src, dst).gb_per_s
        if method.startswith("dsa-"):
            _, mode_name, batch_tag = method.split("-")
            mode = (SubmissionMode.SYNC if mode_name == "sync"
                    else SubmissionMode.ASYNC)
            batch = int(batch_tag[1:])
            return self.dsa.copy_throughput(
                src, dst, mode=mode, batch_size=batch,
                transfer_bytes=self.transfer_bytes) / 1e9
        raise ConfigError(f"unknown method {method!r}")

    def run(self) -> BenchReport:
        report = BenchReport(
            title="MEMO bulk data movement (single thread)")
        for src, dst in self.routes:
            route = self.model.copy_bandwidth(src, dst).scheme
            series = Series(route, x_label="method-index",
                            y_label="GB/s")
            for index, method in enumerate(self.methods()):
                series.append(float(index),
                              self.throughput(method, src, dst))
            report.add_series("fig4b", series)
        report.notes.append("methods: " + ", ".join(self.methods()))
        report.notes.append(
            f"transfer size per descriptor: {self.transfer_bytes} B")
        return report
