"""MEMO's latency test (Fig 2, left group).

§4.2: "MEMO starts by flushing the cacheline at the tested address and
immediately issues a mfence.  Then, MEMO issues a set of nop
instructions to flush the CPU pipeline.  When testing with load
instructions, we record the time it takes to access the flushed-out
cacheline; when testing with store instructions, we record the time it
takes to do temporal store then a cacheline write back (clwb), or the
execution time of non-temporal store, followed by a sfence."

Prefetching at all levels is disabled (Fig 2 caption), which is the
default here and asserted at construction.
"""

from __future__ import annotations

from ..cpu.isa import AccessKind
from ..cpu.system import MemoryScheme, System
from ..analysis.series import Series
from ..errors import ConfigError
from ..perfmodel.latency import LatencyModel
from .report import BenchReport

PROBE_KINDS = (AccessKind.LOAD, AccessKind.STORE, AccessKind.NT_STORE)
CHASE_SPACE_BYTES = 1 << 30   # "sequential pointer chasing in 1GB space"


class LatencyBench:
    """Per-scheme access-latency probes plus the 1 GiB pointer chase."""

    def __init__(self, system: System, *,
                 schemes: list[MemoryScheme] | None = None,
                 prefetch_enabled: bool = False,
                 samples: int = 1000) -> None:
        if prefetch_enabled:
            raise ConfigError(
                "the Fig-2 latency test runs with prefetching disabled "
                "at all levels")
        if samples <= 0:
            raise ConfigError(f"samples must be positive: {samples}")
        self.system = system
        self.schemes = schemes or system.available_schemes()
        self.samples = samples
        self.model = LatencyModel(system)

    def run(self) -> BenchReport:
        """Probe every (scheme, instruction) pair; returns Fig 2's bars."""
        report = BenchReport(
            title="MEMO latency (AVX-512, prefetch off)")
        for scheme in self.schemes:
            series = Series(scheme.label, x_label="probe",
                            y_label="latency (ns)")
            for index, kind in enumerate(PROBE_KINDS):
                series.append(float(index),
                              self.model.probe_ns(scheme, kind))
            series.append(float(len(PROBE_KINDS)),
                          self.model.pointer_chase_ns(
                              scheme, CHASE_SPACE_BYTES))
            report.add_series("fig2-left", series)
        report.notes.append(
            "probe order: " + ", ".join(
                [k.value for k in PROBE_KINDS] + ["ptr-chase"]))
        return report

    def probe(self, scheme: MemoryScheme, kind: AccessKind) -> float:
        """One probe in ns (the unit tests' entry point)."""
        return self.model.probe_ns(scheme, kind)

    def pointer_chase(self, scheme: MemoryScheme) -> float:
        """Average 1 GiB pointer-chase latency in ns."""
        return self.model.pointer_chase_ns(scheme, CHASE_SPACE_BYTES)
