"""Shared result container for MEMO benches."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.series import Series
from ..analysis.tables import format_table, series_table
from ..errors import ExperimentError


@dataclass
class BenchReport:
    """A bench's output: named series grouped into panels.

    A *panel* corresponds to one sub-figure (e.g. Fig 3a/3b/3c are three
    panels); each panel holds the series plotted in it.
    """

    title: str
    panels: dict[str, list[Series]] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def add_series(self, panel: str, series: Series) -> None:
        self.panels.setdefault(panel, []).append(series)

    def panel(self, name: str) -> list[Series]:
        if name not in self.panels:
            raise ExperimentError(
                f"report {self.title!r} has no panel {name!r}; "
                f"available: {sorted(self.panels)}")
        return self.panels[name]

    def series(self, panel: str, name: str) -> Series:
        for candidate in self.panel(panel):
            if candidate.name == name:
                return candidate
        raise ExperimentError(
            f"panel {panel!r} has no series {name!r}; available: "
            f"{[s.name for s in self.panel(panel)]}")

    def render(self, y_format: str = "{:.1f}", *,
               sparklines: bool = True) -> str:
        """The full report as text tables (plus sparklines), per panel."""
        from ..analysis.sparkline import series_sparklines

        blocks = [f"== {self.title} =="]
        for name in self.panels:
            blocks.append(series_table(self.panels[name],
                                       title=f"-- {name} --",
                                       y_format=y_format))
            if sparklines and any(len(s) > 2
                                  for s in self.panels[name]):
                blocks.append(series_sparklines(self.panels[name]))
        for note in self.notes:
            blocks.append(f"note: {note}")
        return "\n\n".join(blocks)

    def render_scalar_panel(self, panel: str, value_label: str,
                            y_format: str = "{:.1f}") -> str:
        """Render a panel of single-point series as name/value rows."""
        rows = []
        for series in self.panel(panel):
            if len(series) != 1:
                raise ExperimentError(
                    f"series {series.name!r} is not scalar")
            rows.append([series.name, y_format.format(series.y[0])])
        return format_table(["case", value_label], rows,
                            title=f"-- {panel} --")
