"""MEMO — the paper's microbenchmark, reimplemented on the simulator.

§4.1 describes MEMO's capabilities; each maps to a bench class here:

1. *allocate memory from different sources* — every bench takes the
   target :class:`~repro.cpu.system.MemoryScheme` (DDR5-L8 / DDR5-R1 /
   CXL) and allocates via ``numa_alloc_onnode`` semantics;
2. *launch a specified number of testing threads, pin each thread to a
   core, and optionally enable or disable prefetching* — thread counts
   are swept and pinned one-per-core, prefetch is a flag;
3. *perform memory accesses using inline assembly* — access kinds are
   AVX-512 ``ld`` / ``st+wb`` / ``nt-st`` (+ ``movdir64B``), all 64 B.

Benches:

* :class:`~repro.memo.latency_bench.LatencyBench` — Fig 2 (left);
* :class:`~repro.memo.pointer_chase.PointerChaseBench` — Fig 2 (right);
* :class:`~repro.memo.bandwidth_bench.SequentialBandwidthBench` — Fig 3;
* :class:`~repro.memo.movdir_bench.MovdirBench` and
  :class:`~repro.memo.dsa_bench.DsaBench` — Fig 4;
* :class:`~repro.memo.random_bench.RandomBlockBench` — Fig 5.

``memo`` is also an installed CLI (see :mod:`repro.memo.cli`).
"""

from .report import BenchReport
from .latency_bench import LatencyBench
from .pointer_chase import PointerChaseBench, simulate_chase
from .bandwidth_bench import SequentialBandwidthBench
from .random_bench import RandomBlockBench
from .movdir_bench import MovdirBench
from .dsa_bench import DsaBench
from .loaded_latency import LoadedLatencyBench
from .trace import AccessTrace, ReplayResult, replay
from .traffic import measure_cache_pollution, measure_stream_traffic

__all__ = [
    "BenchReport",
    "LatencyBench",
    "PointerChaseBench",
    "simulate_chase",
    "SequentialBandwidthBench",
    "RandomBlockBench",
    "MovdirBench",
    "DsaBench",
    "LoadedLatencyBench",
    "AccessTrace",
    "ReplayResult",
    "replay",
    "measure_stream_traffic",
    "measure_cache_pollution",
]
