"""Loaded-latency curves: latency as a function of injected bandwidth.

The classic memory-characterization plot (Intel MLC's headline output):
sweep an injection rate of background traffic against a scheme and
report the latency a dependent reader observes.  The paper's own probes
are unloaded; this bench extends MEMO with the loaded view, where the
three schemes separate even more dramatically — the CXL device saturates
at a tenth of DDR5-L8's injected bandwidth, so its latency wall sits far
to the left.
"""

from __future__ import annotations

from ..analysis.series import Series
from ..cpu.isa import AccessKind
from ..cpu.system import MemoryScheme, System
from ..errors import ConfigError
from ..mem.bandwidth import queueing_inflation
from ..perfmodel.latency import LatencyModel
from ..perfmodel.throughput import ThroughputModel
from .report import BenchReport

DEFAULT_POINTS = 12


class LoadedLatencyBench:
    """Latency-vs-injected-bandwidth curves for each scheme."""

    def __init__(self, system: System, *,
                 schemes: list[MemoryScheme] | None = None,
                 points: int = DEFAULT_POINTS) -> None:
        if points < 2:
            raise ConfigError(f"need at least 2 sweep points: {points}")
        self.system = system
        self.schemes = schemes or system.available_schemes()
        self.points = points
        self.latency = LatencyModel(system)
        self.throughput = ThroughputModel(system)

    def saturation_bandwidth(self, scheme: MemoryScheme) -> float:
        """Max sequential read bandwidth of the scheme (B/s)."""
        threads = self.system.socket.config.cores
        return self.throughput.bandwidth(scheme, AccessKind.LOAD,
                                         threads=threads).app_bandwidth

    def loaded_read_ns(self, scheme: MemoryScheme,
                       injected_fraction: float) -> float:
        """Reader latency with background load at a ceiling fraction."""
        if not 0.0 <= injected_fraction <= 1.0:
            raise ConfigError(
                f"injected fraction out of range: {injected_fraction}")
        base = self.latency.read_path_ns(scheme)
        return base * queueing_inflation(injected_fraction)

    def curve(self, scheme: MemoryScheme) -> Series:
        """One curve: x = injected % of the scheme's own saturation.

        A relative x axis lets the three schemes share one table; use
        :meth:`curve_absolute` or
        :meth:`latency_at_equal_injection` for absolute comparisons.
        """
        series = Series(scheme.label, x_label="injected (% of saturation)",
                        y_label="read latency (ns)")
        for index in range(self.points):
            fraction = index / (self.points - 1) * 0.98
            series.append(round(fraction * 100, 1),
                          self.loaded_read_ns(scheme, fraction))
        return series

    def curve_absolute(self, scheme: MemoryScheme) -> Series:
        """One curve with absolute injected GB/s on x."""
        saturation = self.saturation_bandwidth(scheme)
        series = Series(scheme.label, x_label="injected GB/s",
                        y_label="read latency (ns)")
        for index in range(self.points):
            fraction = index / (self.points - 1) * 0.98
            series.append(saturation * fraction / 1e9,
                          self.loaded_read_ns(scheme, fraction))
        return series

    def run(self) -> BenchReport:
        report = BenchReport(title="MEMO loaded latency "
                                   "(dependent reads under injection)")
        for scheme in self.schemes:
            report.add_series("loaded-latency", self.curve(scheme))
        for scheme in self.schemes:
            report.notes.append(
                f"{scheme.label} saturation: "
                f"{self.saturation_bandwidth(scheme) / 1e9:.1f} GB/s")
        return report

    def latency_at_equal_injection(self, injected_gb_s: float
                                   ) -> dict[str, float]:
        """Latency per scheme at one absolute injection rate.

        Schemes whose ceiling is below the rate report infinity —
        they cannot absorb that load at all (the CXL wall).
        """
        if injected_gb_s < 0:
            raise ConfigError("injection rate must be non-negative")
        outcome = {}
        for scheme in self.schemes:
            saturation = self.saturation_bandwidth(scheme) / 1e9
            if injected_gb_s >= saturation:
                outcome[scheme.label] = float("inf")
            else:
                outcome[scheme.label] = self.loaded_read_ns(
                    scheme, injected_gb_s / saturation)
        return outcome
