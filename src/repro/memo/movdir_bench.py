"""movdir64B data-movement bandwidth (Fig 4a).

§4.3.1: "movdir64B ... moves a 64B data from the source memory address
to a destination memory address and explicitly bypasses the cache for
both loading the source and storing it to the destination."

Routes use the paper's naming: D = local DDR5, C = CXL memory, so D2C is
a DDR5→CXL copy.
"""

from __future__ import annotations

from ..cpu.system import MemoryScheme, System
from ..analysis.series import Series
from ..errors import ConfigError
from ..perfmodel.throughput import ThroughputModel
from .report import BenchReport

DEFAULT_THREADS = [1, 2, 4, 8]


class MovdirBench:
    """movdir64B copy bandwidth across all D/C route combinations."""

    def __init__(self, system: System, *,
                 thread_counts: list[int] | None = None) -> None:
        if not system.has_cxl:
            raise ConfigError("the movdir bench compares DDR5 and CXL "
                              "routes; the system has no CXL device")
        self.system = system
        self.thread_counts = thread_counts or DEFAULT_THREADS
        self.model = ThroughputModel(system)
        self.routes = [
            (MemoryScheme.DDR5_L8, MemoryScheme.DDR5_L8),   # D2D
            (MemoryScheme.DDR5_L8, MemoryScheme.CXL),        # D2C
            (MemoryScheme.CXL, MemoryScheme.DDR5_L8),        # C2D
            (MemoryScheme.CXL, MemoryScheme.CXL),            # C2C
        ]

    def run(self) -> BenchReport:
        report = BenchReport(title="MEMO movdir64B data movement")
        for src, dst in self.routes:
            label = self.model.copy_bandwidth(src, dst).scheme
            series = Series(label, x_label="threads", y_label="GB/s")
            for threads in self.thread_counts:
                result = self.model.copy_bandwidth(src, dst,
                                                   threads=threads)
                series.append(float(threads), result.gb_per_s)
            report.add_series("fig4a", series)
        return report

    def route_bandwidth(self, src: MemoryScheme, dst: MemoryScheme,
                        threads: int = 4) -> float:
        """One route's bandwidth in GB/s."""
        return self.model.copy_bandwidth(src, dst, threads=threads).gb_per_s
