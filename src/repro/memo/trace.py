"""Trace-driven replay: run arbitrary access streams through the model.

MEMO's built-in patterns (sequential, random-block, pointer chase) cover
the paper's figures; real users have real traces.  This module replays
an :class:`AccessTrace` — arrays of (address, access-kind) — through the
functional cache hierarchy and the latency model, reporting per-level
hits, bus traffic, and estimated time per scheme.

Also doubles as a validation surface: the bundled generators re-create
MEMO's own patterns, so replayed results can be checked against the
analytic benches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cache.hierarchy import CacheHierarchy
from ..cpu.isa import AccessKind
from ..cpu.system import MemoryScheme, System
from ..errors import WorkloadError
from ..perfmodel.latency import LatencyModel
from ..sim.rng import substream
from ..units import CACHELINE

_KIND_CODES = {AccessKind.LOAD: 0, AccessKind.STORE: 1,
               AccessKind.NT_STORE: 2}
_CODE_KINDS = {code: kind for kind, code in _KIND_CODES.items()}


@dataclass(frozen=True)
class AccessTrace:
    """A replayable access stream."""

    addresses: np.ndarray        # byte addresses, int64
    kinds: np.ndarray            # codes from _KIND_CODES, int8

    def __post_init__(self) -> None:
        if self.addresses.shape != self.kinds.shape:
            raise WorkloadError("addresses and kinds must align")
        if self.addresses.size == 0:
            raise WorkloadError("empty trace")
        if self.addresses.min() < 0:
            raise WorkloadError("negative address in trace")
        if not set(np.unique(self.kinds)) <= set(_CODE_KINDS):
            raise WorkloadError("unknown access-kind code in trace")

    def __len__(self) -> int:
        return int(self.addresses.size)

    @property
    def footprint_bytes(self) -> int:
        """Distinct cachelines touched x 64."""
        lines = np.unique(self.addresses // CACHELINE)
        return int(lines.size) * CACHELINE

    @classmethod
    def from_operations(cls, operations: list[tuple[int, AccessKind]]
                        ) -> "AccessTrace":
        """Build from a list of (address, kind) pairs."""
        if not operations:
            raise WorkloadError("empty trace")
        addresses = np.array([a for a, _ in operations], dtype=np.int64)
        kinds = np.array([_KIND_CODES[k] for _, k in operations],
                         dtype=np.int8)
        return cls(addresses, kinds)

    @classmethod
    def sequential(cls, kind: AccessKind, *, num_lines: int,
                   base: int = 0) -> "AccessTrace":
        """MEMO's sequential pattern as a trace."""
        if num_lines <= 0:
            raise WorkloadError("num_lines must be positive")
        addresses = base + np.arange(num_lines, dtype=np.int64) * CACHELINE
        kinds = np.full(num_lines, _KIND_CODES[kind], dtype=np.int8)
        return cls(addresses, kinds)

    @classmethod
    def random_block(cls, kind: AccessKind, *, num_blocks: int,
                     block_bytes: int, region_bytes: int,
                     seed: int = 17) -> "AccessTrace":
        """MEMO's random-block pattern: sequential runs at random offsets."""
        if block_bytes < CACHELINE or block_bytes % CACHELINE:
            raise WorkloadError("block must be whole cachelines")
        if region_bytes < block_bytes:
            raise WorkloadError("region smaller than one block")
        rng = substream(f"trace-{seed}", seed)
        lines_per_block = block_bytes // CACHELINE
        max_start = (region_bytes - block_bytes) // CACHELINE + 1
        starts = rng.integers(0, max_start, size=num_blocks) * CACHELINE
        offsets = np.arange(lines_per_block, dtype=np.int64) * CACHELINE
        addresses = (starts[:, None] + offsets[None, :]).reshape(-1)
        kinds = np.full(addresses.size, _KIND_CODES[kind], dtype=np.int8)
        return cls(addresses.astype(np.int64), kinds)


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of replaying a trace against one scheme."""

    accesses: int
    level_hits: dict[str, int]      # "L1d"/"L2"/"LLC"/"memory"
    memory_reads: int
    memory_writes: int
    estimated_ns: float

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses served by any cache level."""
        served = self.accesses - self.level_hits.get("memory", 0)
        return served / self.accesses

    @property
    def estimated_bandwidth(self) -> float:
        """Application B/s implied by the estimate."""
        if self.estimated_ns <= 0:
            raise WorkloadError("zero-time replay")
        return self.accesses * CACHELINE / (self.estimated_ns / 1e9)


def replay(trace: AccessTrace, system: System,
           scheme: MemoryScheme, *,
           hierarchy: CacheHierarchy | None = None,
           overlap: float = 0.75) -> ReplayResult:
    """Replay ``trace`` functionally and estimate its execution time.

    ``overlap`` discounts the serialized memory time for independent
    accesses (out-of-order cores overlap misses); 0 means fully
    serialized (a dependent chain), values near 1 mean deep MLP.
    """
    if not 0.0 <= overlap < 1.0:
        raise WorkloadError(f"overlap must be in [0, 1): {overlap}")
    if hierarchy is None:
        hierarchy = system.socket.new_hierarchy()
    latency = LatencyModel(system)
    memory_ns = latency.memory_side_ns(scheme)
    write_ns = (system.backend_for_node(
        system.scheme_node(scheme)).idle_write_ns())

    level_hits: dict[str, int] = {}
    reads = 0
    writes = 0
    total_ns = 0.0
    writebacks_before = hierarchy.memory_writebacks
    for address, code in zip(trace.addresses, trace.kinds):
        kind = _CODE_KINDS[int(code)]
        if kind is AccessKind.LOAD:
            result = hierarchy.load(int(address))
        elif kind is AccessKind.STORE:
            result = hierarchy.store(int(address))
        else:
            result = hierarchy.nt_store(int(address))
        level_hits[result.level] = level_hits.get(result.level, 0) + 1
        reads += result.memory_reads
        writes += result.memory_writes
        access_ns = result.latency_ns
        if result.memory_reads:
            access_ns += memory_ns * (1.0 - overlap)
        if result.memory_writes and kind is AccessKind.NT_STORE:
            access_ns += write_ns * (1.0 - overlap) * 0.3
        total_ns += access_ns
    writes += hierarchy.memory_writebacks - writebacks_before
    return ReplayResult(accesses=len(trace), level_hits=level_hits,
                        memory_reads=reads, memory_writes=writes,
                        estimated_ns=total_ns)
