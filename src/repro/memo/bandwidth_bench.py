"""Sequential-access bandwidth sweeps (Fig 3).

§4.3: "MEMO performs blocks of sequential or random access within each
testing thread.  The main program calculates the average bandwidth for a
fixed interval by summing the number of bytes accessed."

One panel per memory scheme (Fig 3a = DDR5-L8, 3b = CXL, 3c = DDR5-R1),
three curves per panel (load / store / nt-store), thread counts on x.
"""

from __future__ import annotations

from ..cpu.isa import AccessKind
from ..cpu.system import MemoryScheme, System
from ..analysis.series import Series
from ..errors import ConfigError
from ..perfmodel.throughput import ThroughputModel
from ..units import ddr_peak_bandwidth
from .report import BenchReport

SWEEP_KINDS = (AccessKind.LOAD, AccessKind.STORE, AccessKind.NT_STORE)
DEFAULT_THREADS = [1, 2, 4, 8, 12, 16, 20, 24, 26, 28, 32]


class SequentialBandwidthBench:
    """Thread-count sweeps of sequential AVX-512 bandwidth."""

    def __init__(self, system: System, *,
                 thread_counts: list[int] | None = None,
                 schemes: list[MemoryScheme] | None = None) -> None:
        self.system = system
        if thread_counts is None:
            thread_counts = [n for n in DEFAULT_THREADS
                             if n <= system.socket.config.cores]
        if not thread_counts:
            raise ConfigError("no usable thread counts")
        self.thread_counts = thread_counts
        self.schemes = schemes or system.available_schemes()
        self.model = ThroughputModel(system)

    def run(self) -> BenchReport:
        report = BenchReport(title="MEMO sequential bandwidth")
        for scheme in self.schemes:
            panel = f"fig3-{scheme.label}"
            for kind in SWEEP_KINDS:
                series = Series(kind.value, x_label="threads",
                                y_label="GB/s")
                for threads in self.thread_counts:
                    result = self.model.bandwidth(scheme, kind,
                                                  threads=threads)
                    series.append(float(threads), result.gb_per_s)
                report.add_series(panel, series)
        if MemoryScheme.CXL in self.schemes:
            # The grey dashed line in Fig 3b.
            theoretical = ddr_peak_bandwidth(
                self.system.config.cxl.dram.transfer_mt_s) / 1e9
            report.notes.append(
                f"CXL DDR4 theoretical max: {theoretical:.1f} GB/s")
        return report

    def peak(self, scheme: MemoryScheme, kind: AccessKind
             ) -> tuple[int, float]:
        """(threads, GB/s) at the scheme/kind peak across the sweep."""
        best_threads, best_bw = 0, 0.0
        for threads in self.thread_counts:
            bw = self.model.bandwidth(scheme, kind,
                                      threads=threads).gb_per_s
            if bw > best_bw:
                best_threads, best_bw = threads, bw
        return best_threads, best_bw
