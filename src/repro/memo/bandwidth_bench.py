"""Sequential-access bandwidth sweeps (Fig 3).

§4.3: "MEMO performs blocks of sequential or random access within each
testing thread.  The main program calculates the average bandwidth for a
fixed interval by summing the number of bytes accessed."

One panel per memory scheme (Fig 3a = DDR5-L8, 3b = CXL, 3c = DDR5-R1),
three curves per panel (load / store / nt-store), thread counts on x.
"""

from __future__ import annotations

from ..cpu.isa import AccessKind
from ..cpu.system import MemoryScheme, System
from ..analysis.series import Series
from ..errors import ConfigError
from ..perfmodel.throughput import ThroughputModel
from ..units import ddr_peak_bandwidth
from .report import BenchReport

SWEEP_KINDS = (AccessKind.LOAD, AccessKind.STORE, AccessKind.NT_STORE)
DEFAULT_THREADS = [1, 2, 4, 8, 12, 16, 20, 24, 26, 28, 32]


class SequentialBandwidthBench:
    """Thread-count sweeps of sequential AVX-512 bandwidth."""

    def __init__(self, system: System, *,
                 thread_counts: list[int] | None = None,
                 schemes: list[MemoryScheme] | None = None,
                 jobs: int = 1, policy=None) -> None:
        self.system = system
        if thread_counts is None:
            thread_counts = [n for n in DEFAULT_THREADS
                             if n <= system.socket.config.cores]
        if not thread_counts:
            raise ConfigError("no usable thread counts")
        self.thread_counts = thread_counts
        self.schemes = schemes or system.available_schemes()
        self.model = ThroughputModel(system)
        self.jobs = jobs
        self.policy = policy
        # When a SupervisionPolicy is given, curve units run under
        # repro.resilience supervision (timeouts/retries) whatever
        # ``jobs`` says; with policy=None behavior is unchanged.

    def run(self) -> BenchReport:
        report = BenchReport(title="MEMO sequential bandwidth")
        units = [(scheme, kind) for scheme in self.schemes
                 for kind in SWEEP_KINDS]
        if self.policy is not None:
            from ..parallel.sweeps import run_series_supervised

            specs = [(self.system, scheme, kind, None,
                      [{"threads": threads}
                       for threads in self.thread_counts])
                     for scheme, kind in units]
            curves = run_series_supervised(
                specs, jobs=self.jobs, policy=self.policy,
                names=[f"{scheme.label}-{kind.value}"
                       for scheme, kind in units])
        elif self.jobs > 1:
            # One worker unit per (scheme, kind) curve; merged back in
            # sweep order so the report is identical to a serial run's.
            from ..parallel import ParallelRunner
            from ..parallel.sweeps import run_model_series

            specs = [(self.system, scheme, kind, None,
                      [{"threads": threads}
                       for threads in self.thread_counts])
                     for scheme, kind in units]
            curves = ParallelRunner(self.jobs).map(run_model_series,
                                                   specs)
        else:
            curves = [[self.model.bandwidth(scheme, kind,
                                            threads=threads).gb_per_s
                       for threads in self.thread_counts]
                      for scheme, kind in units]
        for (scheme, kind), values in zip(units, curves):
            series = Series(kind.value, x_label="threads",
                            y_label="GB/s")
            for threads, gb_per_s in zip(self.thread_counts, values):
                series.append(float(threads), gb_per_s)
            report.add_series(f"fig3-{scheme.label}", series)
        if MemoryScheme.CXL in self.schemes:
            # The grey dashed line in Fig 3b.
            theoretical = ddr_peak_bandwidth(
                self.system.config.cxl.dram.transfer_mt_s) / 1e9
            report.notes.append(
                f"CXL DDR4 theoretical max: {theoretical:.1f} GB/s")
        return report

    def peak(self, scheme: MemoryScheme, kind: AccessKind
             ) -> tuple[int, float]:
        """(threads, GB/s) at the scheme/kind peak across the sweep."""
        best_threads, best_bw = 0, 0.0
        for threads in self.thread_counts:
            bw = self.model.bandwidth(scheme, kind,
                                      threads=threads).gb_per_s
            if bw > best_bw:
                best_threads, best_bw = threads, bw
        return best_threads, best_bw
