"""The end-to-end latency model behind Fig. 2.

A memory access is a path::

    core issue -> L1 -> L2 -> LLC -> mesh -> home agent -> [beyond the edge]

where "beyond the edge" is one of the three backends (local iMC+DDR5,
UPI+remote iMC+DDR5, or CXL port + device controller + DDR4).  The model
composes those pieces into the probes MEMO times:

* ``flushed_load_ns`` — clflush + mfence, then one AVX-512 load;
* ``flushed_store_writeback_ns`` — temporal store + clwb ("st+wb");
* ``nt_store_ns`` — non-temporal store + sfence;
* ``pointer_chase_ns`` — the average of a dependent chase over a working
  set, optionally per-WSS (the Fig. 2 staircase).
"""

from __future__ import annotations

from ..cache.prefetcher import StreamPrefetcher
from ..cpu.isa import FENCE_NS, AccessKind
from ..cpu.system import MemoryScheme, System
from ..errors import ConfigError
from ..mem.device import MemoryBackend


class LatencyModel:
    """Unloaded access-latency queries for every scheme of a system."""

    def __init__(self, system: System) -> None:
        self.system = system

    # -- path pieces -------------------------------------------------------

    def _backend(self, scheme: MemoryScheme) -> MemoryBackend:
        return self.system.scheme_backend(scheme)

    def read_path_ns(self, scheme: MemoryScheme) -> float:
        """Socket edge + device read: one demand miss, no cache effects."""
        return self.system.edge_ns() + self._backend(scheme).idle_read_ns()

    def write_path_ns(self, scheme: MemoryScheme) -> float:
        """Socket edge + device write acknowledged."""
        return self.system.edge_ns() + self._backend(scheme).idle_write_ns()

    # -- MEMO's Fig-2 probes -----------------------------------------------

    def flushed_load_ns(self, scheme: MemoryScheme) -> float:
        """Latency of loading a just-flushed line (MEMO 'ld', §4.2).

        Includes the coherence-directory penalty for flushed lines the
        paper cites from the Optane study [31].
        """
        core = self.system.socket.config.core
        return (core.issue_overhead_ns
                + self.system.flushed_line_penalty_ns()
                + self.read_path_ns(scheme)
                + FENCE_NS)

    def flushed_store_writeback_ns(self, scheme: MemoryScheme) -> float:
        """Temporal store to a flushed line, then clwb ('st+wb').

        The store miss triggers an RFO (a full read round trip); the
        clwb then pushes the dirty line back out (a write round trip).
        This RFO accounting is why st+wb is the slowest probe on CXL.
        """
        core = self.system.socket.config.core
        return (core.issue_overhead_ns
                + self.system.flushed_line_penalty_ns()
                + self.read_path_ns(scheme)        # RFO fill
                + self.write_path_ns(scheme)       # clwb writeback
                + FENCE_NS)

    def nt_store_ns(self, scheme: MemoryScheme) -> float:
        """Non-temporal store + sfence ('nt-st').

        No RFO, no flushed-line handshake — the line is never cached.
        The sfence waits for global visibility, i.e. one write path.
        """
        core = self.system.socket.config.core
        return (core.issue_overhead_ns
                + self.write_path_ns(scheme)
                + FENCE_NS)

    def probe_ns(self, scheme: MemoryScheme, kind: AccessKind) -> float:
        """Dispatch a Fig-2 probe by access kind."""
        if kind is AccessKind.LOAD:
            return self.flushed_load_ns(scheme)
        if kind is AccessKind.STORE:
            return self.flushed_store_writeback_ns(scheme)
        if kind is AccessKind.NT_STORE:
            return self.nt_store_ns(scheme)
        raise ConfigError(f"no Fig-2 probe for {kind}")

    # -- pointer chasing -----------------------------------------------------

    def memory_side_ns(self, scheme: MemoryScheme) -> float:
        """Everything past the LLC miss: mesh + home agent + backend read."""
        socket = self.system.socket
        return (socket.mesh.traverse_ns()
                + socket.config.home_agent_ns
                + self._backend(scheme).idle_read_ns())

    def prefetched_sequential_read_ns(self, scheme: MemoryScheme) -> float:
        """Average per-line latency of a *sequential* walk, prefetch ON.

        MEMO's prefetch toggle (§4.1): with the stream prefetcher
        enabled, its covered fraction of lines arrives at L1/L2 before
        demand and costs only the hierarchy lookup; the remainder pays
        the full read path.  A dependent chase gains nothing — stride
        detection cannot lock onto a random chain — which is why the
        Fig-2 tests disable prefetch to measure the true path.
        """
        prefetcher = StreamPrefetcher(enabled=True)
        coverage = prefetcher.coverage(sequential=True)
        covered_ns = (self.system.socket.config.cache.l1.latency_ns
                      + self.system.socket.config.cache.l2.latency_ns)
        return (coverage * covered_ns
                + (1.0 - coverage) * self.read_path_ns(scheme))

    def pointer_chase_ns(self, scheme: MemoryScheme,
                         working_set_bytes: int | None = None) -> float:
        """Average dependent-load latency ('ptr-chase').

        With no ``working_set_bytes`` the chase misses every level
        (MEMO's 1 GiB default); with one, the analytic WSS staircase of
        Fig. 2 (right) applies.  Prefetchers are disabled in this test
        and would not help a dependent chain anyway.
        """
        if working_set_bytes is None:
            return self.read_path_ns(scheme)
        hierarchy = self.system.socket.new_hierarchy()
        return hierarchy.expected_latency_ns(working_set_bytes,
                                             self.memory_side_ns(scheme))
