"""Device-specific interference curves.

The generic queueing model in :mod:`repro.mem.bandwidth` covers
utilization effects; this module holds the empirically-shaped curves the
paper attributes to the Agilex device's finite buffering, calibrated to
the figure anchors rather than derived from first principles (documented
in DESIGN.md §5).
"""

from __future__ import annotations

NT_BUFFER_BYTES = 64 * 1024
"""Effective nt-store burst capacity of the device (buffer + pipeline).

§4.3.2's sweet spots imply threads x block ~ 64 KiB: "the 2-thread
bandwidth reaches its peak when the block size is 32KB, and the 4-thread
bandwidth peaks at a block size of 16KB".
"""


def nt_store_sweet_spot_derate(threads: int, block_bytes: int,
                               buffer_bytes: int = NT_BUFFER_BYTES) -> float:
    """Random-block nt-store derate for the CXL device (Fig. 5, bottom-right).

    * One thread never overflows — its issue rate stays below the device
      drain rate, so "single-threaded nt-store scales nicely with block
      size".
    * Multiple threads exceed the drain rate; bursts accumulate in the
      device buffer and the sweet spot sits where the aggregate burst
      (``threads * block``) matches the buffer.  Past it, stalls grow
      with the overflow ratio.
    """
    if threads <= 0 or block_bytes <= 0 or buffer_bytes <= 0:
        raise ValueError("threads, block and buffer must be positive")
    if threads == 1:
        return 1.0
    burst = threads * block_bytes
    if burst <= buffer_bytes:
        return 1.0
    overflow = burst / buffer_bytes
    return max(0.35, 1.0 / (0.6 + 0.4 * overflow))
