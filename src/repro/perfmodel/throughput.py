"""The closed-loop bandwidth solver behind Figs 3, 4a and 5.

Model
-----
Each of ``n`` pinned threads keeps ``MLP(kind, pattern)`` 64 B lines in
flight, each occupying its slot for the unloaded path latency — Little's
law gives per-thread bandwidth and hence the linear region's slope.
Aggregate demand then meets the device's derated ceiling:

* a bus ceiling from :meth:`MemoryBackend.bus_ceiling` (row locality,
  channel count, link framing, write turnaround);
* device-specific concurrency derates (the Agilex controller's
  stream-mixing and write-buffer behavior).

``app_bandwidth = min(demand, ceiling / traffic_factor)`` — the sharp
saturation the paper's curves show.  The reported ``loaded_read_ns``
inflates the unloaded latency by the resulting utilization via the
queueing curve, which is what application models consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cpu.isa import AccessKind
from ..cpu.system import MemoryScheme, System
from ..cxl.device import CxlMemoryBackend
from ..errors import ConfigError
from ..mem.bandwidth import queueing_inflation
from ..mem.device import MemoryBackend
from ..mem.dram import AccessPattern
from ..cpu.core import WRITE_ACCEPTANCE_NS
from .contention import nt_store_sweet_spot_derate

DEFAULT_BLOCK = 1 << 20
"""Block size used for sequential runs (large enough for full locality)."""


@dataclass(frozen=True)
class BandwidthResult:
    """One point of a bandwidth sweep."""

    scheme: str
    kind: AccessKind
    pattern: AccessPattern
    threads: int
    block_bytes: int
    app_bandwidth: float          # application B/s
    bus_bandwidth: float          # bus B/s (= app x traffic factor)
    utilization: float            # of the derated bus ceiling
    loaded_read_ns: float         # equilibrium read-path latency

    @property
    def per_thread_bandwidth(self) -> float:
        return self.app_bandwidth / self.threads

    @property
    def gb_per_s(self) -> float:
        """Application bandwidth in the paper's GB/s convention."""
        return self.app_bandwidth / 1e9


class ThroughputModel:
    """Bandwidth queries for every scheme of a system."""

    def __init__(self, system: System) -> None:
        self.system = system

    # -- public API ---------------------------------------------------------

    def bandwidth(self, scheme: MemoryScheme, kind: AccessKind,
                  pattern: AccessPattern = AccessPattern.SEQUENTIAL,
                  *, threads: int = 1,
                  block_bytes: int = DEFAULT_BLOCK) -> BandwidthResult:
        """Sustained bandwidth for one (scheme, kind, pattern) point."""
        if threads <= 0:
            raise ConfigError(f"thread count must be positive: {threads}")
        if threads > self.system.socket.config.cores:
            raise ConfigError(
                f"{threads} threads exceed the socket's "
                f"{self.system.socket.config.cores} cores")
        if kind is AccessKind.MOVDIR64B:
            raise ConfigError(
                "movdir64B is a copy; use copy_bandwidth(src, dst)")
        backend = self.system.scheme_backend(scheme)
        ceiling_bus = self._derated_ceiling(backend, kind, pattern,
                                            block_bytes, threads)
        traffic = kind.traffic_factor
        app_ceiling = ceiling_bus / traffic

        demand = threads * self._per_thread_bw(backend, kind, pattern,
                                               block_bytes, 0.0)
        app_bw = min(demand, app_ceiling)
        rho = app_bw * traffic / ceiling_bus
        loaded_read = self._read_latency(backend, rho)
        return BandwidthResult(scheme=scheme.label, kind=kind,
                               pattern=pattern, threads=threads,
                               block_bytes=block_bytes,
                               app_bandwidth=app_bw,
                               bus_bandwidth=app_bw * traffic,
                               utilization=rho,
                               loaded_read_ns=loaded_read)

    def copy_bandwidth(self, src: MemoryScheme, dst: MemoryScheme,
                       *, threads: int = 1,
                       block_bytes: int = DEFAULT_BLOCK) -> BandwidthResult:
        """movdir64B copy bandwidth between two schemes (Fig. 4a).

        Per line: a cache-bypassing 64 B read at the source plus a posted
        64 B write at the destination.  The source read latency dominates
        the per-thread rate (§4.3.1); ceilings apply on both devices,
        sharing one bus when ``src == dst``.
        """
        if threads <= 0:
            raise ConfigError(f"thread count must be positive: {threads}")
        kind = AccessKind.MOVDIR64B
        src_backend = self.system.scheme_backend(src)
        dst_backend = self.system.scheme_backend(dst)
        core = self.system.socket.cores[0]
        mlp = core.effective_mlp(kind, AccessPattern.SEQUENTIAL)
        issue = core.config.issue_overhead_ns
        read0 = self._read_latency(src_backend, 0.0)

        if src is dst:
            ceiling = src_backend.bus_ceiling(
                AccessPattern.SEQUENTIAL, block_bytes, streams=2 * threads,
                write_fraction=0.5)
            ceiling *= src_backend.concurrency_derate(
                readers=threads, writers=0, nt_writers=threads)
            traffic = 2.0     # read + write share one bus
        else:
            read_ceiling = (src_backend.bus_ceiling(
                AccessPattern.SEQUENTIAL, block_bytes, streams=threads)
                * src_backend.concurrency_derate(readers=threads, writers=0))
            write_ceiling = (dst_backend.bus_ceiling(
                AccessPattern.SEQUENTIAL, block_bytes, streams=threads,
                write_fraction=1.0)
                * dst_backend.concurrency_derate(readers=0, writers=0,
                                                 nt_writers=threads))
            ceiling = min(read_ceiling, write_ceiling)
            traffic = 1.0     # each bus sees app bytes once

        service = issue + read0 + WRITE_ACCEPTANCE_NS
        demand = threads * mlp * 64 / (service / 1e9)
        app_bw = min(demand, ceiling / traffic)
        rho = app_bw * traffic / ceiling
        return BandwidthResult(scheme=f"{_short(src)}2{_short(dst)}",
                               kind=kind, pattern=AccessPattern.SEQUENTIAL,
                               threads=threads, block_bytes=block_bytes,
                               app_bandwidth=app_bw,
                               bus_bandwidth=app_bw * traffic,
                               utilization=rho,
                               loaded_read_ns=read0 * queueing_inflation(rho))

    def memcpy_bandwidth(self, src: MemoryScheme, dst: MemoryScheme,
                         *, threads: int = 1,
                         block_bytes: int = DEFAULT_BLOCK) -> BandwidthResult:
        """Plain ``memcpy()``: cached loads + temporal stores (Fig. 4b).

        Unlike movdir64B, the destination writes are temporal — each pays
        an RFO, so the destination bus sees twice the application bytes.
        """
        if threads <= 0:
            raise ConfigError(f"thread count must be positive: {threads}")
        src_backend = self.system.scheme_backend(src)
        dst_backend = self.system.scheme_backend(dst)
        core = self.system.socket.cores[0]
        read0 = self._read_latency(src_backend, 0.0)
        write0 = self._write_latency(dst_backend, 0.0)
        mlp = core.effective_mlp(AccessKind.STORE, AccessPattern.SEQUENTIAL)
        service = core.config.issue_overhead_ns + read0 + 0.3 * write0
        demand = threads * mlp * 64 / (service / 1e9)

        if src is dst:
            bus = src_backend.bus_ceiling(AccessPattern.SEQUENTIAL,
                                          block_bytes, streams=2 * threads,
                                          write_fraction=2 / 3)
            app_ceiling = bus / 3.0       # 1 read + RFO + writeback
        else:
            read_bus = src_backend.bus_ceiling(
                AccessPattern.SEQUENTIAL, block_bytes, streams=threads)
            write_bus = dst_backend.bus_ceiling(
                AccessPattern.SEQUENTIAL, block_bytes, streams=threads,
                write_fraction=0.5)
            app_ceiling = min(read_bus, write_bus / 2.0)
        app_bw = min(demand, app_ceiling)
        return BandwidthResult(scheme=f"{_short(src)}2{_short(dst)}-memcpy",
                               kind=AccessKind.STORE,
                               pattern=AccessPattern.SEQUENTIAL,
                               threads=threads, block_bytes=block_bytes,
                               app_bandwidth=app_bw,
                               bus_bandwidth=app_bw * 3.0,
                               utilization=min(1.0, app_bw / app_ceiling),
                               loaded_read_ns=read0)

    def sweep_threads(self, scheme: MemoryScheme, kind: AccessKind,
                      thread_counts: list[int],
                      pattern: AccessPattern = AccessPattern.SEQUENTIAL,
                      block_bytes: int = DEFAULT_BLOCK
                      ) -> list[BandwidthResult]:
        """One Fig-3 curve: bandwidth at each thread count."""
        return [self.bandwidth(scheme, kind, pattern, threads=n,
                               block_bytes=block_bytes)
                for n in thread_counts]

    # -- internals ---------------------------------------------------------

    def _read_latency(self, backend: MemoryBackend, rho: float) -> float:
        base = self.system.edge_ns() + backend.idle_read_ns()
        return base * queueing_inflation(rho)

    def _write_latency(self, backend: MemoryBackend, rho: float) -> float:
        base = self.system.edge_ns() + backend.idle_write_ns()
        return base * queueing_inflation(rho)

    def _per_thread_bw(self, backend: MemoryBackend, kind: AccessKind,
                       pattern: AccessPattern, block_bytes: int,
                       rho: float) -> float:
        core = self.system.socket.cores[0]
        read_ns = self._read_latency(backend, rho)
        write_ns = self._write_latency(backend, rho)
        if kind is AccessKind.NT_STORE:
            accept = WRITE_ACCEPTANCE_NS * queueing_inflation(rho)
            if pattern is AccessPattern.RANDOM_BLOCK:
                # The per-block sfence drains the pipeline: fill the block
                # at the acceptance rate, then wait one write round trip.
                issue_ns = block_bytes / (core.config.wc_buffers * 64) \
                    * accept
                return block_bytes / ((issue_ns + write_ns) / 1e9)
            return core.config.wc_buffers * 64 / (
                (core.config.issue_overhead_ns + accept) / 1e9)
        bandwidth = core.peak_thread_bandwidth(kind, pattern,
                                               read_latency_ns=read_ns,
                                               write_latency_ns=write_ns)
        if pattern is AccessPattern.RANDOM_BLOCK:
            # Each random block restarts the stream: the prefetcher has
            # nothing queued and the TLB walks a fresh page, so small
            # blocks cannot keep the fill buffers full (Fig 5: 1 KiB
            # blocks hurt every scheme's per-thread rate).
            startup_lines = 16
            bandwidth *= block_bytes / (block_bytes + startup_lines * 64)
        return bandwidth

    def _derated_ceiling(self, backend: MemoryBackend, kind: AccessKind,
                         pattern: AccessPattern, block_bytes: int,
                         threads: int) -> float:
        traffic = kind.traffic_factor
        write_fraction = kind.bus_writes_per_line / traffic
        ceiling = backend.bus_ceiling(pattern, block_bytes, streams=threads,
                                      write_fraction=write_fraction)
        readers = threads if kind is AccessKind.LOAD else 0
        writers = threads if kind is AccessKind.STORE else 0
        nt_writers = threads if kind is AccessKind.NT_STORE else 0
        ceiling *= backend.concurrency_derate(readers=readers,
                                              writers=writers,
                                              nt_writers=nt_writers)
        if (kind is AccessKind.NT_STORE
                and pattern is AccessPattern.RANDOM_BLOCK
                and isinstance(backend, CxlMemoryBackend)):
            ceiling *= nt_store_sweet_spot_derate(threads, block_bytes)
        return ceiling


def _short(scheme: MemoryScheme) -> str:
    """The paper's one-letter tags: D for DDR5-L8, C for CXL, R for remote."""
    return {MemoryScheme.DDR5_L8: "D", MemoryScheme.DDR5_R1: "R",
            MemoryScheme.CXL: "C"}[scheme]
