"""End-to-end performance models over a :class:`~repro.cpu.system.System`.

* :class:`~repro.perfmodel.latency.LatencyModel` — composes host-side
  (caches, mesh, home agent) and device-side (backend) latencies into the
  quantities MEMO measures: flushed-line probes, pointer-chase averages,
  and the WSS staircase (Fig. 2).
* :class:`~repro.perfmodel.throughput.ThroughputModel` — a closed-loop
  Little's-law solver: per-thread MLP against device ceilings with
  queueing-inflated latencies (Figs 3–5).
* :mod:`~repro.perfmodel.contention` — device-specific interference
  curves that do not fit the generic queueing model (the CXL nt-store
  sweet spots of §4.3.2).
"""

from .latency import LatencyModel
from .throughput import BandwidthResult, ThroughputModel
from .contention import nt_store_sweet_spot_derate

__all__ = [
    "LatencyModel",
    "ThroughputModel",
    "BandwidthResult",
    "nt_store_sweet_spot_derate",
]
