"""The composed CXL Type-3 memory backend.

Puts the protocol pieces together into the device half of the "CXL"
memory scheme: port (flit transport) + device controller (buffers, FPGA
penalty) + backing DDR4.  Implements the same :class:`MemoryBackend`
interface as plain DRAM so the perfmodel treats all three schemes
uniformly.
"""

from __future__ import annotations

from ..config import CxlDeviceConfig
from ..faults import FaultPlan
from ..interconnect.pcie import PciePhy
from ..mem.device import MemoryBackend
from ..mem.dram import AccessPattern
from .controller import CxlDeviceController
from .messages import read_transaction, write_transaction
from .port import CxlPort


class CxlMemoryBackend(MemoryBackend):
    """Device-side model of the Agilex-I CXL memory expander.

    An active ``fault_plan`` degrades the analytic model the same way
    the DES layer injects faults mechanically: expected stall/retry
    latency joins the protocol path, and CRC retransmissions plus
    degraded link width/speed derate the link ceiling (docs/FAULTS.md).
    """

    def __init__(self, config: CxlDeviceConfig, port: CxlPort, *,
                 fault_plan: FaultPlan | None = None) -> None:
        self.cxl_config = config
        self.port = port
        self.device_controller = CxlDeviceController(
            config, fault_plan=fault_plan)
        read_txn = read_transaction()
        write_txn = write_transaction()
        fault_ns = self.device_controller.expected_fault_latency_ns()
        # One-way extra latency beyond the socket edge: protocol round
        # trip (both hops + serialization + pack/unpack) plus the device
        # controller; the DRAM access itself is counted by the base class.
        read_path = (port.transaction_round_trip_ns(read_txn)
                     + self.device_controller.processing_ns()
                     + fault_ns)
        write_path = (port.transaction_round_trip_ns(write_txn)
                      + self.device_controller.processing_ns()
                      + fault_ns)
        # Reads return data (5-slot DRS) so the dominant direction is S2M;
        # the link ceiling accounts for header+framing overhead.  The
        # fault derate is applied over the *combined* ceiling in
        # :meth:`bus_ceiling` — retries and stalls occupy the device
        # pipeline end to end, not just the wire.
        link_ceiling = port.data_bandwidth_ceiling(slots_per_line=5)
        super().__init__(label="CXL",
                         controller=self.device_controller.backend_controller,
                         extra_read_ns=read_path,
                         extra_write_ns=write_path,
                         link_bandwidth=link_ceiling)

    def read_components_ns(self) -> tuple[tuple[str, float], ...]:
        """The paper's read-path decomposition, as span components.

        ``link`` is the protocol round trip on the wire (both hops,
        serialization, flit pack/unpack), ``ctrl`` the device-side
        controller processing plus any expected fault latency, and
        ``media`` the DRAM access behind the controller — the same
        split §4 of the paper measures between IP-provided counters.
        """
        link = self.port.transaction_round_trip_ns(read_transaction())
        ctrl = (self.device_controller.processing_ns()
                + self.device_controller.expected_fault_latency_ns())
        return (("link", link), ("ctrl", ctrl),
                ("media", self.controller.config.access_ns))

    def bus_ceiling(self, pattern: AccessPattern, block_bytes: int,
                    streams: int, *, write_fraction: float = 0.0) -> float:
        """DRAM-side ceiling behind the controller, capped by the link.

        Under an active fault plan the whole ceiling is derated: CRC
        retransmissions re-send flits, and stalled/poisoned requests
        hold controller buffers, so every byte of goodput costs more
        than one byte of device time regardless of which stage binds.
        """
        ceiling = super().bus_ceiling(pattern, block_bytes, streams,
                                      write_fraction=write_fraction)
        return ceiling * self.device_controller.fault_bandwidth_derate()

    def concurrency_derate(self, *, readers: int, writers: int,
                           nt_writers: int = 0) -> float:
        """Combined Agilex controller derates (§4.3.1, §4.3.2)."""
        derate = 1.0
        if readers > 0:
            derate *= self.device_controller.load_thread_derate(readers)
        if nt_writers > 0:
            derate *= self.device_controller.write_buffer_derate(nt_writers)
        if writers > 0:
            derate *= self.device_controller.store_interference_derate(writers)
        return derate


def build_cxl_backend(config: CxlDeviceConfig, *,
                      fault_plan: FaultPlan | None = None
                      ) -> CxlMemoryBackend:
    """Backend for a :class:`~repro.config.CxlDeviceConfig` preset.

    Constructs the PCIe PHY from the config's link parameters (the preset
    is Gen5 x16, §3).  ``fault_plan`` builds the degraded-mode twin.
    """
    phy = PciePhy(hop_latency_ns=config.link.hop_latency_ns)
    return CxlMemoryBackend(config, CxlPort(phy), fault_plan=fault_plan)
