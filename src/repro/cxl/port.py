"""The CXL port: flit transport over a PCIe PHY.

Adds host-side pack/unpack overhead to the raw PHY hop and converts
slot counts into serialized wire time.  Bandwidth ceilings derived here
already account for flit framing (68 B per 64 B of slots) and protocol
headers, which is why a PCIe Gen5 x16 port cannot deliver 64 GB/s of
*application* data.
"""

from __future__ import annotations

from ..interconnect.pcie import PcieGen, PciePhy
from ..telemetry import NULL_TELEMETRY, Telemetry
from ..units import SEC
from .flit import SLOT_BYTES, wire_bytes_for_slots
from .messages import MemTransaction


class CxlPort:
    """One CXL 1.1 link between a root complex and a device."""

    def __init__(self, phy: PciePhy | None = None,
                 pack_ns: float = 10.0, *,
                 telemetry: Telemetry | None = None) -> None:
        self.phy = phy if phy is not None else PciePhy(PcieGen.GEN5, 16)
        # Host-side flit packing / unpacking (the "set of rules" cost).
        self.pack_ns = pack_ns
        self.telemetry = telemetry if telemetry is not None \
            else NULL_TELEMETRY

    @property
    def raw_bandwidth(self) -> float:
        """PHY line rate per direction, B/s."""
        return self.phy.bandwidth

    def slot_transfer_ns(self, num_slots: int) -> float:
        """Time to serialize ``num_slots`` packed payload slots."""
        return wire_bytes_for_slots(num_slots) / self.raw_bandwidth * SEC

    def transaction_round_trip_ns(self, txn: MemTransaction) -> float:
        """Unloaded protocol round trip for one transaction (Fig. 1).

        pack + request hop + serialize, then response hop + serialize +
        unpack.  Device-internal time is *not* included — that belongs to
        :class:`~repro.cxl.controller.CxlDeviceController`.
        """
        request = (self.pack_ns
                   + self.phy.config.hop_latency_ns
                   + self.slot_transfer_ns(txn.request_slots))
        response = (self.phy.config.hop_latency_ns
                    + self.slot_transfer_ns(txn.response_slots)
                    + self.pack_ns)
        registry = self.telemetry.registry
        registry.counter("cxl.port.transactions").inc()
        registry.histogram("cxl.port.round_trip_ns").record(
            request + response)
        return request + response

    def data_bandwidth_ceiling(self, *, slots_per_line: int) -> float:
        """Application B/s the link sustains in one direction.

        ``slots_per_line`` is the payload slots shipped per 64 B of
        application data in the bandwidth-dominant direction (5 for
        reads: header + 4 data slots of MemData).
        """
        if slots_per_line <= 0:
            raise ValueError("slots_per_line must be positive")
        wire_per_line = wire_bytes_for_slots(slots_per_line)
        line_payload = 4 * SLOT_BYTES
        return self.raw_bandwidth * line_payload / wire_per_line
