"""CXL 1.1 protocol and Type-3 device models.

Implements the pieces of the CXL spec the paper describes (§2.1):

* :mod:`~repro.cxl.flit` — 68 B flits (64 B slots + 2 B CRC + 2 B
  protocol ID) with slot-granular packing;
* :mod:`~repro.cxl.messages` — the CXL.mem M2S/S2M message classes
  (MemRd, MemWr/RwD, Cmp/NDR, MemData/DRS) and round-trip accounting;
* :mod:`~repro.cxl.port` — a CXL port over a PCIe Gen5 PHY;
* :mod:`~repro.cxl.controller` — the device-side controller with a
  finite write buffer and FPGA latency penalty;
* :mod:`~repro.cxl.hdm` — host-managed device memory (HDM) decoding;
* :mod:`~repro.cxl.device` — the composed Type-3
  :class:`~repro.cxl.device.CxlMemoryBackend`.
"""

from .flit import Flit, Slot, SlotKind, pack_slots
from .messages import (
    CXL_HEADER_SLOTS,
    DATA_SLOTS_PER_LINE,
    MemOpcode,
    MemTransaction,
    read_transaction,
    write_transaction,
)
from .port import CxlPort
from .controller import CxlDeviceController
from .hdm import HdmDecoder, HdmRange
from .device import CxlMemoryBackend, build_cxl_backend
from .link_sim import CreditedLinkSim, LinkSimResult
from .e2e_sim import CxlEndToEndSim, CxlWriteEndToEndSim, E2eResult
from .taxonomy import CxlDeviceType, CxlProtocol

__all__ = [
    "Flit",
    "Slot",
    "SlotKind",
    "pack_slots",
    "MemOpcode",
    "MemTransaction",
    "read_transaction",
    "write_transaction",
    "CXL_HEADER_SLOTS",
    "DATA_SLOTS_PER_LINE",
    "CxlPort",
    "CxlDeviceController",
    "HdmDecoder",
    "HdmRange",
    "CxlMemoryBackend",
    "build_cxl_backend",
    "CreditedLinkSim",
    "LinkSimResult",
    "CxlEndToEndSim",
    "CxlWriteEndToEndSim",
    "E2eResult",
    "CxlDeviceType",
    "CxlProtocol",
]
