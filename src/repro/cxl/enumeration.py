"""CXL.io enumeration: how Type-3 devices become NUMA nodes.

§2.1: CXL.io "is mainly used for protocol negotiation and host-device
initialization", and §3: the device "is transparently exposed to the CPU
and OS as a NUMA node having 16 GB memory without CPU cores".  This
module models the boot-time path between those two sentences:

1. each device presents a :class:`DeviceDvsec` (the CXL DVSEC config-
   space structure) declaring its type, protocol versions, and memory
   capacity;
2. :func:`enumerate_devices` walks the "bus", validates each DVSEC
   (Type-3 must speak CXL.mem, version compatibility, sane capacity);
3. :func:`map_devices` programs consecutive HDM decoder ranges and
   returns the decoder plus per-device host-physical bases;
4. :func:`numa_nodes_for` turns the mapped devices into CPU-less
   NUMA-node descriptions, which :class:`repro.cpu.system.System`
   consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import CxlDeviceConfig
from ..errors import ProtocolError
from ..topology.numa import MemoryKind, NumaNode
from .hdm import HdmDecoder, HdmRange
from .taxonomy import CxlDeviceType, CxlProtocol

CXL_VENDOR_ID = 0x1E98
"""The CXL consortium's DVSEC vendor id."""

SUPPORTED_CXL_VERSIONS = ("1.1", "2.0")


@dataclass(frozen=True)
class DeviceDvsec:
    """The subset of the CXL DVSEC a host needs at enumeration time."""

    vendor_id: int
    device_type: CxlDeviceType
    cxl_version: str
    memory_capacity_bytes: int
    serial: str = "sim-0000"

    def validate(self) -> None:
        """The checks a root port performs before exposing the device."""
        if self.vendor_id != CXL_VENDOR_ID:
            raise ProtocolError(
                f"device {self.serial}: DVSEC vendor {self.vendor_id:#x} "
                f"is not the CXL consortium id {CXL_VENDOR_ID:#x}")
        if self.cxl_version not in SUPPORTED_CXL_VERSIONS:
            raise ProtocolError(
                f"device {self.serial}: unsupported CXL version "
                f"{self.cxl_version}")
        if self.device_type.has_host_managed_memory:
            if self.memory_capacity_bytes <= 0:
                raise ProtocolError(
                    f"device {self.serial}: CXL.mem device with no "
                    "memory capacity")
        elif self.memory_capacity_bytes:
            raise ProtocolError(
                f"device {self.serial}: Type-1 device advertises memory")


@dataclass(frozen=True)
class DiscoveredDevice:
    """One enumerated device, pre-HDM-mapping."""

    device_id: int
    dvsec: DeviceDvsec


@dataclass(frozen=True)
class MappedDevice:
    """A device with its host-physical window programmed."""

    device_id: int
    dvsec: DeviceDvsec
    hpa_base: int

    @property
    def hpa_end(self) -> int:
        return self.hpa_base + self.dvsec.memory_capacity_bytes


def dvsec_for(config: CxlDeviceConfig, serial: str) -> DeviceDvsec:
    """The DVSEC an Agilex-I-like Type-3 expander presents."""
    return DeviceDvsec(vendor_id=CXL_VENDOR_ID,
                       device_type=CxlDeviceType.TYPE3,
                       cxl_version="1.1",
                       memory_capacity_bytes=config.dram.capacity_bytes,
                       serial=serial)


def enumerate_devices(dvsecs: list[DeviceDvsec]) -> list[DiscoveredDevice]:
    """Validate every presented DVSEC and assign device ids."""
    discovered = []
    for device_id, dvsec in enumerate(dvsecs):
        dvsec.validate()
        dvsec.device_type.require(CxlProtocol.IO)
        discovered.append(DiscoveredDevice(device_id, dvsec))
    return discovered


def map_devices(devices: list[DiscoveredDevice], *,
                hpa_base: int) -> tuple[HdmDecoder, list[MappedDevice]]:
    """Program one HDM range per memory device, consecutively."""
    if hpa_base < 0:
        raise ProtocolError("HPA base must be non-negative")
    decoder = HdmDecoder()
    mapped = []
    cursor = hpa_base
    for device in devices:
        if not device.dvsec.device_type.has_host_managed_memory:
            continue        # Type-1: nothing to map
        size = device.dvsec.memory_capacity_bytes
        decoder.add_range(HdmRange(base=cursor, size=size,
                                   targets=(device.device_id,)))
        mapped.append(MappedDevice(device.device_id, device.dvsec,
                                   hpa_base=cursor))
        cursor += size
    return decoder, mapped


def numa_nodes_for(mapped: list[MappedDevice], *,
                   first_node_id: int) -> list[NumaNode]:
    """CPU-less NUMA nodes for the mapped devices (§3's exposure)."""
    return [NumaNode(first_node_id + index, MemoryKind.CXL,
                     device.dvsec.memory_capacity_bytes, label="CXL")
            for index, device in enumerate(mapped)]
