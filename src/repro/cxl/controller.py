"""The device-side CXL memory controller (Agilex-I R-Tile model).

Owns the two behaviors the paper attributes specifically to the device:

* **Finite write buffering** (§4.3.2) — nt-stores bypass core tracking,
  so many software threads can flood the device with posted writes; once
  in-flight lines exceed the internal buffer, the controller stalls the
  link and throughput collapses.  "We believe that this sweet spot is
  determined by the memory buffer inside the CXL memory device."
* **Request-stream mixing** (§4.3.1) — "the memory controller between
  the CXL controller and the extended DRAM received requests with fewer
  patterns as the thread count increased", degrading DRAM row locality
  beyond what an iMC with eight channels would suffer.
"""

from __future__ import annotations

from ..config import CxlDeviceConfig
from ..faults import FaultPlan
from ..mem.controller import MemoryController
from ..telemetry import NULL_TELEMETRY, Telemetry


class CxlDeviceController:
    """Latency and derating model of the on-device controller."""

    def __init__(self, config: CxlDeviceConfig, *,
                 telemetry: Telemetry | None = None,
                 fault_plan: FaultPlan | None = None) -> None:
        self.config = config
        self.telemetry = telemetry if telemetry is not None \
            else NULL_TELEMETRY
        self.fault_plan = fault_plan \
            if fault_plan is not None and fault_plan.active else None
        self.backend_controller = MemoryController(
            config.dram, telemetry=self.telemetry)

    # -- latency ---------------------------------------------------------

    def processing_ns(self) -> float:
        """Controller traversal per request (CXL IP + memory controller)."""
        return self.config.controller_ns + self.config.fpga_penalty_ns

    def device_service_ns(self) -> float:
        """Controller + backing DRAM for one unloaded request."""
        return self.processing_ns() + self.config.dram.access_ns

    # -- degraded mode ---------------------------------------------------

    def expected_fault_latency_ns(self) -> float:
        """Expected *added* latency per request under the fault plan.

        The analytic counterpart of what the DES injects per request:
        scheduler stalls, transient timeouts (host re-issues after
        ``timeout_ns``), and poisoned reads (one re-read after the
        backoff).  Zero without an active plan.
        """
        plan = self.fault_plan
        if plan is None:
            return 0.0
        extra = (plan.stall_rate * plan.stall_ns
                 + plan.timeout_rate * plan.timeout_ns
                 + plan.poison_rate * plan.retry_backoff_ns)
        registry = self.telemetry.registry
        registry.gauge("faults.expected_latency_ns").set(extra)
        return extra

    def fault_bandwidth_derate(self) -> float:
        """Throughput multiplier (<= 1) under the fault plan.

        CRC retransmissions inflate wire traffic by ``1/(1-p)`` per
        flit; poisoned reads and timeouts re-ship whole requests; a
        degraded link scales the ceiling directly.  Multiplied into the
        link ceiling by :class:`~repro.cxl.device.CxlMemoryBackend`.
        """
        plan = self.fault_plan
        if plan is None:
            return 1.0
        derate = (1.0 - plan.crc_rate) \
            * (1.0 - plan.poison_rate) \
            * (1.0 - plan.timeout_rate) \
            / plan.link_slowdown
        registry = self.telemetry.registry
        registry.gauge("faults.bandwidth_derate").set(derate)
        return derate

    # -- derates -----------------------------------------------------------

    def load_thread_derate(self, reader_threads: int) -> float:
        """Throughput multiplier for concurrent readers.

        Flat up to the knee (~8 threads on the Agilex device), then the
        stream-mixing penalty ramps in; calibrated so the paper's drop
        from ~21 GB/s to 16.8 GB/s beyond 12 threads is reproduced
        (derate ~0.76 at high thread counts).
        """
        if reader_threads <= 0:
            raise ValueError(f"non-positive thread count: {reader_threads}")
        registry = self.telemetry.registry
        registry.counter("cxl.device.derate_queries").inc()
        knee = self.config.load_thread_knee
        if reader_threads <= knee:
            registry.gauge("cxl.device.load_derate").set(1.0)
            return 1.0
        # Each thread past the knee costs locality; calibrated to Fig 3b's
        # drop from ~21 GB/s to 16.8 GB/s past 12 threads (derate ~0.81).
        excess = reader_threads - knee
        sensitivity = self.config.thread_mixing_sensitivity
        floor = 1.0 - 0.19 * sensitivity / 0.55
        derate = max(floor, 1.0 - 0.04 * sensitivity / 0.55 * excess)
        registry.gauge("cxl.device.load_derate").set(derate)
        return derate

    def write_buffer_derate(self, nt_writer_threads: int,
                            lines_in_flight_per_thread: float = 96.0) -> float:
        """Throughput multiplier for concurrent nt-store writers.

        A single writer's in-flight lines fit the buffer; at two writers
        the device is at its sweet spot; beyond that posted writes
        overflow the buffer and every additional writer adds stall time.
        Calibrated to the paper's Fig. 3b: nt-store peaks at 2 threads
        (~22 GB/s) then "drops immediately".
        """
        if nt_writer_threads < 0:
            raise ValueError("negative writer count")
        if nt_writer_threads == 0:
            return 1.0
        in_flight = nt_writer_threads * lines_in_flight_per_thread
        capacity = self.config.write_buffer_entries * 1.6
        registry = self.telemetry.registry
        registry.gauge("cxl.device.wbuf.in_flight_lines").set(in_flight)
        if in_flight <= capacity:
            registry.gauge("cxl.device.write_derate").set(1.0)
            return 1.0
        # Overflow: extra in-flight lines serialize on buffer drains.
        overflow = in_flight / capacity
        derate = max(0.45, 1.0 / (0.55 + 0.45 * overflow))
        registry.gauge("cxl.device.write_derate").set(derate)
        return derate

    def store_interference_derate(self, writer_threads: int) -> float:
        """Mixing penalty for temporal-store (RFO) writer streams."""
        if writer_threads <= 0:
            return 1.0
        return max(0.70, 1.0 - 0.02 * max(0, writer_threads - 4))
