"""The CXL device taxonomy of §2.1.

"CXL identifies three types of devices for different use cases.  Type-1
devices use CXL.io and CXL.cache ... SmartNICs and accelerators where
host-managed memory does not apply.  Type-2 devices support all three
protocols ... GP-GPUs and FPGAs [with] attached memory the host CPU can
access and cache ... Type-3 devices support CXL.io and CXL.mem, and
such devices are usually treated as memory extensions."

The paper (and this reproduction) evaluates Type-3; the taxonomy is
modeled so configuration code can state and validate device capabilities.
"""

from __future__ import annotations

import enum

from ..errors import ProtocolError


class CxlProtocol(enum.Enum):
    """The three protocols multiplexed over a CXL link (§2.1)."""

    IO = "CXL.io"          # TLP/DLLP-style: negotiation, init
    CACHE = "CXL.cache"    # device -> host memory, coherently
    MEM = "CXL.mem"        # host -> device memory


class CxlDeviceType(enum.Enum):
    """Device classes and the protocol sets that define them."""

    TYPE1 = 1     # SmartNICs / accelerators, no host-managed memory
    TYPE2 = 2     # GP-GPUs, FPGAs with host-cacheable attached memory
    TYPE3 = 3     # memory expanders (this paper's subject)

    @property
    def protocols(self) -> frozenset[CxlProtocol]:
        table = {
            CxlDeviceType.TYPE1: frozenset(
                {CxlProtocol.IO, CxlProtocol.CACHE}),
            CxlDeviceType.TYPE2: frozenset(
                {CxlProtocol.IO, CxlProtocol.CACHE, CxlProtocol.MEM}),
            CxlDeviceType.TYPE3: frozenset(
                {CxlProtocol.IO, CxlProtocol.MEM}),
        }
        return table[self]

    @property
    def has_host_managed_memory(self) -> bool:
        """Whether the host can address memory on the device (CXL.mem)."""
        return CxlProtocol.MEM in self.protocols

    @property
    def can_cache_host_memory(self) -> bool:
        """Whether the device may cache host memory (CXL.cache)."""
        return CxlProtocol.CACHE in self.protocols

    def require(self, protocol: CxlProtocol) -> None:
        """Assert the device speaks ``protocol``; used by config checks."""
        if protocol not in self.protocols:
            raise ProtocolError(
                f"a Type-{self.value} device does not implement "
                f"{protocol.value}")

    @classmethod
    def for_protocols(cls, protocols: frozenset[CxlProtocol]
                      ) -> "CxlDeviceType":
        """The device type defined by a protocol set."""
        for device_type in cls:
            if device_type.protocols == protocols:
                return device_type
        raise ProtocolError(
            f"no CXL device type implements exactly "
            f"{{{', '.join(sorted(p.value for p in protocols))}}}")
