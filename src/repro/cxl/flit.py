"""CXL 1.1 flit packing.

Per the paper (§2.1): "the CXL hardware will pack the header and data
into a 68 B flit (64 B CXL data + 2 B CRC + 2 B Protocol ID) based on a
set of rules described in the CXL specification."

The model follows the spec's structure at slot granularity:

* a flit carries four 16 B **slots**;
* slot 0 of each flit is a header slot describing the others;
* a protocol message header (request, response) fits in one slot;
* a 64 B cacheline of data occupies four consecutive data slots, which
  may roll over into the next flit;
* slots from different messages may share a flit (packing efficiency is
  what makes CXL.mem cheaper than a naive one-message-per-flit design).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import ProtocolError
from ..units import CXL_FLIT_BYTES

SLOT_BYTES = 16
SLOTS_PER_FLIT = 4
FLIT_OVERHEAD_BYTES = CXL_FLIT_BYTES - SLOTS_PER_FLIT * SLOT_BYTES  # CRC + PID


class SlotKind(enum.Enum):
    """What one 16 B slot carries."""

    HEADER = "header"       # flit slot 0: format/type descriptors
    REQUEST = "request"     # an M2S or S2M message header
    DATA = "data"           # 16 B of a cacheline
    EMPTY = "empty"         # padding when nothing is ready to send


@dataclass(frozen=True)
class Slot:
    """One 16 B slot tagged with its message of origin."""

    kind: SlotKind
    message_id: int = -1

    def __post_init__(self) -> None:
        if self.kind in (SlotKind.REQUEST, SlotKind.DATA) and self.message_id < 0:
            raise ProtocolError(f"{self.kind.value} slot needs a message id")


@dataclass
class Flit:
    """A 68 B flit: header slot + three payload slots + CRC/PID.

    ``poisoned`` models CXL data poisoning: the flit arrives intact
    (CRC passes — poison is *not* a link error) but its data slots are
    flagged unusable, so the host must discard the message and re-read.
    Distinct from a CRC failure, which the link layer retransmits
    transparently (see :mod:`repro.faults`).
    """

    slots: list[Slot] = field(default_factory=list)
    poisoned: bool = False

    MAX_PAYLOAD_SLOTS = SLOTS_PER_FLIT - 1   # slot 0 is the flit header

    def __post_init__(self) -> None:
        if len(self.slots) > self.MAX_PAYLOAD_SLOTS:
            raise ProtocolError(
                f"flit holds at most {self.MAX_PAYLOAD_SLOTS} payload slots, "
                f"got {len(self.slots)}")
        if self.poisoned and not any(slot.kind is SlotKind.DATA
                                     for slot in self.slots):
            raise ProtocolError("only flits carrying data can be poisoned")

    @property
    def is_full(self) -> bool:
        return len(self.slots) >= self.MAX_PAYLOAD_SLOTS

    @property
    def payload_slots(self) -> int:
        return len(self.slots)

    @property
    def wire_bytes(self) -> int:
        """Every flit occupies exactly 68 B on the wire, full or not."""
        return CXL_FLIT_BYTES

    def add(self, slot: Slot) -> None:
        if self.is_full:
            raise ProtocolError("flit is full")
        self.slots.append(slot)

    def mark_poisoned(self) -> None:
        """Flag this flit's data as poisoned (must carry data slots)."""
        if not any(slot.kind is SlotKind.DATA for slot in self.slots):
            raise ProtocolError("only flits carrying data can be poisoned")
        self.poisoned = True


def pack_slots(slots: list[Slot]) -> list[Flit]:
    """Greedily pack payload slots into flits, in order.

    Ordering is preserved (CXL.mem requires data slots of one line to be
    consecutive) and every flit except possibly the last is full.
    Returns at least one flit for a non-empty slot list.
    """
    for slot in slots:
        if slot.kind in (SlotKind.HEADER, SlotKind.EMPTY):
            raise ProtocolError(
                f"pack_slots packs payload slots only, got {slot.kind}")
    flits: list[Flit] = []
    current = Flit()
    for slot in slots:
        if current.is_full:
            flits.append(current)
            current = Flit()
        current.add(slot)
    if current.payload_slots:
        flits.append(current)
    return flits


def wire_bytes_for_slots(num_slots: int) -> int:
    """Total wire bytes to carry ``num_slots`` payload slots.

    Assumes the steady-state packed encoding (every flit full); partially
    filled trailing flits still cost a whole 68 B.
    """
    if num_slots < 0:
        raise ProtocolError(f"negative slot count: {num_slots}")
    if num_slots == 0:
        return 0
    flits = -(-num_slots // Flit.MAX_PAYLOAD_SLOTS)
    return flits * CXL_FLIT_BYTES


def packing_efficiency(num_slots: int) -> float:
    """Payload fraction of the wire traffic for ``num_slots`` slots."""
    total = wire_bytes_for_slots(num_slots)
    if total == 0:
        raise ProtocolError("efficiency of zero slots is undefined")
    return num_slots * SLOT_BYTES / total
