"""A discrete-event, credit-based simulation of the CXL link.

The analytic throughput model asserts ceilings like "a Gen5 x16 port
sustains ``raw x 64/136`` of application read bandwidth".  This module
*derives* such numbers from first principles instead: it simulates the
link at flit granularity with the credit-based flow control CXL actually
uses (the receiver grants per-message-class credits; a sender stalls
without one), a fixed number of host-side outstanding requests (MLP),
and a device service stage.

Faults come from a :class:`~repro.faults.FaultPlan`: per-flit CRC
errors retransmit through the link-layer retry buffer (the 2 B CRC in
every 68 B flit, §2.1), device stalls stretch the service stage, and a
degraded link (retrained width or speed) stretches every flit's
serialization time.  Faults cost wire time and latency, never data —
``completed`` always reaches ``transactions``.

Used by tests to cross-validate the analytic layer, and useful on its
own for studying credit counts, buffer depths, and degraded modes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError
from ..faults import FaultPlan, injector_for
from ..sim.engine import Engine
from ..telemetry import NULL_TELEMETRY, Telemetry
from ..units import SEC
from .messages import MemTransaction, read_transaction, write_transaction
from .port import CxlPort


@dataclass
class LinkSimResult:
    """Outcome of one simulated transfer window."""

    completed: int
    elapsed_ns: float
    faults_injected: int = 0
    faults_recovered: int = 0

    @property
    def payload_bytes(self) -> int:
        return self.completed * 64

    @property
    def app_bandwidth(self) -> float:
        """Application B/s achieved."""
        if self.elapsed_ns <= 0:
            raise SimulationError("empty simulation window")
        return self.payload_bytes / (self.elapsed_ns / SEC)


class CreditedLinkSim:
    """Flit-clocked link with per-direction serialization and credits.

    Model per transaction (read shown; writes mirror it):

    1. the host consumes one request credit (stall if none), then
       serializes the request's flits onto the M2S wire (one flit at a
       time — the wire is a shared resource);
    2. after the hop latency, the device queues the request for its
       service stage (``device_service_ns`` each, ``device_parallelism``
       wide);
    3. the response serializes onto the S2M wire, pays the hop back, and
       releases the credit and one MLP slot.

    ``fault_plan`` injects CRC retransmissions, device stalls, and
    degraded link width/speed (docs/FAULTS.md).  The legacy
    ``flit_error_rate`` parameter is shorthand for a CRC-only plan.
    """

    def __init__(self, port: CxlPort, *, device_service_ns: float,
                 device_parallelism: int = 8,
                 request_credits: int = 32,
                 flit_error_rate: float = 0.0,
                 fault_plan: FaultPlan | None = None,
                 seed: int = 5,
                 telemetry: Telemetry | None = None) -> None:
        if device_service_ns < 0:
            raise SimulationError("negative device service time")
        if device_parallelism <= 0 or request_credits <= 0:
            raise SimulationError(
                "parallelism and credits must be positive")
        if not 0.0 <= flit_error_rate < 1.0:
            raise SimulationError(
                f"flit error rate must be in [0, 1): {flit_error_rate}")
        if flit_error_rate > 0.0 and fault_plan is not None:
            raise SimulationError(
                "give either flit_error_rate or fault_plan, not both")
        self.port = port
        self.device_service_ns = device_service_ns
        self.device_parallelism = device_parallelism
        self.request_credits = request_credits
        # Back-compat shorthand: each flit independently fails CRC with
        # this probability and is retransmitted.
        self.flit_error_rate = flit_error_rate
        self.seed = seed
        if fault_plan is None and flit_error_rate > 0.0:
            fault_plan = FaultPlan(crc_rate=flit_error_rate, seed=seed)
        self.fault_plan = fault_plan
        self.telemetry = telemetry if telemetry is not None \
            else NULL_TELEMETRY

    def _flit_time_ns(self) -> float:
        """Serialization time of one 68 B flit at the (possibly
        degraded) PHY rate."""
        base = 68 / self.port.raw_bandwidth * SEC
        if self.fault_plan is not None:
            return base * self.fault_plan.link_slowdown
        return base

    def run(self, txn_template: MemTransaction, *, transactions: int,
            mlp: int) -> LinkSimResult:
        """Simulate ``transactions`` back-to-back ops at host MLP."""
        if transactions <= 0 or mlp <= 0:
            raise SimulationError(
                "transactions and mlp must be positive")
        engine = Engine()
        flit_ns = self._flit_time_ns()
        hop_ns = self.port.phy.config.hop_latency_ns
        request_flits = -(-txn_template.request_slots // 3)
        response_flits = -(-txn_template.response_slots // 3)
        injector = injector_for(self.fault_plan, stream="linksim",
                                telemetry=self.telemetry)

        state = {
            "launched": 0, "completed": 0, "credits": self.request_credits,
            "mlp_free": mlp, "m2s_free_at": 0.0, "s2m_free_at": 0.0,
            "device_busy": 0, "device_queue": 0, "last_done": 0.0,
        }
        def try_launch() -> None:
            while (state["launched"] < transactions
                   and state["mlp_free"] > 0 and state["credits"] > 0):
                txn = state["launched"]
                state["launched"] += 1
                state["mlp_free"] -= 1
                state["credits"] -= 1
                sends = request_flits if injector is None \
                    else injector.crc_transmissions(request_flits,
                                                    "m2s", txn)
                start = max(engine.now, state["m2s_free_at"])
                state["m2s_free_at"] = start + sends * flit_ns
                arrive = state["m2s_free_at"] + hop_ns
                engine.schedule(arrive - engine.now, device_arrival, txn)

        def device_arrival(txn: int) -> None:
            state["device_queue"] += 1
            drain_device(txn)

        def drain_device(txn: int) -> None:
            while (state["device_queue"] > 0
                   and state["device_busy"] < self.device_parallelism):
                state["device_queue"] -= 1
                state["device_busy"] += 1
                service = self.device_service_ns
                if injector is not None:
                    service += injector.stall_ns("service", txn)
                engine.schedule(service, device_done, txn)

        def device_done(txn: int) -> None:
            state["device_busy"] -= 1
            sends = response_flits if injector is None \
                else injector.crc_transmissions(response_flits,
                                                "s2m", txn)
            start = max(engine.now, state["s2m_free_at"])
            state["s2m_free_at"] = start + sends * flit_ns
            engine.schedule(state["s2m_free_at"] + hop_ns - engine.now,
                            response_arrival)
            drain_device(txn)

        def response_arrival() -> None:
            state["completed"] += 1
            state["credits"] += 1
            state["mlp_free"] += 1
            state["last_done"] = engine.now
            try_launch()

        try_launch()
        engine.run()
        if state["completed"] != transactions:
            raise SimulationError(
                f"only {state['completed']} of {transactions} completed")
        return LinkSimResult(
            completed=state["completed"],
            elapsed_ns=state["last_done"],
            faults_injected=injector.injected if injector else 0,
            faults_recovered=injector.recovered if injector else 0)

    # -- convenience -----------------------------------------------------------

    def read_bandwidth(self, *, transactions: int = 2000,
                       mlp: int = 64) -> float:
        """Achieved read bandwidth (B/s) at high host parallelism."""
        return self.run(read_transaction(), transactions=transactions,
                        mlp=mlp).app_bandwidth

    def write_bandwidth(self, *, transactions: int = 2000,
                        mlp: int = 64) -> float:
        """Achieved posted-write bandwidth (B/s)."""
        return self.run(write_transaction(), transactions=transactions,
                        mlp=mlp).app_bandwidth
