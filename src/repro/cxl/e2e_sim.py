"""End-to-end CXL read simulation: host threads -> flits -> DRAM banks.

The analytic model produces Fig 3b from calibrated ceilings and derates.
This simulator *derives* the same curve shape from mechanism alone:

* each host thread keeps ``mlp`` sequential reads of its own region in
  flight (fill-buffer semantics);
* requests serialize onto the M2S wire as flits, cross the hop, and
  queue at the device;
* the device is a :class:`~repro.mem.banks.Bank` array behind a shared
  DRAM data bus — *no tuned efficiency constants* — so multi-thread row
  thrash emerges from bank state, exactly §4.3.1's "requests with fewer
  patterns" observation;
* responses serialize back as 2-flit DRS messages.

Sweeping threads reproduces the three regimes of Fig 3b: a latency-bound
linear slope, saturation near the DDR4 limit around 8 threads, and
degradation once thread count exceeds the device's bank parallelism.

Degraded mode
-------------
An active :class:`~repro.faults.FaultPlan` perturbs the same mechanism
instead of crashing it: CRC-failed flits retransmit on the wire,
transiently timed-out or poisoned reads are re-issued by the host after
a backoff (the MLP slot stays occupied — retries steal host
parallelism, which is what inflates the tail), device stalls stretch
the controller stage, and a degraded link stretches every flit.  Every
injected fault is recovered and counted; ``completed`` always reaches
the expected total.  The ``degraded-cxl`` experiment sweeps fault
severity over this model.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..errors import SimulationError
from ..faults import FaultPlan, injector_for
from ..mem.banks import Bank, DdrTimings, ddr4_2666_timings
from ..sim.engine import Engine
from ..telemetry import NULL_TELEMETRY, Telemetry, interpolate_percentile
from ..units import SEC
from .port import CxlPort

# Component track names (one Perfetto row each; docs/TELEMETRY.md).
TRACK_CORE = "core"
TRACK_PORT = "cxl.port"
TRACK_WBUF = "cxl.device.wbuf"
TRACK_DRAM = "dram.channel"

REQUEST_FLITS = 1      # MemRd header fits one flit (unpacked worst case)
RESPONSE_FLITS = 2     # DRS: header + 64 B = 5 slots = 2 flits


@dataclass(frozen=True)
class E2eResult:
    """One simulated configuration's outcome.

    ``p50_ns``/``p99_ns`` summarize per-read completion latency (issue
    to data return, retries included); zero when the run records no
    per-request latencies (the write sim).  ``faults_injected`` /
    ``faults_recovered`` count fault-plan events — equal in every
    completed run, because recovery is what the protocol layer
    guarantees.
    """

    threads: int
    completed: int
    elapsed_ns: float
    row_hits: int
    row_misses: int
    p50_ns: float = 0.0
    p99_ns: float = 0.0
    faults_injected: int = 0
    faults_recovered: int = 0

    @property
    def app_bandwidth(self) -> float:
        if self.elapsed_ns <= 0:
            raise SimulationError("empty simulation window")
        return self.completed * 64 / (self.elapsed_ns / SEC)

    @property
    def gb_per_s(self) -> float:
        return self.app_bandwidth / 1e9

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0


class CxlEndToEndSim:
    """Mechanism-only simulation of multi-threaded CXL streaming reads."""

    def __init__(self, *, port: CxlPort | None = None,
                 timings: DdrTimings | None = None,
                 controller_ns: float = 140.0,
                 mlp_per_thread: int = 15,
                 region_lines: int = 1 << 18,
                 closed_page: bool = False,
                 fault_plan: FaultPlan | None = None,
                 telemetry: Telemetry | None = None) -> None:
        if mlp_per_thread <= 0:
            raise SimulationError("mlp must be positive")
        if controller_ns < 0:
            raise SimulationError("negative controller latency")
        self.telemetry = telemetry if telemetry is not None \
            else NULL_TELEMETRY
        self.port = port if port is not None else CxlPort()
        self.timings = timings if timings is not None \
            else ddr4_2666_timings()
        self.controller_ns = controller_ns
        self.mlp_per_thread = mlp_per_thread
        self.region_lines = region_lines
        # closed_page models a simple controller that auto-precharges
        # after every access — the policy simple FPGA memory controllers
        # fall back to under mixed streams.  The measured Agilex
        # high-thread bandwidth (16.8 GB/s) lies between this sim's
        # open-page (~21.2) and closed-page (~12-14) regimes.
        self.closed_page = closed_page
        self.fault_plan = fault_plan

    def _map(self, line: int) -> tuple[int, int]:
        lines_per_row = self.timings.lines_per_row
        row_index = line // lines_per_row
        return row_index % self.timings.banks, \
            row_index // self.timings.banks

    def run(self, *, threads: int, lines_per_thread: int = 1500
            ) -> E2eResult:
        """Stream reads from ``threads`` pinned threads to completion."""
        if threads <= 0 or lines_per_thread <= 0:
            raise SimulationError(
                "threads and lines_per_thread must be positive")
        engine = Engine(telemetry=self.telemetry)
        tracer = self.telemetry.tracer
        traced = tracer.enabled
        latency_hist = self.telemetry.registry.histogram(
            "cxl.e2e.read.latency_ns")
        injector = injector_for(self.fault_plan, stream="e2e-read",
                                telemetry=self.telemetry)
        flit_ns = 68 / self.port.raw_bandwidth * SEC
        if injector is not None:
            flit_ns *= injector.plan.link_slowdown
        hop_ns = self.port.phy.config.hop_latency_ns
        pack_ns = self.port.pack_ns
        banks = [Bank(self.timings, i)
                 for i in range(self.timings.banks)]
        # Stagger regions by a row so threads start in distinct banks.
        row_lines = self.timings.lines_per_row

        state = {"m2s_free_at": 0.0, "s2m_free_at": 0.0,
                 "dram_bus_free_at": 0.0, "completed": 0,
                 "last_done": 0.0}
        next_line = [0] * threads       # per-thread progress
        latencies: list[float] = []
        activate_times: deque[float] = deque(maxlen=4)

        def respect_tfaw(at: float) -> float:
            if len(activate_times) == 4:
                at = max(at, activate_times[0] + self.timings.tfaw_ns)
            activate_times.append(at)
            return at

        # Hot path: per-request arguments ride through the event
        # (engine.schedule(delay, fn, *args)) instead of a fresh
        # closure per request — see docs/PERFORMANCE.md.  ``attempt``
        # numbers the send for one line (1 = first issue); fault draws
        # are keyed on (line, attempt) so retries re-roll while replays
        # of the same decision never do.
        def launch(thread: int) -> None:
            if next_line[thread] >= lines_per_thread:
                return
            index = next_line[thread]
            next_line[thread] += 1
            line = (thread * (self.region_lines + row_lines)) + index
            send(thread, line, engine.now, 1)

        def send(thread: int, line: int, issued_at: float,
                 attempt: int) -> None:
            sends = REQUEST_FLITS if injector is None \
                else injector.crc_transmissions(REQUEST_FLITS,
                                                "m2s", line, attempt)
            start = max(engine.now + pack_ns, state["m2s_free_at"])
            state["m2s_free_at"] = start + sends * flit_ns
            if traced:
                tracer.complete(TRACK_PORT, "m2s.memrd", start,
                                sends * flit_ns, thread=thread)
            arrive = state["m2s_free_at"] + hop_ns
            engine.schedule(arrive - engine.now,
                            device_handle, thread, line, issued_at,
                            attempt)

        def device_handle(thread: int, line: int, issued_at: float,
                          attempt: int) -> None:
            if injector is not None \
                    and attempt <= injector.plan.max_retries \
                    and injector.timeout(line, attempt):
                # Transient controller timeout: the request is dropped
                # on the floor; the host waits it out and re-issues.
                injector.recovery()
                injector.retried()
                if traced:
                    tracer.instant(TRACK_WBUF, "fault-timeout",
                                   engine.now, thread=thread)
                engine.schedule(injector.plan.timeout_ns,
                                send, thread, line, issued_at,
                                attempt + 1)
                return
            bank_index, row = self._map(line)
            bank = banks[bank_index]
            if self.closed_page:
                bank.open_row = None       # auto-precharged after use
            issue_at = engine.now + self.controller_ns
            if injector is not None:
                stall = injector.stall_ns(line, attempt)
                if stall:
                    if traced:
                        tracer.instant(TRACK_WBUF, "fault-stall",
                                       engine.now, thread=thread)
                    issue_at += stall
            if bank.open_row != row:
                issue_at = respect_tfaw(issue_at)
            data_at, hit = bank.access(row, issue_at)
            # The device data bus serializes bursts.
            burst_start = max(data_at, state["dram_bus_free_at"])
            state["dram_bus_free_at"] = burst_start + self.timings.burst_ns
            if traced:
                tracer.complete(TRACK_DRAM, "burst", burst_start,
                                self.timings.burst_ns, bank=bank_index,
                                hit=hit)
            engine.schedule(state["dram_bus_free_at"] - engine.now,
                            respond, thread, line, issued_at, attempt)

        def respond(thread: int, line: int, issued_at: float,
                    attempt: int) -> None:
            sends = RESPONSE_FLITS if injector is None \
                else injector.crc_transmissions(RESPONSE_FLITS,
                                                "s2m", line, attempt)
            start = max(engine.now, state["s2m_free_at"])
            state["s2m_free_at"] = start + sends * flit_ns
            if traced:
                tracer.complete(TRACK_PORT, "s2m.drs", start,
                                sends * flit_ns, thread=thread)
            done_at = state["s2m_free_at"] + hop_ns + pack_ns
            engine.schedule(done_at - engine.now,
                            complete, thread, line, issued_at, attempt)

        def complete(thread: int, line: int, issued_at: float,
                     attempt: int) -> None:
            if injector is not None \
                    and attempt <= injector.plan.max_retries \
                    and injector.poisoned(line, attempt):
                # Poisoned DRS: data arrived but is unusable; discard
                # and re-read after the backoff.  The MLP slot stays
                # occupied — poison steals host parallelism.
                injector.recovery()
                injector.retried()
                if traced:
                    tracer.instant(TRACK_PORT, "fault-poison",
                                   engine.now, thread=thread)
                engine.schedule(injector.plan.retry_backoff_ns,
                                send, thread, line, issued_at,
                                attempt + 1)
                return
            state["completed"] += 1
            state["last_done"] = engine.now
            latencies.append(engine.now - issued_at)
            latency_hist.record(engine.now - issued_at)
            if traced:
                tracer.complete(TRACK_CORE, "read", issued_at,
                                engine.now - issued_at, thread=thread)
            launch(thread)      # the freed fill buffer refills

        for thread in range(threads):
            for _ in range(self.mlp_per_thread):
                launch(thread)
        engine.run()
        expected = threads * lines_per_thread
        if state["completed"] != expected:
            raise SimulationError(
                f"only {state['completed']} of {expected} completed")
        row_hits = sum(b.row_hits for b in banks)
        row_misses = sum(b.row_misses for b in banks)
        registry = self.telemetry.registry
        registry.counter("cxl.e2e.read.completed").inc(state["completed"])
        registry.counter("cxl.e2e.read.row_hits").inc(row_hits)
        registry.counter("cxl.e2e.read.row_misses").inc(row_misses)
        latencies.sort()
        return E2eResult(
            threads=threads, completed=state["completed"],
            elapsed_ns=state["last_done"],
            row_hits=row_hits, row_misses=row_misses,
            p50_ns=interpolate_percentile(latencies, 50.0),
            p99_ns=interpolate_percentile(latencies, 99.0),
            faults_injected=injector.injected if injector else 0,
            faults_recovered=injector.recovered if injector else 0)

    def _init_kwargs(self) -> dict:
        """Constructor state (minus telemetry) for worker re-creation."""
        return {"port": self.port, "timings": self.timings,
                "controller_ns": self.controller_ns,
                "mlp_per_thread": self.mlp_per_thread,
                "region_lines": self.region_lines,
                "closed_page": self.closed_page,
                "fault_plan": self.fault_plan}

    def sweep(self, thread_counts: list[int], *,
              lines_per_thread: int = 1500,
              jobs: int = 1) -> dict[int, E2eResult]:
        """Fig-3b-style thread sweep.

        ``jobs > 1`` fans the independent points out across processes
        (results and telemetry merge back in thread-count order, so the
        outcome is identical to a serial sweep).
        """
        if jobs > 1:
            return _parallel_sweep(self, thread_counts,
                                   lines_per_thread=lines_per_thread,
                                   jobs=jobs)
        return {threads: self.run(threads=threads,
                                  lines_per_thread=lines_per_thread)
                for threads in thread_counts}


class CxlWriteEndToEndSim:
    """Mechanism-only nt-store simulation with a finite device buffer.

    §4.3.2's explanation of the nt-store collapse, made executable:
    posted writes leave the core freely (write-combining), so
    acceptance is gated only by *device buffer credits*.  The buffer
    drains through the DDR4 banks **in arrival order** — and arrival
    order is what thread count ruins.  One or two writers keep their
    sequential runs intact (row hits, drain ≈ pin rate); more writers
    interleave at line granularity inside the buffer, the drain stream
    loses row locality, drain slows, the buffer backs up, and
    throughput collapses.  No tuned derate involved.
    """

    WRITE_REQUEST_FLITS = 2      # M2S RwD: header + 64 B = 5 slots

    def __init__(self, *, port: CxlPort | None = None,
                 timings: DdrTimings | None = None,
                 controller_ns: float = 140.0,
                 buffer_entries: int = 128,
                 issue_gap_ns: float = 6.0,
                 region_lines: int = 1 << 18,
                 fault_plan: FaultPlan | None = None,
                 telemetry: Telemetry | None = None) -> None:
        if buffer_entries <= 0:
            raise SimulationError("buffer must have entries")
        if issue_gap_ns <= 0:
            raise SimulationError("issue gap must be positive")
        self.telemetry = telemetry if telemetry is not None \
            else NULL_TELEMETRY
        self.port = port if port is not None else CxlPort()
        self.timings = timings if timings is not None \
            else ddr4_2666_timings()
        self.controller_ns = controller_ns
        self.buffer_entries = buffer_entries
        self.issue_gap_ns = issue_gap_ns
        self.region_lines = region_lines
        self.fault_plan = fault_plan

    def run(self, *, threads: int, lines_per_thread: int = 1200
            ) -> E2eResult:
        if threads <= 0 or lines_per_thread <= 0:
            raise SimulationError(
                "threads and lines_per_thread must be positive")
        engine = Engine(telemetry=self.telemetry)
        tracer = self.telemetry.tracer
        traced = tracer.enabled
        injector = injector_for(self.fault_plan, stream="e2e-write",
                                telemetry=self.telemetry)
        flit_ns = 68 / self.port.raw_bandwidth * SEC
        if injector is not None:
            flit_ns *= injector.plan.link_slowdown
        hop_ns = self.port.phy.config.hop_latency_ns
        lines_per_row = self.timings.lines_per_row
        banks = [Bank(self.timings, i)
                 for i in range(self.timings.banks)]

        state = {"m2s_free_at": 0.0, "dram_bus_free_at": 0.0,
                 "credits": self.buffer_entries, "completed": 0,
                 "last_done": 0.0, "stalls": 0}
        next_line = [0] * threads
        waiting_for_credit: deque[tuple[int, int]] = deque()

        def occupancy_sample() -> None:
            tracer.count(TRACK_WBUF, "occupancy", engine.now,
                         self.buffer_entries - state["credits"])

        def thread_tick(thread: int) -> None:
            """A writer produces one line per issue gap, credits allowing."""
            if next_line[thread] >= lines_per_thread:
                return
            index = next_line[thread]
            next_line[thread] += 1
            line = thread * (self.region_lines + lines_per_row) + index
            if state["credits"] > 0:
                state["credits"] -= 1
                if traced:
                    occupancy_sample()
                send(thread, line)
            else:
                state["stalls"] += 1
                if traced:
                    tracer.instant(TRACK_WBUF, "credit-stall", engine.now,
                                   thread=thread)
                waiting_for_credit.append((thread, line))
            # Pace the next store; a full WC pipeline stalls naturally
            # because the credit queue backs up.
            if len(waiting_for_credit) < threads * 12:
                engine.schedule(self.issue_gap_ns, thread_tick, thread)
            else:
                stalled_threads.append(thread)

        stalled_threads: list[int] = []

        def send(thread: int, line: int) -> None:
            sends = self.WRITE_REQUEST_FLITS if injector is None \
                else injector.crc_transmissions(self.WRITE_REQUEST_FLITS,
                                                "m2s", line)
            start = max(engine.now, state["m2s_free_at"])
            state["m2s_free_at"] = start + sends * flit_ns
            if traced:
                tracer.complete(TRACK_PORT, "m2s.rwd", start,
                                sends * flit_ns,
                                thread=thread)
            arrive = state["m2s_free_at"] + hop_ns
            engine.schedule(arrive - engine.now, buffer_arrival, line)

        def buffer_arrival(line: int) -> None:
            # The controller is a pipeline stage (latency, not
            # occupancy); banks and the shared data bus serialize.
            controller_ns = self.controller_ns
            if injector is not None:
                stall = injector.stall_ns("drain", line)
                if stall:
                    if traced:
                        tracer.instant(TRACK_WBUF, "fault-stall",
                                       engine.now)
                    controller_ns += stall
            row_index = line // lines_per_row
            bank = banks[row_index % self.timings.banks]
            data_at, hit = bank.access(row_index // self.timings.banks,
                                       engine.now + controller_ns)
            burst_start = max(data_at, state["dram_bus_free_at"])
            state["dram_bus_free_at"] = burst_start + self.timings.burst_ns
            if traced:
                tracer.complete(TRACK_DRAM, "drain-burst", burst_start,
                                self.timings.burst_ns,
                                bank=bank.index, hit=hit)
            engine.schedule(state["dram_bus_free_at"] - engine.now,
                            drained)

        def drained() -> None:
            state["completed"] += 1
            state["last_done"] = engine.now
            if waiting_for_credit:
                thread, line = waiting_for_credit.popleft()
                send(thread, line)
                if stalled_threads:
                    resume = stalled_threads.pop()
                    engine.schedule(self.issue_gap_ns,
                                    thread_tick, resume)
            else:
                state["credits"] += 1
                if traced:
                    occupancy_sample()

        for thread in range(threads):
            engine.schedule(thread * 0.5, thread_tick, thread)
        engine.run()
        expected = threads * lines_per_thread
        if state["completed"] != expected:
            raise SimulationError(
                f"only {state['completed']} of {expected} drained")
        row_hits = sum(b.row_hits for b in banks)
        row_misses = sum(b.row_misses for b in banks)
        registry = self.telemetry.registry
        registry.counter("cxl.e2e.write.completed").inc(state["completed"])
        registry.counter("cxl.e2e.write.credit_stalls").inc(
            state["stalls"])
        registry.counter("cxl.e2e.write.row_hits").inc(row_hits)
        registry.counter("cxl.e2e.write.row_misses").inc(row_misses)
        return E2eResult(
            threads=threads, completed=state["completed"],
            elapsed_ns=state["last_done"],
            row_hits=row_hits, row_misses=row_misses,
            faults_injected=injector.injected if injector else 0,
            faults_recovered=injector.recovered if injector else 0)

    def _init_kwargs(self) -> dict:
        """Constructor state (minus telemetry) for worker re-creation."""
        return {"port": self.port, "timings": self.timings,
                "controller_ns": self.controller_ns,
                "buffer_entries": self.buffer_entries,
                "issue_gap_ns": self.issue_gap_ns,
                "region_lines": self.region_lines,
                "fault_plan": self.fault_plan}

    def sweep(self, thread_counts: list[int], *,
              lines_per_thread: int = 1200,
              jobs: int = 1) -> dict[int, E2eResult]:
        """nt-store thread sweep, optionally process-parallel."""
        if jobs > 1:
            return _parallel_sweep(self, thread_counts,
                                   lines_per_thread=lines_per_thread,
                                   jobs=jobs)
        return {threads: self.run(threads=threads,
                                  lines_per_thread=lines_per_thread)
                for threads in thread_counts}


def _parallel_sweep(sim, thread_counts: list[int], *,
                    lines_per_thread: int,
                    jobs: int) -> dict[int, E2eResult]:
    """Fan sweep points across processes, merge in thread-count order.

    Each point runs against a fresh worker-side telemetry session
    shaped like ``sim.telemetry``; exports fold back into the parent in
    submission order, so event sequences, track creation order, and
    metric values are identical to a serial sweep's.
    """
    from ..parallel import ParallelRunner, merge_all, telemetry_spec
    from ..parallel.sweeps import run_sim_point

    spec = telemetry_spec(sim.telemetry)
    init_kwargs = sim._init_kwargs()
    units = [(type(sim), init_kwargs,
              {"threads": threads, "lines_per_thread": lines_per_thread},
              spec)
             for threads in thread_counts]
    outputs = ParallelRunner(jobs).map(run_sim_point, units)
    merge_all(sim.telemetry, (export for _, export in outputs))
    return {threads: result
            for threads, (result, _) in zip(thread_counts, outputs)}
