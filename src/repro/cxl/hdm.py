"""Host-managed device memory (HDM) decoding.

A Type-3 device's memory appears in the host physical address space via
HDM decoder ranges programmed at enumeration.  The OS then exposes each
range as a CPU-less NUMA node (§3).  The decoder here supports multiple
devices and the spec's power-of-two way interleaving, although the
paper's testbed uses a single device (one range, one way).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ProtocolError


@dataclass(frozen=True)
class HdmRange:
    """One decoder entry: [base, base+size) -> a set of device targets."""

    base: int
    size: int
    targets: tuple[int, ...]            # device ids, len = interleave ways
    granularity: int = 256              # interleave granularity in bytes

    def __post_init__(self) -> None:
        if self.base < 0 or self.size <= 0:
            raise ProtocolError("HDM range must have base >= 0 and size > 0")
        ways = len(self.targets)
        if ways == 0 or ways & (ways - 1):
            raise ProtocolError(
                f"interleave ways must be a power of two, got {ways}")
        if self.granularity < 64 or self.granularity & (self.granularity - 1):
            raise ProtocolError(
                f"granularity must be a power of two >= 64, got "
                f"{self.granularity}")

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, hpa: int) -> bool:
        return self.base <= hpa < self.end

    def decode(self, hpa: int) -> tuple[int, int]:
        """Host physical address -> (device id, device-local address)."""
        if not self.contains(hpa):
            raise ProtocolError(f"address {hpa:#x} outside HDM range")
        offset = hpa - self.base
        ways = len(self.targets)
        chunk = offset // self.granularity
        device = self.targets[chunk % ways]
        # Device-local: collapse the interleave stride.
        local_chunk = chunk // ways
        local = local_chunk * self.granularity + offset % self.granularity
        return device, local


class HdmDecoder:
    """An ordered set of non-overlapping HDM ranges."""

    def __init__(self) -> None:
        self._ranges: list[HdmRange] = []

    @property
    def ranges(self) -> list[HdmRange]:
        return list(self._ranges)

    def add_range(self, new: HdmRange) -> None:
        """Program a decoder entry; overlap with existing entries is fatal."""
        for existing in self._ranges:
            if new.base < existing.end and existing.base < new.end:
                raise ProtocolError(
                    f"HDM range [{new.base:#x}, {new.end:#x}) overlaps "
                    f"[{existing.base:#x}, {existing.end:#x})")
        self._ranges.append(new)
        self._ranges.sort(key=lambda r: r.base)

    def decode(self, hpa: int) -> tuple[int, int]:
        """Route a host physical address to (device id, local address)."""
        for entry in self._ranges:
            if entry.contains(hpa):
                return entry.decode(hpa)
        raise ProtocolError(f"address {hpa:#x} hits no HDM range")

    def total_capacity(self) -> int:
        """Bytes of device memory mapped into the host address space."""
        return sum(entry.size for entry in self._ranges)
