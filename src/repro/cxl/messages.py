"""CXL.mem message classes and round-trip transactions.

§2.1: "the protocol consists of two simple memory accesses: read and
write from the host to the device memory.  Each access is accompanied by
a completion reply from the device.  The reply contains data when reading
from the device memory and only contains the completion header in the
case of write."

Message classes (CXL 1.1 spec nomenclature):

* **M2S Req** — master-to-subordinate request without data (MemRd);
* **M2S RwD** — request with data (MemWr: header + 64 B);
* **S2M NDR** — no-data response (Cmp, acknowledging a write);
* **S2M DRS** — data response (MemData: header + 64 B).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ProtocolError
from .flit import SLOT_BYTES, Slot, SlotKind, wire_bytes_for_slots

CXL_HEADER_SLOTS = 1
"""A message header occupies one 16 B slot."""

DATA_SLOTS_PER_LINE = 4
"""A 64 B cacheline spans four 16 B data slots."""


class MemOpcode(enum.Enum):
    """The CXL.mem opcodes this model distinguishes."""

    MEM_RD = "MemRd"         # M2S Req: read request
    MEM_WR = "MemWr"         # M2S RwD: write request + data
    CMP = "Cmp"              # S2M NDR: write completion
    MEM_DATA = "MemData"     # S2M DRS: read completion + data

    @property
    def carries_data(self) -> bool:
        return self in (MemOpcode.MEM_WR, MemOpcode.MEM_DATA)

    @property
    def direction(self) -> str:
        """'M2S' (host to device) or 'S2M' (device to host)."""
        if self in (MemOpcode.MEM_RD, MemOpcode.MEM_WR):
            return "M2S"
        return "S2M"

    @property
    def slots(self) -> int:
        """Payload slots this message occupies."""
        data = DATA_SLOTS_PER_LINE if self.carries_data else 0
        return CXL_HEADER_SLOTS + data


@dataclass(frozen=True)
class MemTransaction:
    """One host-initiated CXL.mem round trip (Fig. 1 right)."""

    request: MemOpcode
    response: MemOpcode
    message_id: int = 0

    def __post_init__(self) -> None:
        valid = {(MemOpcode.MEM_RD, MemOpcode.MEM_DATA),
                 (MemOpcode.MEM_WR, MemOpcode.CMP)}
        if (self.request, self.response) not in valid:
            raise ProtocolError(
                f"invalid CXL.mem pairing: {self.request.value} -> "
                f"{self.response.value}")

    @property
    def request_slots(self) -> int:
        return self.request.slots

    @property
    def response_slots(self) -> int:
        return self.response.slots

    def request_slot_objects(self) -> list[Slot]:
        """Slot objects for the request, ready for flit packing."""
        return self._slots_for(self.request)

    def response_slot_objects(self) -> list[Slot]:
        """Slot objects for the response."""
        return self._slots_for(self.response)

    def _slots_for(self, opcode: MemOpcode) -> list[Slot]:
        slots = [Slot(SlotKind.REQUEST, self.message_id)]
        if opcode.carries_data:
            slots += [Slot(SlotKind.DATA, self.message_id)
                      for _ in range(DATA_SLOTS_PER_LINE)]
        return slots

    def wire_bytes_m2s(self) -> int:
        """Host-to-device wire bytes (packed steady state)."""
        return wire_bytes_for_slots(self.request_slots)

    def wire_bytes_s2m(self) -> int:
        """Device-to-host wire bytes (packed steady state)."""
        return wire_bytes_for_slots(self.response_slots)

    @property
    def payload_bytes(self) -> int:
        """Application bytes moved (64 for either direction's data)."""
        data_slots = max(self.request_slots, self.response_slots) \
            - CXL_HEADER_SLOTS
        return data_slots * SLOT_BYTES


def read_transaction(message_id: int = 0) -> MemTransaction:
    """MemRd -> MemData: a host load of one cacheline."""
    return MemTransaction(MemOpcode.MEM_RD, MemOpcode.MEM_DATA,
                          message_id=message_id)


def write_transaction(message_id: int = 0) -> MemTransaction:
    """MemWr -> Cmp: a host store (or writeback) of one cacheline."""
    return MemTransaction(MemOpcode.MEM_WR, MemOpcode.CMP,
                          message_id=message_id)


def transactions_per_line(*, rfo: bool) -> list[MemTransaction]:
    """CXL.mem transactions needed to *store* one line from the host.

    With RFO (a temporal store miss) the line is first read for
    ownership, then eventually written back — two round trips and
    ~2.2x the wire traffic of a non-temporal store, which issues a
    single MemWr.  This accounting is the §4.2/§4.3 explanation for the
    st-vs-nt-st gap on CXL memory.
    """
    if rfo:
        return [read_transaction(), write_transaction()]
    return [write_transaction()]
