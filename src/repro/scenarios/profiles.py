"""Device profiles: scenario ``topology.device`` blocks to testbeds.

The profile axis covers the device taxonomy CXLMemSim draws for real
CXL memory (PAPERS.md): FPGA-controller prototypes (the paper's
Agilex-I testbed, with its controller penalty) versus ASIC controllers
that shed it, in single-device, homogeneous-pool, and heterogeneous
pool arrangements.
"""

from __future__ import annotations

from dataclasses import replace

from ..config import (SystemConfig, combined_testbed,
                      hetero_pooled_testbed, pooled_cxl_testbed,
                      single_socket_testbed)
from .schema import ValidationError
from .spec import DeviceProfile


def build_testbed(profile: DeviceProfile) -> SystemConfig:
    """The :class:`~repro.config.SystemConfig` a profile describes.

    ``variant == "asic"`` rewrites every CXL device with
    :meth:`~repro.config.CxlDeviceConfig.as_asic` — the ablation twin
    with the FPGA controller penalty removed.  The ``hetero-pool``
    preset already mixes both classes, so its variant picks which class
    device 0 gets (``fpga`` keeps the paper's ordering).
    """
    if profile.preset == "combined":
        system = combined_testbed()
    elif profile.preset == "single-socket":
        system = single_socket_testbed()
    elif profile.preset == "pooled":
        system = pooled_cxl_testbed(num_devices=max(2, profile.devices))
    elif profile.preset == "hetero-pool":
        system = hetero_pooled_testbed(
            num_devices=max(2, profile.devices))
    else:
        raise ValidationError(
            "scenario.topology.device.preset",
            f"unknown device preset {profile.preset!r}")
    if profile.variant == "asic":
        if profile.preset == "hetero-pool":
            # Flip the mix so the ASIC class leads the pool: the
            # fpga-variant hetero pool is (fpga, asic, fpga, ...), the
            # asic variant reverses each pair to (asic, fpga, asic, ...).
            fpga = single_socket_testbed().cxl_devices[0]
            devices = tuple(fpga.as_asic() if i % 2 == 0 else fpga
                            for i in range(len(system.cxl_devices)))
        else:
            devices = tuple(dev.as_asic()
                            for dev in system.cxl_devices)
        system = replace(system, name=f"{system.name}-asic",
                         cxl_devices=devices)
    return system
