"""Placeholder substitution and the parameter-grid expander.

The two mechanical halves of the scenario format, mirroring the
exemplars named in the roadmap:

* **placeholders** — proto2testbed-style ``{{ NAME }}`` variables,
  substituted from the scenario's own ``vars`` block (plus caller
  overrides) *before* schema validation.  A string that is exactly one
  placeholder takes the variable's native type (``"{{ QPS }}"`` with
  ``QPS: 120000`` becomes the number); embedded placeholders are string
  interpolation.  Substitution is idempotent: variable values may not
  themselves contain placeholders, so a substituted tree substitutes to
  itself.

* **grid expansion** — congestion-responsive-queuing's
  ``config-generator.py`` idea: one template plus sweep axes expands
  into a deterministic list of concrete run configs.  Axes expand in
  declaration order with the **last axis fastest** (``itertools.product``
  order), the expansion covers the full cross-product exactly once, and
  two expansions of the same template are identical — the properties
  the hypothesis suite in ``tests/scenarios`` pins.
"""

from __future__ import annotations

import itertools
import re
from typing import Any, Mapping

from .schema import ValidationError

PLACEHOLDER = re.compile(r"\{\{\s*([A-Za-z_][A-Za-z0-9_]*)\s*\}\}")


def find_placeholders(tree: Any) -> set[str]:
    """Every ``{{ NAME }}`` variable referenced anywhere in ``tree``."""
    names: set[str] = set()

    def walk(node: Any) -> None:
        if isinstance(node, str):
            names.update(PLACEHOLDER.findall(node))
        elif isinstance(node, dict):
            for key, value in node.items():
                walk(key)
                walk(value)
        elif isinstance(node, list):
            for value in node:
                walk(value)

    walk(tree)
    return names


def substitute(tree: Any, variables: Mapping[str, Any], *,
               path: str = "scenario") -> Any:
    """Replace every ``{{ NAME }}`` in ``tree`` from ``variables``.

    Raises :class:`~repro.scenarios.schema.ValidationError` naming the
    path of an unknown placeholder, and rejects variable values that
    contain placeholders themselves (which would break idempotency and
    invite one-level-only expansion surprises).
    """
    for name, value in variables.items():
        if isinstance(value, str) and PLACEHOLDER.search(value):
            raise ValidationError(
                f"{path}.vars.{name}",
                "variable values may not contain placeholders")

    def lookup(name: str, at: str) -> Any:
        if name not in variables:
            raise ValidationError(
                at, f"undefined placeholder {{{{ {name} }}}}; "
                    f"known vars: {sorted(variables)}")
        return variables[name]

    def walk(node: Any, at: str) -> Any:
        if isinstance(node, str):
            whole = PLACEHOLDER.fullmatch(node.strip())
            if whole:
                return lookup(whole.group(1), at)
            return PLACEHOLDER.sub(
                lambda match: str(lookup(match.group(1), at)), node)
        if isinstance(node, dict):
            return {key: walk(value, f"{at}.{key}")
                    for key, value in node.items()}
        if isinstance(node, list):
            return [walk(value, f"{at}[{i}]")
                    for i, value in enumerate(node)]
        return node

    return walk(tree, path)


def expand_grid(axes: Mapping[str, list]) -> list[dict]:
    """Expand sweep axes into the full cross-product of point configs.

    ``axes`` maps axis name to its value list.  The result is ordered
    deterministically: axes iterate in declaration order, the last
    declared axis varies fastest, and every combination appears exactly
    once.  An empty ``axes`` yields one empty point (the degenerate
    single-run scenario).
    """
    names = list(axes)
    for name in names:
        values = axes[name]
        if not isinstance(values, list) or not values:
            raise ValidationError(
                f"scenario.axes.{name}",
                "an axis needs a non-empty list of values")
        if len(set(map(repr, values))) != len(values):
            raise ValidationError(
                f"scenario.axes.{name}",
                f"axis values must be unique, got {values!r}")
    return [dict(zip(names, combo))
            for combo in itertools.product(*(axes[n] for n in names))]
