"""The generic ``ScenarioExperiment`` adapter.

One parsed :class:`~repro.scenarios.spec.Scenario` becomes one
registered experiment (id ``scn-<name>``) whose runner:

1. expands the sweep axes into the deterministic point grid;
2. splits each point into its traffic segments (bursty/diurnal arrival
   windows);
3. ships every (point, segment) as an independent
   :func:`~repro.parallel.sweeps.run_cluster_point` unit through
   :class:`~repro.parallel.ParallelRunner` — which is what makes
   ``--jobs N`` byte-identical to serial, exactly like the hand-written
   cluster experiments;
4. aggregates segments back into per-point metrics and evaluates the
   scenario's declarative acceptance checks into
   :class:`~repro.analysis.compare.ShapeCheck` verdicts.

The scenario's content hash rides the registry entry's
``extra_config``, so result-cache keys and checkpoint suite hashes
change whenever the document changes.
"""

from __future__ import annotations

from dataclasses import replace

from ..analysis.compare import ShapeCheck
from ..analysis.series import Series
from ..analysis.tables import format_table
from ..config import SystemConfig
from ..faults import FaultPlan
from ..parallel import ParallelRunner
from ..parallel.sweeps import run_cluster_point
from .profiles import build_testbed
from .spec import METRICS, CheckSpec, Scenario, point_grid

# NOTE: repro.experiments imports this package to register the shipped
# pack, so the registry imports below live inside the functions that
# need them (importing the submodule would re-enter the partially
# initialized repro.experiments package).

POINT_METRICS = METRICS
"""Aggregated per-point metrics (the namespace checks reference)."""


def _format_value(key: str, value) -> str:
    if key == "qps":
        return f"qps={float(value) / 1000:g}k"
    if isinstance(value, float):
        return f"{key}={value:g}"
    return f"{key}={value}"


def point_label(scenario: Scenario, point: dict) -> str:
    """``scn-name[qps=80k,severity=2]`` — the parallel-unit label."""
    if not point:
        return scenario.experiment_id
    parts = [_format_value(key, value) for key, value in point.items()]
    return f"{scenario.experiment_id}[{','.join(parts)}]"


def _point_testbed(scenario: Scenario, point: dict) -> SystemConfig:
    device = scenario.topology.device
    if "device" in point:
        device = replace(device, variant=point["device"])
    return build_testbed(device)


def _point_units(scenario: Scenario, point: dict, *, fast: bool,
                 fault_plan: FaultPlan | None,
                 resilience=None, tspec=None) -> tuple[list, list]:
    """The (specs, segment_labels) for one sweep point.

    ``resilience`` is the CLI ``--resilience`` override; when given it
    wins over the scenario's own ``resilience`` block, mirroring how
    ``fault_plan`` overrides ``scenario.faults.plan``.
    """
    hosts = int(point.get("hosts", scenario.topology.hosts))
    pool_share = float(point.get("pool_share",
                                 scenario.topology.pool_share))
    qps = float(point.get("qps", scenario.workload.qps))
    theta = float(point.get("theta", scenario.workload.theta))
    write_fraction = float(point.get("write_fraction",
                                     scenario.workload.write_fraction))
    requests = scenario.workload.requests_for(fast)

    topo_kwargs = {"num_hosts": hosts,
                   "keys_per_host": scenario.topology.keys_per_host,
                   "pool_share": pool_share,
                   "workers": scenario.topology.workers,
                   "testbed": _point_testbed(scenario, point)}

    sim_kwargs: dict = {"router": scenario.router,
                        "seed": scenario.seed}
    plan = fault_plan
    if scenario.faults is not None:
        plan = fault_plan if fault_plan is not None \
            else scenario.faults.plan
        if "severity" in point:
            plan = plan.scaled(float(point["severity"]))
        if scenario.faults.link_down is not None:
            sim_kwargs["link_down"] = scenario.faults.link_down
    if plan is not None and plan.active:
        sim_kwargs["fault_plans"] = {host: plan
                                     for host in range(hosts)}
    policy = resilience if resilience is not None \
        else scenario.resilience
    if policy is not None:
        sim_kwargs["policy"] = policy

    specs, labels = [], []
    for label, segment_qps, segment_requests in \
            scenario.traffic.segments(qps, requests):
        run_kwargs = {"qps": segment_qps, "theta": theta,
                      "requests": segment_requests,
                      "write_fraction": write_fraction}
        specs.append((topo_kwargs, sim_kwargs, run_kwargs, tspec))
        labels.append(label)
    return specs, labels


def _aggregate(segments: list) -> dict:
    """Per-point metrics from the point's segment ClusterResults.

    Tail percentiles take the worst window (a burst's p99 *is* the
    point's p99); counts and means aggregate across the whole arrival
    timeline.
    """
    total = sum(seg.requests for seg in segments)
    wall_s = sum(seg.requests / seg.achieved_qps for seg in segments)

    def stat(name: str) -> float:
        return float(sum(getattr(seg.resilience, name)
                         for seg in segments
                         if seg.resilience is not None))

    return {
        "p99_us": max(seg.p99_ns for seg in segments) / 1000.0,
        "p50_us": max(seg.p50_ns for seg in segments) / 1000.0,
        "mean_service_us": sum(seg.mean_service_ns * seg.requests
                               for seg in segments) / total / 1000.0,
        "achieved_qps": total / wall_s,
        "pool_utilization": segments[0].pool_utilization,
        "requests": float(total),
        "injected": float(sum(seg.injected for seg in segments)),
        "recovered": float(sum(seg.recovered for seg in segments)),
        "rerouted": float(sum(seg.rerouted for seg in segments)),
        "goodput_qps": sum(seg.successes for seg in segments) / wall_s,
        "rejected": stat("rejected"),
        "retries": stat("retries_issued"),
        "hedges": stat("hedges_launched"),
        "deadline_exceeded": stat("deadline_exceeded"),
    }


# --------------------------------------------------------------------------
# Check evaluation
# --------------------------------------------------------------------------

def _axis_groups(scenario: Scenario, points: list[dict],
                 metrics: list[dict], axis: str,
                 metric: str) -> list[tuple[str, list]]:
    """``(group_label, [(axis_value, metric_value), ...])`` per fixed
    combination of the other axes, in deterministic grid order."""
    others = [a.name for a in scenario.axes if a.name != axis]
    order: list[tuple] = []
    groups: dict[tuple, list] = {}
    for point, values in zip(points, metrics):
        key = tuple(point[name] for name in others)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append((point[axis], values[metric]))
    labeled = []
    for key in order:
        label = ",".join(_format_value(name, value)
                         for name, value in zip(others, key)) or "all"
        labeled.append((label, groups[key]))
    return labeled


def _render_run(run: list) -> str:
    return " -> ".join(f"{value:.4g}" for _x, value in run)


def _monotone_check(scenario: Scenario, check: CheckSpec,
                    points: list[dict], metrics: list[dict],
                    *, claim: str) -> ShapeCheck:
    tolerance = check.tolerance or 0.0
    failures, shown = [], []
    for label, run in _axis_groups(scenario, points, metrics,
                                   check.axis, check.metric):
        values = [value for _x, value in run]
        if check.direction == "nonincreasing":
            ok = all(after <= before * (1.0 + tolerance)
                     for before, after in zip(values, values[1:]))
        else:
            ok = all(after >= before * (1.0 - tolerance)
                     for before, after in zip(values, values[1:]))
        if not ok:
            failures.append(label)
        shown.append(f"{label}: {_render_run(run)}")
    measured = "; ".join(shown[:4]) + \
        (f" (+{len(shown) - 4} more)" if len(shown) > 4 else "")
    if failures:
        measured = f"violated at {', '.join(failures)}; {measured}"
    return ShapeCheck(claim, not failures, measured)


def _ordering_check(scenario: Scenario, check: CheckSpec,
                    points: list[dict], metrics: list[dict],
                    *, claim: str) -> ShapeCheck:
    failures, shown = [], []
    for label, run in _axis_groups(scenario, points, metrics,
                                   check.axis, check.metric):
        values = [value for _x, value in run]
        if check.direction == "decreasing":
            ok = all(a > b for a, b in zip(values, values[1:]))
            joiner = " > "
        else:
            ok = all(a < b for a, b in zip(values, values[1:]))
            joiner = " < "
        if not ok:
            failures.append(label)
        shown.append(label + ": "
                     + joiner.join(f"{v:.4g}" for v in values))
    measured = "; ".join(shown[:4]) + \
        (f" (+{len(shown) - 4} more)" if len(shown) > 4 else "")
    if failures:
        measured = f"violated at {', '.join(failures)}; {measured}"
    return ShapeCheck(claim, not failures, measured)


def _evaluate_checks(scenario: Scenario, points: list[dict],
                     metrics: list[dict], segments: list[list],
                     expected_requests: int) -> list[ShapeCheck]:
    checks: list[ShapeCheck] = []
    for check in scenario.checks:
        if check.kind in ("monotone", "fault-monotone"):
            noun = "fault severity" if check.kind == "fault-monotone" \
                else f"the {check.axis} axis"
            claim = (f"{scenario.name}: {check.metric} is "
                     f"{check.direction} in {noun}")
            checks.append(_monotone_check(scenario, check, points,
                                          metrics, claim=claim))
        elif check.kind == "ordering":
            claim = (f"{scenario.name}: {check.metric} is strictly "
                     f"{check.direction} across the {check.axis} axis")
            checks.append(_ordering_check(scenario, check, points,
                                          metrics, claim=claim))
        elif check.kind == "bound":
            lo = check.min if check.min is not None else float("-inf")
            hi = check.max if check.max is not None else float("inf")
            values = [m[check.metric] for m in metrics]
            passed = all(lo <= v <= hi for v in values)
            claim = (f"{scenario.name}: {check.metric} stays within "
                     f"[{lo:g}, {hi:g}] at every point")
            checks.append(ShapeCheck(
                claim, passed,
                f"observed [{min(values):.4g}, {max(values):.4g}] "
                f"over {len(values)} point(s)"))
        elif check.kind == "all-complete":
            passed = all(m["requests"] == expected_requests
                         for m in metrics)
            checks.append(ShapeCheck(
                f"{scenario.name}: every request completes end-to-end "
                f"at every point",
                passed,
                f"{len(metrics)} point(s) x {expected_requests} "
                f"requests"))
        elif check.kind == "faults-recovered":
            passed = all(host.injected == host.recovered
                         for point_segments in segments
                         for seg in point_segments
                         for host in seg.hosts)
            injected = sum(int(m["injected"]) for m in metrics)
            recovered = sum(int(m["recovered"]) for m in metrics)
            checks.append(ShapeCheck(
                f"{scenario.name}: every injected fault is recovered, "
                f"per host, at every point",
                passed,
                f"injected={injected}, recovered={recovered}"))
    return checks


# --------------------------------------------------------------------------
# The runner factory and registration
# --------------------------------------------------------------------------

def _render_points(scenario: Scenario, points: list[dict],
                   metrics: list[dict]) -> str:
    headers = ["point", "p99_us", "p50_us", "achieved_qps",
               "pool_util", "requests", "inj/rec", "rerouted"]
    rows = []
    for point, values in zip(points, metrics):
        rows.append([
            point_label(scenario, point),
            f"{values['p99_us']:.1f}",
            f"{values['p50_us']:.1f}",
            f"{values['achieved_qps']:.0f}",
            f"{values['pool_utilization']:.3f}",
            f"{values['requests']:.0f}",
            f"{values['injected']:.0f}/{values['recovered']:.0f}",
            f"{values['rerouted']:.0f}",
        ])
    return format_table(headers, rows,
                        title=f"{scenario.title} "
                              f"({len(points)} sweep point(s))")


def _metric_series(points: list[dict],
                   metrics: list[dict]) -> list[Series]:
    indices = list(range(len(points)))
    return [Series(metric, list(indices),
                   [values[metric] for values in metrics],
                   x_label="point", y_label=metric)
            for metric in POINT_METRICS]


def scenario_runner(scenario: Scenario):
    """Build the ``runner(fast, jobs=1, fault_plan=None,
    span_config=None, resilience=None)`` callable the registry drives
    — the generic ScenarioExperiment."""

    def run(fast: bool, jobs: int = 1, fault_plan: FaultPlan | None = None,
            span_config=None, resilience=None):
        from ..experiments.figc_cluster import (_span_tspec,
                                                _spans_checks_and_render,
                                                _spans_payload)
        from ..experiments.registry import (ExperimentResult,
                                            series_payload)

        tspec = _span_tspec(span_config)
        points = point_grid(scenario, fast=fast)
        units, names, slices = [], [], []
        for point in points:
            specs, segment_labels = _point_units(
                scenario, point, fast=fast, fault_plan=fault_plan,
                resilience=resilience, tspec=tspec)
            label = point_label(scenario, point)
            start = len(units)
            units.extend(specs)
            names.extend(f"{label}/{segment}"
                         for segment in segment_labels)
            slices.append((start, len(units)))

        runner = ParallelRunner(jobs, names=names)
        pairs = runner.map(run_cluster_point, units)
        results = [result for result, _export in pairs]
        exports = [export for _result, export in pairs]

        segments = [results[start:stop] for start, stop in slices]
        metrics = [_aggregate(point_segments)
                   for point_segments in segments]
        expected = scenario.workload.requests_for(fast)
        checks = _evaluate_checks(scenario, points, metrics, segments,
                                  expected)
        rendered = _render_points(scenario, points, metrics)
        spans_payload: dict = {}
        if span_config is not None:
            # Each (point, traffic segment) unit keeps its own
            # aggregate: a burst window's tail is conditioned against
            # that window, which is the "when and why" the scenario
            # packs ask.
            spans_payload = _spans_payload(span_config, names, exports)
            span_checks, span_section = \
                _spans_checks_and_render(spans_payload)
            checks += span_checks
            rendered += "\n\n" + span_section
        return ExperimentResult(
            scenario.experiment_id, scenario.title, rendered, checks,
            series=series_payload(
                {"points": _metric_series(points, metrics)}),
            spans=spans_payload)

    run.__name__ = f"run_{scenario.name.replace('-', '_')}"
    run.__doc__ = scenario.description or scenario.title
    return run


def register_scenario(scenario: Scenario) -> None:
    """Register one scenario in :mod:`repro.experiments.registry`.

    The document's content hash folds into the entry's
    ``extra_config`` so the result cache and checkpoint journal key on
    the scenario *text*, not just the code.
    """
    from ..experiments.registry import register

    register(scenario.experiment_id, scenario.title,
             scenario.paper_ref,
             extra_config={"scenario_sha": scenario.content_hash()})(
        scenario_runner(scenario))
