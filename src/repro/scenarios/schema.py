"""A small declarative schema engine for scenario documents.

Scenario files are plain JSON/YAML trees; this module validates them
against :class:`Field` specs the way proto2testbed checks
``testbed.json`` against its JSON schema — except self-contained, so
the repo needs no ``jsonschema`` dependency.  Every failure raises a
structured :class:`ValidationError` that names the offending **path**
(``scenario.topology.hosts``), never a raw traceback: scenario authors
debug their files from the error message alone.

Design rules:

* unknown keys are rejected (typos fail loudly, matching
  :mod:`repro.config_io`);
* ``bool`` is not a number (JSON ``true`` must not pass an ``int``
  field);
* defaults are applied during validation, so downstream code always
  sees a fully-populated object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..errors import ScenarioError


class ValidationError(ScenarioError):
    """A scenario document violated the schema at a specific path."""

    def __init__(self, path: str, message: str) -> None:
        self.path = path
        self.reason = message
        super().__init__(f"{path}: {message}")


_MISSING = object()

_KINDS = {
    "str": (str,),
    "int": (int,),
    "number": (int, float),
    "bool": (bool,),
    "object": (dict,),
    "list": (list,),
}


@dataclass(frozen=True)
class Field:
    """One schema slot: type, requiredness, default, and constraints."""

    kind: str
    required: bool = False
    default: Any = _MISSING
    choices: tuple = ()
    minimum: float | None = None
    maximum: float | None = None
    exclusive_minimum: bool = False
    exclusive_maximum: bool = False
    schema: Mapping[str, "Field"] | None = None   # kind == "object"
    item: "Field | None" = None                   # kind == "list"
    allow_none: bool = False

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ScenarioError(f"unknown schema kind {self.kind!r}")


def _type_name(value: Any) -> str:
    if value is None:
        return "null"
    return {dict: "object", list: "list", str: "string", bool: "bool",
            int: "int", float: "number"}.get(type(value),
                                             type(value).__name__)


def _check_type(value: Any, spec: Field, path: str) -> None:
    expected = _KINDS[spec.kind]
    # bool is an int subclass in Python; JSON authors mean them as
    # distinct types, so reject the crossover both ways.
    if isinstance(value, bool) and spec.kind != "bool":
        raise ValidationError(
            path, f"expected {spec.kind}, got bool")
    if not isinstance(value, expected) or (
            spec.kind == "bool" and not isinstance(value, bool)):
        raise ValidationError(
            path, f"expected {spec.kind}, got {_type_name(value)}")


def validate_value(value: Any, spec: Field, path: str) -> Any:
    """Validate one value against ``spec``; returns the value."""
    if value is None:
        if spec.allow_none:
            return None
        raise ValidationError(path, f"expected {spec.kind}, got null")
    _check_type(value, spec, path)
    if spec.choices and value not in spec.choices:
        raise ValidationError(
            path, f"must be one of {sorted(map(str, spec.choices))}, "
                  f"got {value!r}")
    if spec.minimum is not None:
        if value < spec.minimum or (
                spec.exclusive_minimum and value == spec.minimum):
            bound = ">" if spec.exclusive_minimum else ">="
            raise ValidationError(
                path, f"must be {bound} {spec.minimum:g}, got {value!r}")
    if spec.maximum is not None:
        if value > spec.maximum or (
                spec.exclusive_maximum and value == spec.maximum):
            bound = "<" if spec.exclusive_maximum else "<="
            raise ValidationError(
                path, f"must be {bound} {spec.maximum:g}, got {value!r}")
    if spec.kind == "object" and spec.schema is not None:
        return validate_object(value, spec.schema, path)
    if spec.kind == "list" and spec.item is not None:
        return [validate_value(entry, spec.item, f"{path}[{i}]")
                for i, entry in enumerate(value)]
    return value


def validate_object(data: Any, schema: Mapping[str, Field],
                    path: str) -> dict:
    """Validate an object; returns a normalized dict with defaults.

    Unknown keys and missing required fields both name the exact path;
    the valid-key list rides along so a typo'd key is a one-edit fix.
    """
    if not isinstance(data, dict):
        raise ValidationError(
            path, f"expected object, got {_type_name(data)}")
    unknown = set(data) - set(schema)
    if unknown:
        worst = sorted(unknown)[0]
        raise ValidationError(
            f"{path}.{worst}",
            f"unknown key; valid keys: {sorted(schema)}")
    result: dict = {}
    for name, spec in schema.items():
        value = data.get(name, _MISSING)
        if value is _MISSING:
            if spec.required:
                raise ValidationError(
                    f"{path}.{name}", "required field is missing")
            if spec.default is _MISSING:
                continue
            result[name] = spec.default
            continue
        result[name] = validate_value(value, spec, f"{path}.{name}")
    return result


def require(condition: bool, path: str, message: str) -> None:
    """Raise a :class:`ValidationError` unless ``condition`` holds."""
    if not condition:
        raise ValidationError(path, message)
