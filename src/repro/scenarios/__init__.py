"""``repro.scenarios``: declarative scenario packs.

Scenario diversity as data, not code: a JSON/YAML document describes a
cluster-scale CXL experiment (topology + device profile, workload mix,
traffic shape, fault plan, sweep axes, acceptance checks), and the
generic adapter registers it in :mod:`repro.experiments.registry` so it
flows through the existing ``--jobs``/cache/checkpoint/resume/faults
machinery unchanged.  See docs/SCENARIOS.md for the format reference
and the shipped-pack catalog.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping

from .adapter import register_scenario, scenario_runner
from .expand import expand_grid, find_placeholders, substitute
from .loader import PACK_DIR, load_pack, load_scenario_file, pack_files
from .profiles import build_testbed
from .schema import Field, ValidationError
from .spec import (AXES, CHECK_KINDS, METRICS, Scenario, parse_scenario,
                   point_grid)

__all__ = [
    "AXES", "CHECK_KINDS", "Field", "METRICS", "PACK_DIR", "Scenario",
    "ValidationError", "build_testbed", "expand_grid",
    "find_placeholders", "load_pack", "load_scenario_file",
    "pack_files", "parse_scenario", "point_grid", "register_pack",
    "register_scenario", "resolve_scenario_ids", "scenario_runner",
    "scenario_testbed", "substitute",
]


def register_pack(directory: str | Path = PACK_DIR) -> list[str]:
    """Register every scenario in ``directory``; idempotent.

    Returns the experiment ids in pack (file-name) order.  Already
    registered ids are left alone, so importing
    :mod:`repro.experiments` twice — or alongside an explicit
    ``--scenario`` load — never trips the duplicate-id guard.
    """
    from ..experiments.registry import REGISTRY

    ids = []
    for scenario in load_pack(directory):
        if scenario.experiment_id not in REGISTRY:
            register_scenario(scenario)
        ids.append(scenario.experiment_id)
    return ids


def resolve_scenario_ids(spec: str, *,
                         variables: Mapping | None = None) -> list[str]:
    """Resolve a ``--scenario`` argument to registered experiment ids.

    ``spec`` is ``pack`` (the whole shipped pack), a scenario name
    (with or without the ``scn-`` prefix), or a path to a scenario
    file.  Unknown names raise a :class:`ValidationError` listing the
    valid choices.
    """
    from ..experiments.registry import REGISTRY

    if spec == "pack":
        return register_pack()
    path = Path(spec)
    if path.suffix in (".json", ".yaml", ".yml") or path.exists():
        scenario = load_scenario_file(path, variables=variables)
        if scenario.experiment_id not in REGISTRY:
            register_scenario(scenario)
        return [scenario.experiment_id]
    pack_ids = register_pack()
    candidate = spec if spec.startswith("scn-") else f"scn-{spec}"
    if candidate in REGISTRY:
        return [candidate]
    names = ", ".join(eid.removeprefix("scn-") for eid in pack_ids)
    raise ValidationError(
        "scenario", f"unknown scenario {spec!r}; shipped pack: {names} "
                    f"(or pass a scenario file path, or 'pack')")


def scenario_testbed(spec: str):
    """The :class:`~repro.config.SystemConfig` a scenario's device
    profile describes — the ``memo --scenario`` testbed override."""
    path = Path(spec)
    if path.suffix in (".json", ".yaml", ".yml") or path.exists():
        scenario = load_scenario_file(path)
    else:
        name = spec.removeprefix("scn-")
        matches = [s for s in load_pack() if s.name == name]
        if not matches:
            names = ", ".join(s.name for s in load_pack())
            raise ValidationError(
                "scenario",
                f"unknown scenario {spec!r}; shipped pack: {names}")
        scenario = matches[0]
    return build_testbed(scenario.topology.device)
