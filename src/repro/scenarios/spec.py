"""The scenario document model: parse, validate, serialize.

A scenario is one declarative JSON/YAML document describing a
cluster-scale CXL experiment end to end:

* **topology** — fleet size, shard keyspace, pool share, and the CXL
  *device profile* (FPGA-latency vs ASIC-latency per CXLMemSim's
  taxonomy, single vs pooled vs heterogeneous multi-device);
* **workload** — open-loop zipfian parameters (base QPS, skew, write
  fraction, request counts for fast/full modes);
* **traffic** — the arrival shape: ``constant``, ``bursty`` (a calm
  window then a multiplied burst window), or ``diurnal`` (a cycle of
  load levels);
* **faults** — an optional :class:`~repro.faults.FaultPlan` applied to
  every host, an optional mid-run :class:`~repro.cluster.sim.LinkDown`,
  and a ``monotone`` declaration gating the ``fault-monotone`` check;
* **resilience** — an optional
  :class:`~repro.cluster.resilience.ResiliencePolicy` applied to every
  request (deadlines, retries, hedging, circuit breaking, shedding);
  the block folds into the content hash, so toggling a policy is a
  cache miss like any other edit;
* **axes** — sweep axes expanded into the point grid by
  :func:`~repro.scenarios.expand.expand_grid`;
* **checks** — declarative acceptance checks evaluated over the swept
  points and reported as :class:`~repro.analysis.compare.ShapeCheck`
  verdicts.

``parse_scenario -> Scenario.to_dict -> parse_scenario`` is an
identity (the conformance suite pins it), which is what makes the
scenario content hash — and therefore the result-cache key — stable.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass
from typing import Any, Mapping

from ..cluster.resilience import ResiliencePolicy
from ..cluster.sim import LinkDown
from ..errors import ClusterError, FaultError
from ..faults import FaultPlan
from .expand import expand_grid, substitute
from .schema import (Field, ValidationError, require, validate_object,
                     validate_value)

NAME_PATTERN = re.compile(r"^[a-z0-9][a-z0-9-]*$")

METRICS = ("p99_us", "p50_us", "mean_service_us", "achieved_qps",
           "pool_utilization", "requests", "injected", "recovered",
           "rerouted", "goodput_qps", "rejected", "retries", "hedges",
           "deadline_exceeded")
"""Per-point metrics a check may reference."""

CHECK_KINDS = ("monotone", "ordering", "bound", "all-complete",
               "faults-recovered", "fault-monotone")

DEVICE_PRESETS = ("combined", "single-socket", "pooled", "hetero-pool")
DEVICE_VARIANTS = ("fpga", "asic")
ROUTERS = ("hash-shard", "least-loaded")
TRAFFIC_SHAPES = ("constant", "bursty", "diurnal")

DEFAULT_PAPER_REF = "scenario pack; extension of §5.2 (pooling outlook)"
DEFAULT_DIURNAL_LEVELS = (0.4, 0.8, 1.0, 0.6)

# Axis name -> (value Field, home section, home key) — the home is the
# scenario field the axis overrides per point; declaring both at once
# is a conflict.
AXES: dict[str, tuple[Field, str, str]] = {
    "qps": (Field("number", minimum=0, exclusive_minimum=True),
            "workload", "qps"),
    "theta": (Field("number", minimum=0, maximum=1,
                    exclusive_minimum=True, exclusive_maximum=True),
              "workload", "theta"),
    "write_fraction": (Field("number", minimum=0, maximum=1),
                       "workload", "write_fraction"),
    "pool_share": (Field("number", minimum=0, maximum=1),
                   "topology", "pool_share"),
    "hosts": (Field("int", minimum=1), "topology", "hosts"),
    "severity": (Field("number", minimum=0), "faults", "severity"),
    "device": (Field("str", choices=DEVICE_VARIANTS),
               "topology", "device"),
}


# --------------------------------------------------------------------------
# Typed model
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class DeviceProfile:
    """Which CXL device stack backs the pool (docs/SCENARIOS.md)."""

    preset: str = "combined"
    variant: str = "fpga"
    devices: int = 1

    def to_dict(self, *, omit_variant: bool = False) -> dict:
        data: dict = {"preset": self.preset}
        if not omit_variant:
            data["variant"] = self.variant
        data["devices"] = self.devices
        return data


@dataclass(frozen=True)
class TopologySpec:
    hosts: int = 4
    keys_per_host: int = 40_000
    pool_share: float = 0.5
    workers: int = 1
    device: DeviceProfile = DeviceProfile()


@dataclass(frozen=True)
class WorkloadSpec:
    qps: float | None = None           # None when swept by the qps axis
    theta: float = 0.99
    write_fraction: float = 0.05
    requests: int = 6_000
    fast_requests: int | None = None

    def requests_for(self, fast: bool) -> int:
        if not fast:
            return self.requests
        if self.fast_requests is not None:
            return self.fast_requests
        return max(400, self.requests // 4)


@dataclass(frozen=True)
class TrafficSpec:
    shape: str = "constant"
    burst_multiplier: float = 2.5
    burst_share: float = 0.25
    levels: tuple[float, ...] = DEFAULT_DIURNAL_LEVELS

    def segments(self, qps: float, requests: int) -> list[tuple]:
        """Deterministic ``(label, qps, requests)`` arrival windows."""
        if self.shape == "constant":
            return [("steady", qps, requests)]
        if self.shape == "bursty":
            burst = max(1, int(round(requests * self.burst_share)))
            calm = max(1, requests - burst)
            return [("calm", qps, calm),
                    ("burst", qps * self.burst_multiplier,
                     requests - calm)]
        share = max(1, requests // len(self.levels))
        segments = []
        for i, level in enumerate(self.levels):
            count = share if i < len(self.levels) - 1 \
                else requests - share * (len(self.levels) - 1)
            segments.append((f"phase{i}", qps * level, max(1, count)))
        return segments


@dataclass(frozen=True)
class FaultSpec:
    plan: FaultPlan
    link_down: LinkDown | None = None
    monotone: bool = False

    def to_dict(self) -> dict:
        data: dict = {"plan": self.plan.to_dict()}
        if self.link_down is not None:
            data["link_down"] = self.link_down.to_dict()
        data["monotone"] = self.monotone
        return data


@dataclass(frozen=True)
class AxisSpec:
    name: str
    values: tuple
    fast: tuple | None = None          # trimmed values for fast mode

    def values_for(self, fast: bool) -> tuple:
        return self.fast if fast and self.fast is not None \
            else self.values


@dataclass(frozen=True)
class CheckSpec:
    kind: str
    metric: str | None = None
    axis: str | None = None
    tolerance: float | None = None
    direction: str | None = None
    min: float | None = None
    max: float | None = None

    def to_dict(self) -> dict:
        data = {"kind": self.kind}
        for key in ("metric", "axis", "tolerance", "direction",
                    "min", "max"):
            value = getattr(self, key)
            if value is not None:
                data[key] = value
        return data


@dataclass(frozen=True)
class Scenario:
    """One parsed, validated scenario document."""

    name: str
    title: str
    description: str
    paper_ref: str
    seed: int
    router: str
    vars: tuple[tuple[str, Any], ...]
    topology: TopologySpec
    workload: WorkloadSpec
    traffic: TrafficSpec
    faults: FaultSpec | None
    resilience: ResiliencePolicy | None
    axes: tuple[AxisSpec, ...]
    checks: tuple[CheckSpec, ...]

    @property
    def experiment_id(self) -> str:
        """The registry id: ``scn-<name>``."""
        return f"scn-{self.name}"

    def axis(self, name: str) -> AxisSpec | None:
        for axis in self.axes:
            if axis.name == name:
                return axis
        return None

    def to_dict(self) -> dict:
        """The canonical document form (round-trips through
        :func:`parse_scenario` exactly).

        Keys controlled by a sweep axis are omitted from their home
        section — emitting both would trip the axis-conflict rule on
        re-parse.
        """
        axis_names = {axis.name for axis in self.axes}
        data: dict = {
            "name": self.name,
            "title": self.title,
            "description": self.description,
            "paper_ref": self.paper_ref,
            "seed": self.seed,
            "router": self.router,
        }
        if self.vars:
            data["vars"] = dict(self.vars)
        topology: dict = {}
        if "hosts" not in axis_names:
            topology["hosts"] = self.topology.hosts
        topology["keys_per_host"] = self.topology.keys_per_host
        if "pool_share" not in axis_names:
            topology["pool_share"] = self.topology.pool_share
        topology["workers"] = self.topology.workers
        topology["device"] = self.topology.device.to_dict(
            omit_variant="device" in axis_names)
        data["topology"] = topology
        workload: dict = {}
        if "qps" not in axis_names and self.workload.qps is not None:
            workload["qps"] = self.workload.qps
        if "theta" not in axis_names:
            workload["theta"] = self.workload.theta
        if "write_fraction" not in axis_names:
            workload["write_fraction"] = self.workload.write_fraction
        workload["requests"] = self.workload.requests
        if self.workload.fast_requests is not None:
            workload["fast_requests"] = self.workload.fast_requests
        data["workload"] = workload
        traffic: dict = {"shape": self.traffic.shape}
        if self.traffic.shape == "bursty":
            traffic["burst_multiplier"] = self.traffic.burst_multiplier
            traffic["burst_share"] = self.traffic.burst_share
        if self.traffic.shape == "diurnal":
            traffic["levels"] = list(self.traffic.levels)
        data["traffic"] = traffic
        if self.faults is not None:
            data["faults"] = self.faults.to_dict()
        if self.resilience is not None:
            data["resilience"] = self.resilience.to_dict()
        if self.axes:
            axes: dict = {}
            for axis in self.axes:
                if axis.fast is not None:
                    axes[axis.name] = {"values": list(axis.values),
                                       "fast": list(axis.fast)}
                else:
                    axes[axis.name] = list(axis.values)
            data["axes"] = axes
        data["checks"] = [check.to_dict() for check in self.checks]
        return data

    def content_hash(self) -> str:
        """A stable digest of the canonical document — the cache-key
        ingredient that makes editing a scenario file a cache miss."""
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]


# --------------------------------------------------------------------------
# Schemas
# --------------------------------------------------------------------------

_DEVICE_SCHEMA = {
    "preset": Field("str", choices=DEVICE_PRESETS, default="combined"),
    "variant": Field("str", choices=DEVICE_VARIANTS, default="fpga"),
    "devices": Field("int", minimum=1, default=1),
}

_TOPOLOGY_SCHEMA = {
    "hosts": Field("int", minimum=1, default=4),
    "keys_per_host": Field("int", minimum=1, default=40_000),
    "pool_share": Field("number", minimum=0, maximum=1, default=0.5),
    "workers": Field("int", minimum=1, default=1),
    "device": Field("object", schema=_DEVICE_SCHEMA, default=None,
                    allow_none=True),
}

_WORKLOAD_SCHEMA = {
    "qps": Field("number", minimum=0, exclusive_minimum=True),
    "theta": Field("number", minimum=0, maximum=1,
                   exclusive_minimum=True, exclusive_maximum=True,
                   default=0.99),
    "write_fraction": Field("number", minimum=0, maximum=1,
                            default=0.05),
    "requests": Field("int", minimum=1, default=6_000),
    "fast_requests": Field("int", minimum=1),
}

_TRAFFIC_SCHEMA = {
    "shape": Field("str", choices=TRAFFIC_SHAPES, default="constant"),
    "burst_multiplier": Field("number", minimum=1,
                              exclusive_minimum=True, default=2.5),
    "burst_share": Field("number", minimum=0, maximum=1,
                         exclusive_minimum=True, exclusive_maximum=True,
                         default=0.25),
    "levels": Field("list", item=Field("number", minimum=0,
                                       exclusive_minimum=True),
                    default=list(DEFAULT_DIURNAL_LEVELS)),
}

_LINK_DOWN_SCHEMA = {
    "host": Field("int", minimum=0, required=True),
    "at_fraction": Field("number", minimum=0, maximum=1,
                         exclusive_minimum=True, exclusive_maximum=True,
                         default=0.5),
}

_FAULTS_SCHEMA = {
    "plan": Field("object"),
    "link_down": Field("object", schema=_LINK_DOWN_SCHEMA),
    "monotone": Field("bool", default=False),
}

_CHECK_COMMON = {
    "kind": Field("str", choices=CHECK_KINDS, required=True),
    "metric": Field("str", choices=METRICS),
    "axis": Field("str"),
    "tolerance": Field("number", minimum=0),
    "direction": Field("str", choices=("nondecreasing", "nonincreasing",
                                       "increasing", "decreasing")),
    "min": Field("number"),
    "max": Field("number"),
}

_TOP_SCHEMA = {
    "name": Field("str", required=True),
    "title": Field("str", required=True),
    "description": Field("str", default=""),
    "paper_ref": Field("str", default=DEFAULT_PAPER_REF),
    "seed": Field("int", minimum=0, default=7),
    "router": Field("str", choices=ROUTERS, default="hash-shard"),
    "vars": Field("object", default=None, allow_none=True),
    "topology": Field("object", required=True),
    "workload": Field("object", required=True),
    "traffic": Field("object", default=None, allow_none=True),
    "faults": Field("object", default=None, allow_none=True),
    "resilience": Field("object", default=None, allow_none=True),
    "axes": Field("object", default=None, allow_none=True),
    "checks": Field("list", required=True,
                    item=Field("object")),
}


# --------------------------------------------------------------------------
# Parsing
# --------------------------------------------------------------------------

def _parse_axes(raw: Mapping[str, Any] | None) -> tuple[AxisSpec, ...]:
    if not raw:
        return ()
    axes: list[AxisSpec] = []
    for name, spec in raw.items():
        path = f"scenario.axes.{name}"
        if name not in AXES:
            raise ValidationError(
                path, f"unknown axis; valid axes: {sorted(AXES)}")
        value_field = AXES[name][0]
        if isinstance(spec, dict):
            body = validate_object(
                spec, {"values": Field("list", required=True),
                       "fast": Field("list")}, path)
            values = body["values"]
            fast = body.get("fast")
        elif isinstance(spec, list):
            values, fast = spec, None
        else:
            raise ValidationError(
                path, "an axis is a value list or "
                      "{\"values\": [...], \"fast\": [...]}")
        values = [validate_value(v, value_field, f"{path}[{i}]")
                  for i, v in enumerate(values)]
        expand_grid({name: values})        # uniqueness / non-empty
        if fast is not None:
            fast = [validate_value(v, value_field,
                                   f"{path}.fast[{i}]")
                    for i, v in enumerate(fast)]
            expand_grid({name: fast})
            stale = [v for v in fast if v not in values]
            require(not stale, f"{path}.fast",
                    f"fast values must be a subset of values: {stale}")
        axes.append(AxisSpec(name, tuple(values),
                             tuple(fast) if fast is not None else None))
    return tuple(axes)


def _parse_checks(raw: list, axes: tuple[AxisSpec, ...],
                  faults: FaultSpec | None) -> tuple[CheckSpec, ...]:
    axis_names = {axis.name for axis in axes}
    checks: list[CheckSpec] = []
    for i, entry in enumerate(raw):
        path = f"scenario.checks[{i}]"
        body = validate_object(entry, _CHECK_COMMON, path)
        kind = body["kind"]
        metric = body.get("metric")
        axis = body.get(
            "axis", "severity" if kind == "fault-monotone" else None)
        if kind in ("monotone", "ordering", "fault-monotone"):
            metric = metric or "p99_us"
            require(axis is not None, f"{path}.axis",
                    f"a {kind!r} check needs an axis")
            require(axis in axis_names, f"{path}.axis",
                    f"axis {axis!r} is not swept by this scenario")
        if kind == "bound":
            require(metric is not None, f"{path}.metric",
                    "a 'bound' check needs a metric")
            require(body.get("min") is not None
                    or body.get("max") is not None,
                    path, "a 'bound' check needs a min and/or a max")
        if kind in ("all-complete", "faults-recovered"):
            extras = {k for k in ("metric", "axis", "tolerance",
                                  "direction", "min", "max")
                      if body.get(k) is not None}
            require(not extras, path,
                    f"a {kind!r} check takes no parameters, "
                    f"got {sorted(extras)}")
        if kind == "fault-monotone":
            require(faults is not None, path,
                    "a 'fault-monotone' check needs a faults.plan")
            require(faults is None or faults.monotone, path,
                    "a 'fault-monotone' check needs faults.monotone "
                    "declared true")
        tolerance = body.get("tolerance")
        if kind in ("monotone", "fault-monotone") and tolerance is None:
            tolerance = 0.0
        direction = body.get("direction")
        if kind in ("monotone", "fault-monotone"):
            direction = direction or "nondecreasing"
            require(direction in ("nondecreasing", "nonincreasing"),
                    f"{path}.direction",
                    f"monotone direction is 'nondecreasing' or "
                    f"'nonincreasing', got {direction!r}")
        if kind == "ordering":
            direction = direction or "increasing"
            require(direction in ("increasing", "decreasing"),
                    f"{path}.direction",
                    f"ordering direction is 'increasing' or "
                    f"'decreasing', got {direction!r}")
        checks.append(CheckSpec(kind=kind, metric=metric, axis=axis,
                                tolerance=tolerance, direction=direction,
                                min=body.get("min"),
                                max=body.get("max")))
    return tuple(checks)


def _parse_vars(raw: Mapping[str, Any] | None) -> tuple:
    if not raw:
        return ()
    pairs = []
    for name, value in raw.items():
        path = f"scenario.vars.{name}"
        require(bool(re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", name)),
                path, "variable names are identifiers")
        require(isinstance(value, (str, int, float, bool)), path,
                f"variable values are scalars, got "
                f"{type(value).__name__}")
        pairs.append((name, value))
    return tuple(pairs)


def parse_scenario(data: Any, *,
                   variables: Mapping[str, Any] | None = None
                   ) -> Scenario:
    """Validate a raw document tree into a :class:`Scenario`.

    ``variables`` override the document's own ``vars`` block before
    placeholder substitution (the proto2testbed environment-variable
    idea, minus the environment: overrides come from the caller so
    parsing stays a pure function of its inputs).
    """
    if not isinstance(data, dict):
        raise ValidationError(
            "scenario", f"expected object, got {type(data).__name__}")
    declared = _parse_vars(data.get("vars")
                           if isinstance(data.get("vars"), dict)
                           else None)
    merged = dict(declared)
    merged.update(variables or {})
    body = {key: value for key, value in data.items() if key != "vars"}
    body = substitute(body, merged)
    if "vars" in data:
        body["vars"] = data["vars"]
    top = validate_object(body, _TOP_SCHEMA, "scenario")

    name = top["name"]
    require(bool(NAME_PATTERN.fullmatch(name)), "scenario.name",
            f"names are lowercase-kebab ([a-z0-9-]), got {name!r}")

    raw_topology = body.get("topology") \
        if isinstance(body.get("topology"), dict) else {}
    topology_body = validate_object(top["topology"], _TOPOLOGY_SCHEMA,
                                    "scenario.topology")
    device_raw = raw_topology.get("device")
    device_body = topology_body.get("device") or validate_object(
        {}, _DEVICE_SCHEMA, "scenario.topology.device")
    if device_body["preset"] in ("combined", "single-socket"):
        require(device_body["devices"] == 1,
                "scenario.topology.device.devices",
                f"preset {device_body['preset']!r} has exactly one "
                f"device")
    device = DeviceProfile(preset=device_body["preset"],
                           variant=device_body["variant"],
                           devices=device_body["devices"])
    topology = TopologySpec(
        hosts=topology_body["hosts"],
        keys_per_host=topology_body["keys_per_host"],
        pool_share=float(topology_body["pool_share"]),
        workers=topology_body["workers"],
        device=device)

    raw_workload = body.get("workload") or {}
    workload_body = validate_object(top["workload"], _WORKLOAD_SCHEMA,
                                    "scenario.workload")
    workload = WorkloadSpec(
        qps=float(workload_body["qps"])
        if "qps" in workload_body else None,
        theta=float(workload_body["theta"]),
        write_fraction=float(workload_body["write_fraction"]),
        requests=workload_body["requests"],
        fast_requests=workload_body.get("fast_requests"))

    traffic_body = validate_object(top.get("traffic") or {},
                                   _TRAFFIC_SCHEMA, "scenario.traffic")
    require(len(traffic_body["levels"]) >= 1, "scenario.traffic.levels",
            "diurnal traffic needs at least one level")
    traffic = TrafficSpec(
        shape=traffic_body["shape"],
        burst_multiplier=float(traffic_body["burst_multiplier"]),
        burst_share=float(traffic_body["burst_share"]),
        levels=tuple(float(level)
                     for level in traffic_body["levels"]))

    faults: FaultSpec | None = None
    if top.get("faults") is not None:
        faults_body = validate_object(top["faults"], _FAULTS_SCHEMA,
                                      "scenario.faults")
        require("plan" in faults_body, "scenario.faults.plan",
                "required field is missing")
        try:
            plan = FaultPlan.from_dict(faults_body["plan"])
        except (FaultError, TypeError) as exc:
            raise ValidationError("scenario.faults.plan",
                                  str(exc)) from exc
        link_down = None
        if "link_down" in faults_body:
            link_body = faults_body["link_down"]
            try:
                link_down = LinkDown(host=link_body["host"],
                                     at_fraction=float(
                                         link_body["at_fraction"]))
            except ClusterError as exc:
                raise ValidationError("scenario.faults.link_down",
                                      str(exc)) from exc
        faults = FaultSpec(plan=plan, link_down=link_down,
                           monotone=faults_body["monotone"])

    resilience: ResiliencePolicy | None = None
    if top.get("resilience") is not None:
        try:
            resilience = ResiliencePolicy.from_dict(top["resilience"])
        except (ClusterError, TypeError) as exc:
            raise ValidationError("scenario.resilience",
                                  str(exc)) from exc
        require(resilience.active, "scenario.resilience",
                "a resilience block must enable at least one policy "
                "(deadline, hedging, breaker, or shedding)")

    axes = _parse_axes(top.get("axes"))

    # -- cross-field conflicts --------------------------------------------
    for axis in axes:
        _, home, key = AXES[axis.name]
        if home == "workload" and key in raw_workload:
            raise ValidationError(
                f"scenario.axes.{axis.name}",
                f"conflicts with the pinned scenario.workload.{key}")
        if home == "topology" and axis.name != "device" \
                and key in raw_topology:
            raise ValidationError(
                f"scenario.axes.{axis.name}",
                f"conflicts with the pinned scenario.topology.{key}")
        if axis.name == "device" and isinstance(device_raw, dict) \
                and "variant" in device_raw:
            raise ValidationError(
                "scenario.axes.device",
                "conflicts with the pinned "
                "scenario.topology.device.variant")
        if axis.name == "severity":
            require(faults is not None, "scenario.axes.severity",
                    "a severity axis needs a scenario.faults.plan "
                    "to scale")

    axis_names = {axis.name for axis in axes}
    require(workload.qps is not None or "qps" in axis_names,
            "scenario.workload.qps",
            "required field is missing (pin it or sweep a qps axis)")

    if faults is not None and faults.link_down is not None:
        hosts_axis = next((a for a in axes if a.name == "hosts"), None)
        min_hosts = min(hosts_axis.values) if hosts_axis \
            else topology.hosts
        require(min_hosts >= 2, "scenario.faults.link_down",
                "a link-down needs a surviving host (hosts >= 2)")
        require(faults.link_down.host < min_hosts,
                "scenario.faults.link_down.host",
                f"host {faults.link_down.host} outside the "
                f"{min_hosts}-host fleet")

    checks = _parse_checks(top["checks"], axes, faults)
    require(len(checks) >= 1, "scenario.checks",
            "a scenario needs at least one acceptance check")

    return Scenario(
        name=name, title=top["title"],
        description=top["description"], paper_ref=top["paper_ref"],
        seed=top["seed"], router=top["router"], vars=declared,
        topology=topology, workload=workload, traffic=traffic,
        faults=faults, resilience=resilience, axes=axes, checks=checks)


def point_grid(scenario: Scenario, *, fast: bool) -> list[dict]:
    """The scenario's concrete sweep points, in deterministic order."""
    axes = {axis.name: list(axis.values_for(fast))
            for axis in scenario.axes}
    return expand_grid(axes)
