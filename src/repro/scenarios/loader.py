"""Loading scenario documents from disk.

JSON is always supported (stdlib); YAML is supported when PyYAML is
importable and cleanly refused otherwise — the CI image installs only
numpy/pytest/hypothesis, so nothing in the shipped pack may require
YAML.  Duplicate keys in a JSON document are rejected rather than
last-writer-wins, matching the unknown-key strictness of the schema
engine.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from .schema import ValidationError
from .spec import Scenario, parse_scenario

PACK_DIR = Path(__file__).resolve().parent / "pack"
"""The shipped starter-pack directory."""

SUFFIXES = (".json", ".yaml", ".yml")

try:  # pragma: no cover - exercised only where PyYAML is installed
    import yaml as _yaml
except ImportError:  # pragma: no cover
    _yaml = None


def _reject_duplicates(pairs: list) -> dict:
    seen: dict = {}
    for key, value in pairs:
        if key in seen:
            raise ValidationError(
                f"scenario.{key}", "duplicate key in document")
        seen[key] = value
    return seen


def load_document(path: str | Path) -> Any:
    """Parse one scenario file into a raw tree (no validation yet)."""
    path = Path(path)
    if not path.exists():
        raise ValidationError(str(path), "scenario file does not exist")
    text = path.read_text()
    if path.suffix == ".json":
        try:
            return json.loads(text, object_pairs_hook=_reject_duplicates)
        except json.JSONDecodeError as exc:
            raise ValidationError(
                str(path), f"invalid JSON: {exc}") from exc
    if path.suffix in (".yaml", ".yml"):
        if _yaml is None:
            raise ValidationError(
                str(path),
                "YAML scenarios need PyYAML, which is not installed; "
                "use JSON")
        try:
            return _yaml.safe_load(text)
        except _yaml.YAMLError as exc:
            raise ValidationError(
                str(path), f"invalid YAML: {exc}") from exc
    raise ValidationError(
        str(path),
        f"unknown scenario suffix {path.suffix!r}; "
        f"expected one of {list(SUFFIXES)}")


def load_scenario_file(path: str | Path, *,
                       variables: Mapping[str, Any] | None = None
                       ) -> Scenario:
    """Load and fully validate one scenario document."""
    return parse_scenario(load_document(path), variables=variables)


def pack_files(directory: str | Path = PACK_DIR) -> list[Path]:
    """Every scenario file shipped in ``directory``, sorted by name."""
    directory = Path(directory)
    return sorted(p for p in directory.iterdir()
                  if p.suffix in SUFFIXES)


def load_pack(directory: str | Path = PACK_DIR) -> list[Scenario]:
    """Load the whole pack; duplicate scenario names are an error."""
    scenarios: list[Scenario] = []
    names: dict[str, Path] = {}
    for path in pack_files(directory):
        scenario = load_scenario_file(path)
        if scenario.name in names:
            raise ValidationError(
                f"scenario.name",
                f"{scenario.name!r} defined by both "
                f"{names[scenario.name].name} and {path.name}")
        names[scenario.name] = path
        scenarios.append(scenario)
    return scenarios
