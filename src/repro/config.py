"""Hardware configuration dataclasses and the paper's Table-1 testbeds.

Every latency / bandwidth constant the simulator uses lives here, so the
calibration story is auditable in one place.  The two preset builders,
:func:`single_socket_testbed` and :func:`dual_socket_testbed`, mirror the
paper's Table 1:

* **Single socket** — Intel Xeon Gold 6414U @ 2.0 GHz, 32 cores (SMT on),
  60 MB shared LLC, eight DDR5-4800 channels (128 GB), plus an Intel
  Agilex-I CXL 1.1 Type-3 device on PCIe Gen5 x16 backed by a single
  DDR4-2666 DIMM (16 GB).
* **Dual socket** — 2x Intel Xeon Platinum 8460H, 40 cores/socket,
  105 MB LLC per socket, eight DDR5-4800 channels per socket.

Numeric calibration targets (see DESIGN.md §5) come from the paper's
stated ratios, not from any proprietary datasheet.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .errors import ConfigError
from .units import CACHELINE, GIB, KIB, MIB, ddr_peak_bandwidth, gb_per_s


@dataclass(frozen=True)
class DramConfig:
    """One DRAM subsystem: a generation, a transfer rate and channels."""

    generation: str            # "DDR5" or "DDR4"
    transfer_mt_s: float       # e.g. 4800 for DDR5-4800
    channels: int
    capacity_bytes: int
    # Loaded-bank access time for a row-buffer miss, device side only
    # (excludes any interconnect / cache traversal).
    access_ns: float
    # Fraction of theoretical peak a stream of reads can sustain once the
    # channel scheduler is warm (row-buffer locality, refresh, turnaround).
    sequential_efficiency: float = 0.72
    # Fraction sustainable when requests arrive with little address
    # locality (many threads or small random blocks -> row misses).
    random_efficiency: float = 0.38
    # Efficiency lost when traffic is pure writes (bus turnaround,
    # write-recovery).  DDR5-L8 nt-store peaks at 170 of 307 GB/s where
    # loads reach 221 (Fig. 3a) -> ~0.235 penalty; the CXL device's DDR4
    # shows none (nt-store reaches the theoretical line, Fig. 3b).
    write_penalty: float = 0.235

    def __post_init__(self) -> None:
        if self.channels <= 0:
            raise ConfigError(f"channel count must be positive: {self.channels}")
        if self.transfer_mt_s <= 0:
            raise ConfigError(f"MT/s must be positive: {self.transfer_mt_s}")
        if not 0 < self.random_efficiency <= self.sequential_efficiency <= 1:
            raise ConfigError(
                "efficiencies must satisfy 0 < random <= sequential <= 1, got "
                f"random={self.random_efficiency} sequential={self.sequential_efficiency}")
        if not 0 <= self.write_penalty < 1:
            raise ConfigError(
                f"write_penalty must be in [0, 1): {self.write_penalty}")

    @property
    def peak_bandwidth(self) -> float:
        """Theoretical peak of all channels combined, in B/s."""
        return ddr_peak_bandwidth(self.transfer_mt_s, self.channels)

    @property
    def per_channel_peak(self) -> float:
        """Theoretical peak of a single channel, in B/s."""
        return ddr_peak_bandwidth(self.transfer_mt_s, 1)

    def with_channels(self, channels: int) -> "DramConfig":
        """A copy of this config restricted to ``channels`` channels."""
        scale = channels / self.channels
        return replace(self, channels=channels,
                       capacity_bytes=int(self.capacity_bytes * scale))


@dataclass(frozen=True)
class CacheLevelConfig:
    """Geometry and latency of one cache level."""

    name: str
    capacity_bytes: int
    ways: int
    latency_ns: float
    line_bytes: int = CACHELINE

    def __post_init__(self) -> None:
        if self.capacity_bytes % (self.ways * self.line_bytes):
            raise ConfigError(
                f"{self.name}: capacity {self.capacity_bytes} not divisible by "
                f"ways*line ({self.ways}*{self.line_bytes})")

    @property
    def num_sets(self) -> int:
        return self.capacity_bytes // (self.ways * self.line_bytes)


@dataclass(frozen=True)
class CacheConfig:
    """The three-level hierarchy of one socket."""

    l1: CacheLevelConfig
    l2: CacheLevelConfig
    llc: CacheLevelConfig

    @property
    def levels(self) -> tuple[CacheLevelConfig, ...]:
        return (self.l1, self.l2, self.llc)


@dataclass(frozen=True)
class CoreConfig:
    """Per-core resources that bound memory-level parallelism.

    The paper's bandwidth trends are first-order explained by how many
    64 B lines a single thread can keep in flight:

    * loads are bounded by ``fill_buffers`` (L1 miss-status registers);
    * temporal stores by ``store_buffer`` drain + RFO fill-buffer usage;
    * non-temporal stores by ``wc_buffers`` (write-combining buffers) and,
      crucially, they do *not* occupy core tracking resources once handed
      to the uncore — §4.3.2 uses this to explain device-buffer overflow.
    """

    frequency_ghz: float = 2.0
    fill_buffers: int = 16
    store_buffer: int = 56
    wc_buffers: int = 12
    # Cycles of fixed pipeline overhead per memory instruction issue.
    issue_overhead_cycles: int = 4

    @property
    def cycle_ns(self) -> float:
        return 1.0 / self.frequency_ghz

    @property
    def issue_overhead_ns(self) -> float:
        return self.issue_overhead_cycles * self.cycle_ns


@dataclass(frozen=True)
class LinkConfig:
    """A point-to-point interconnect link (UPI or PCIe-based CXL)."""

    name: str
    bandwidth_bytes_per_s: float   # per direction
    hop_latency_ns: float          # one-way propagation + SerDes

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0 or self.hop_latency_ns < 0:
            raise ConfigError(f"invalid link parameters for {self.name}")


@dataclass(frozen=True)
class CxlDeviceConfig:
    """An Agilex-I-like CXL 1.1 Type-3 memory expander.

    ``controller_ns`` is the device-side CXL controller + memory-controller
    traversal per access.  The FPGA implementation hardens both IPs but is
    still clocked at 400 MHz, so we model an ``fpga_penalty_ns`` the paper
    expects an ASIC to remove (§4.2 — "we anticipate that an ASIC
    implementation ... will result in improved latency").
    """

    dram: DramConfig
    link: LinkConfig
    controller_ns: float = 70.0
    fpga_penalty_ns: float = 70.0
    # Device-side write buffer, in 64 B entries.  nt-stores bypass core
    # tracking and can overflow this (§4.3.2's "sweet spot" explanation).
    write_buffer_entries: int = 128
    # Request scheduler quality: how badly interleaved request streams from
    # many threads reduce DRAM row locality behind the controller (§4.3.1's
    # closing observation).  0 = no degradation; 1 = worst case.
    thread_mixing_sensitivity: float = 0.55
    # Threads beyond which the mixing penalty starts to apply for loads.
    load_thread_knee: int = 8

    def __post_init__(self) -> None:
        if self.write_buffer_entries <= 0:
            raise ConfigError("write buffer must have at least one entry")
        if not 0 <= self.thread_mixing_sensitivity <= 1:
            raise ConfigError("thread_mixing_sensitivity must be in [0, 1]")

    @property
    def device_latency_ns(self) -> float:
        """Controller + FPGA + backing-DRAM access, one request."""
        return self.controller_ns + self.fpga_penalty_ns + self.dram.access_ns

    def as_asic(self) -> "CxlDeviceConfig":
        """An ablation twin of this device with the FPGA penalty removed."""
        return replace(self, fpga_penalty_ns=0.0)


@dataclass(frozen=True)
class SocketConfig:
    """One CPU package: cores, caches, local DRAM, and uncore latencies."""

    name: str
    cores: int
    smt: int
    core: CoreConfig
    cache: CacheConfig
    dram: DramConfig
    # On-die mesh traversal from a core to an iMC or the CXL root port.
    mesh_ns: float = 12.0
    # Home-agent / CHA processing per memory transaction.
    home_agent_ns: float = 8.0
    # Number of SNC clusters the package can be split into.
    snc_clusters: int = 4

    def __post_init__(self) -> None:
        if self.cores <= 0 or self.smt <= 0:
            raise ConfigError("cores and smt must be positive")
        if self.snc_clusters <= 0 or self.cores % self.snc_clusters:
            raise ConfigError(
                f"{self.cores} cores not divisible into {self.snc_clusters} SNC clusters")
        if self.dram.channels % self.snc_clusters:
            raise ConfigError(
                f"{self.dram.channels} channels not divisible into "
                f"{self.snc_clusters} SNC clusters")

    @property
    def hardware_threads(self) -> int:
        return self.cores * self.smt

    def snc_node(self) -> "SocketConfig":
        """The slice of this socket seen by one SNC cluster.

        SNC splits the four SPR chiplets into independent NUMA nodes, each
        owning a quarter of the cores and two of the eight DDR5 channels
        (§5.2, Fig. 9).  LLC is also partitioned.
        """
        cluster_cores = self.cores // self.snc_clusters
        cluster_channels = self.dram.channels // self.snc_clusters
        cache = CacheConfig(
            l1=self.cache.l1,
            l2=self.cache.l2,
            llc=replace(self.cache.llc,
                        capacity_bytes=self.cache.llc.capacity_bytes
                        // self.snc_clusters),
        )
        return replace(self, name=f"{self.name}-snc",
                       cores=cluster_cores, cache=cache,
                       dram=self.dram.with_channels(cluster_channels),
                       snc_clusters=1)


@dataclass(frozen=True)
class SystemConfig:
    """A whole testbed: sockets, the inter-socket link, and CXL devices."""

    name: str
    sockets: tuple[SocketConfig, ...]
    upi: LinkConfig | None = None
    cxl_devices: tuple[CxlDeviceConfig, ...] = ()
    # Extra ns for touching a cacheline that was explicitly flushed
    # (coherence-directory handshake; the paper cites the Optane study [31]).
    flushed_line_penalty_ns: float = 95.0

    def __post_init__(self) -> None:
        if not self.sockets:
            raise ConfigError("a system needs at least one socket")
        if len(self.sockets) > 1 and self.upi is None:
            raise ConfigError("multi-socket systems need a UPI link")

    @property
    def socket(self) -> SocketConfig:
        """The first (or only) socket — convenience for single-socket runs."""
        return self.sockets[0]

    @property
    def cxl(self) -> CxlDeviceConfig:
        """The first CXL device; raises if none is attached."""
        if not self.cxl_devices:
            raise ConfigError(f"system {self.name!r} has no CXL device")
        return self.cxl_devices[0]


# --------------------------------------------------------------------------
# Table-1 presets
# --------------------------------------------------------------------------

def _spr_core() -> CoreConfig:
    return CoreConfig(frequency_ghz=2.0, fill_buffers=16, store_buffer=56,
                      wc_buffers=12, issue_overhead_cycles=4)


def _spr_cache(llc_mib: int) -> CacheConfig:
    return CacheConfig(
        l1=CacheLevelConfig("L1d", capacity_bytes=48 * KIB, ways=12,
                            latency_ns=2.5),
        l2=CacheLevelConfig("L2", capacity_bytes=2 * MIB, ways=16,
                            latency_ns=7.0),
        llc=CacheLevelConfig("LLC", capacity_bytes=llc_mib * MIB, ways=15,
                             latency_ns=24.0),
    )


def _ddr5_l8(capacity_gib: int) -> DramConfig:
    return DramConfig(generation="DDR5", transfer_mt_s=4800, channels=8,
                      capacity_bytes=capacity_gib * GIB, access_ns=52.0)


def _agilex_cxl_device() -> CxlDeviceConfig:
    ddr4 = DramConfig(generation="DDR4", transfer_mt_s=2666, channels=1,
                      capacity_bytes=16 * GIB, access_ns=60.0,
                      sequential_efficiency=0.97, random_efficiency=0.42,
                      write_penalty=0.0)
    pcie5_x16 = LinkConfig(name="PCIe5x16",
                           bandwidth_bytes_per_s=gb_per_s(64.0),
                           hop_latency_ns=55.0)
    return CxlDeviceConfig(dram=ddr4, link=pcie5_x16)


def single_socket_testbed() -> SystemConfig:
    """Table 1, first block: Xeon Gold 6414U + Agilex-I CXL device."""
    socket = SocketConfig(name="Xeon-6414U", cores=32, smt=2,
                          core=_spr_core(), cache=_spr_cache(60),
                          dram=_ddr5_l8(128))
    return SystemConfig(name="single-socket",
                        sockets=(socket,),
                        cxl_devices=(_agilex_cxl_device(),))


def dual_socket_testbed() -> SystemConfig:
    """Table 1, second block: 2x Xeon Platinum 8460H (NUMA baseline)."""
    socket0 = SocketConfig(name="Xeon-8460H-0", cores=40, smt=2,
                           core=_spr_core(), cache=_spr_cache(105),
                           dram=_ddr5_l8(128))
    socket1 = replace(socket0, name="Xeon-8460H-1")
    upi = LinkConfig(name="UPI", bandwidth_bytes_per_s=gb_per_s(48.0),
                     hop_latency_ns=34.0)
    return SystemConfig(name="dual-socket", sockets=(socket0, socket1),
                        upi=upi)


def pooled_cxl_testbed(num_devices: int = 2) -> SystemConfig:
    """A forward-looking testbed with several CXL expanders pooled.

    The paper anticipates "CXL devices will have a bandwidth that is
    comparable to native DRAM, which will further enhance the throughput
    of memory bandwidth-bound applications" (§5.2) and recommends
    interleaving "especially when the CXL memory device has more memory
    channels" (§6).  Pooling N single-channel devices behind independent
    root ports is the same experiment from the software side.
    """
    if num_devices <= 0:
        raise ConfigError(f"need at least one device: {num_devices}")
    single = single_socket_testbed()
    devices = tuple(_agilex_cxl_device() for _ in range(num_devices))
    return SystemConfig(name=f"pooled-{num_devices}cxl",
                        sockets=single.sockets, cxl_devices=devices)


def hetero_pooled_testbed(num_devices: int = 2) -> SystemConfig:
    """A pooled testbed mixing FPGA- and ASIC-class expanders.

    CXLMemSim's device taxonomy (PAPERS.md) observes that shipping CXL
    memory spans FPGA prototypes (with a controller penalty, like the
    paper's Agilex-I testbed) and ASIC controllers that shed it.  A
    heterogeneous pool alternates the two classes behind independent
    root ports, so pool latency depends on which device owns a shard.
    """
    if num_devices <= 1:
        raise ConfigError(
            f"a heterogeneous pool needs at least two devices: {num_devices}")
    single = single_socket_testbed()
    base = _agilex_cxl_device()
    devices = tuple(base.as_asic() if i % 2 else base
                    for i in range(num_devices))
    return SystemConfig(name=f"hetero-pool-{num_devices}cxl",
                        sockets=single.sockets, cxl_devices=devices)


def combined_testbed() -> SystemConfig:
    """Both testbeds merged into one model system.

    The paper runs microbenchmarks against three memory schemes —
    DDR5-L8 (local), DDR5-R1 (remote socket, one channel) and CXL —
    comparing across its two physical machines.  For experiments that
    need all three schemes simultaneously we model a dual-socket system
    with the CXL device attached to socket 0.
    """
    dual = dual_socket_testbed()
    return SystemConfig(name="combined", sockets=dual.sockets, upi=dual.upi,
                        cxl_devices=(_agilex_cxl_device(),))
