"""Interconnect models: on-die mesh, cross-socket UPI, and PCIe Gen5.

Each class answers two questions the performance model asks on every
memory access: *how long does one hop take?* and *what bandwidth ceiling
does this link impose?*  The CXL flit layer (:mod:`repro.cxl`) rides on
:class:`~repro.interconnect.pcie.PciePhy`.
"""

from .link import Link
from .mesh import Mesh
from .upi import UpiLink, default_upi
from .pcie import PcieGen, PciePhy, pcie_lane_rate

__all__ = [
    "Link",
    "Mesh",
    "UpiLink",
    "default_upi",
    "PcieGen",
    "PciePhy",
    "pcie_lane_rate",
]
