"""PCIe physical-layer parameters (the substrate CXL rides on).

Per §2.1: "as of PCIe Gen 5, the bandwidth has reached 32 GT/s (i.e.,
64 GB/s with 16 lanes)".  Gen 1/2 use 8b/10b encoding; Gen 3+ use
128b/130b, which is why Gen3 x16 is ~15.75 GB/s rather than 16.
"""

from __future__ import annotations

import enum

from ..config import LinkConfig
from .link import Link


class PcieGen(enum.IntEnum):
    """PCIe generation → line rate in GT/s per lane."""

    GEN1 = 1
    GEN2 = 2
    GEN3 = 3
    GEN4 = 4
    GEN5 = 5

    @property
    def gt_per_s(self) -> float:
        return {1: 2.5, 2: 5.0, 3: 8.0, 4: 16.0, 5: 32.0}[int(self)]

    @property
    def encoding_efficiency(self) -> float:
        """Line-code efficiency: 8b/10b for Gen1-2, 128b/130b after."""
        return 0.8 if self <= PcieGen.GEN2 else 128 / 130


def pcie_lane_rate(gen: PcieGen) -> float:
    """Usable bytes/s of one lane (after line coding)."""
    return gen.gt_per_s * 1e9 / 8 * gen.encoding_efficiency


class PciePhy(Link):
    """A PCIe port of a given generation and width."""

    def __init__(self, gen: PcieGen = PcieGen.GEN5, lanes: int = 16,
                 hop_latency_ns: float = 55.0) -> None:
        if lanes not in (1, 2, 4, 8, 16):
            raise ValueError(f"invalid PCIe width: x{lanes}")
        self.gen = gen
        self.lanes = lanes
        bandwidth = pcie_lane_rate(gen) * lanes
        super().__init__(LinkConfig(name=f"PCIe{int(gen)}x{lanes}",
                                    bandwidth_bytes_per_s=bandwidth,
                                    hop_latency_ns=hop_latency_ns))
