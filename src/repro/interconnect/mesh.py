"""The on-die mesh between cores, LLC slices, iMCs, and root ports.

SPR's mesh traversal is a small, roughly constant cost relative to a DRAM
access; we model it as a fixed per-crossing latency taken from
:class:`~repro.config.SocketConfig`, with an SNC variant that shortens
the path (an SNC cluster only talks to its own quadrant).
"""

from __future__ import annotations


class Mesh:
    """Fixed-latency on-die fabric."""

    def __init__(self, crossing_ns: float, snc: bool = False) -> None:
        if crossing_ns < 0:
            raise ValueError(f"negative mesh latency: {crossing_ns}")
        self.crossing_ns = crossing_ns
        self.snc = snc

    def traverse_ns(self) -> float:
        """One core-to-uncore-agent crossing.

        Under SNC the average hop shrinks (traffic stays inside one
        chiplet); 0.6 approximates a quadrant-local path.
        """
        return self.crossing_ns * (0.6 if self.snc else 1.0)
