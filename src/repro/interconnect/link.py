"""A generic point-to-point link with per-direction bandwidth."""

from __future__ import annotations

from ..config import LinkConfig
from ..units import SEC


class Link:
    """Runtime wrapper over a :class:`~repro.config.LinkConfig`.

    Latency model: a payload of ``n`` bytes takes one fixed ``hop_latency``
    (propagation, SerDes, protocol framing) plus serialization time at the
    link's line rate.  Bandwidth accounting is cumulative so benchmarks can
    ask for average utilization afterwards.
    """

    def __init__(self, config: LinkConfig) -> None:
        self.config = config
        self.bytes_forward = 0.0
        self.bytes_reverse = 0.0

    @property
    def name(self) -> str:
        return self.config.name

    @property
    def bandwidth(self) -> float:
        """Per-direction line rate in B/s."""
        return self.config.bandwidth_bytes_per_s

    def serialization_ns(self, payload_bytes: float) -> float:
        """Time to clock ``payload_bytes`` onto the wire."""
        if payload_bytes < 0:
            raise ValueError(f"negative payload: {payload_bytes}")
        return payload_bytes / self.bandwidth * SEC

    def one_way_ns(self, payload_bytes: float, *, record: bool = False,
                   reverse: bool = False) -> float:
        """Latency of one transfer; optionally record it for utilization."""
        if record:
            if reverse:
                self.bytes_reverse += payload_bytes
            else:
                self.bytes_forward += payload_bytes
        return self.config.hop_latency_ns + self.serialization_ns(payload_bytes)

    def round_trip_ns(self, request_bytes: float,
                      response_bytes: float) -> float:
        """Request out, response back — the unloaded protocol round trip."""
        return (self.one_way_ns(request_bytes)
                + self.one_way_ns(response_bytes, reverse=True))

    def utilization(self, elapsed_ns: float) -> float:
        """Peak-direction utilization over a window, in [0, ...]."""
        if elapsed_ns <= 0:
            raise ValueError("window must be positive")
        busiest = max(self.bytes_forward, self.bytes_reverse)
        return busiest / (self.bandwidth * elapsed_ns / SEC)
