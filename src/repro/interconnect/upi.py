"""The cross-socket UPI link used by the DDR5-R1 comparisons.

A remote-socket memory access crosses UPI twice (request + data return).
UPI carries full cachelines with modest header overhead and — unlike the
CXL path in this study — has both higher line rate and lower per-hop
latency (§4.3.1: "with the benefit of higher transfer rate and lower
latency in both DDR5 and the UPI interconnect").
"""

from __future__ import annotations

from ..config import LinkConfig
from ..units import gb_per_s
from .link import Link

UPI_HEADER_BYTES = 16
"""Approximate protocol overhead per UPI cacheline transfer."""


class UpiLink(Link):
    """UPI with cacheline-granular transfer helpers."""

    def cacheline_round_trip_ns(self) -> float:
        """Read round trip: small request out, 64 B + header back."""
        return self.round_trip_ns(UPI_HEADER_BYTES,
                                  64 + UPI_HEADER_BYTES)

    def effective_bandwidth(self) -> float:
        """Data bandwidth after header overhead, B/s."""
        payload_fraction = 64 / (64 + UPI_HEADER_BYTES)
        return self.bandwidth * payload_fraction


def default_upi() -> UpiLink:
    """The dual-socket testbed's UPI link (three x24 links, one modeled)."""
    return UpiLink(LinkConfig(name="UPI",
                              bandwidth_bytes_per_s=gb_per_s(48.0),
                              hop_latency_ns=34.0))
