"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class at an API boundary.  Subclasses are split
by subsystem so tests can assert on the precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError):
    """A configuration object is inconsistent or out of range."""


class SimulationError(ReproError):
    """The discrete-event engine was driven into an invalid state."""


class AllocationError(ReproError):
    """A NUMA page allocation could not be satisfied."""


class ProtocolError(ReproError):
    """A CXL protocol rule (flit packing, message pairing) was violated."""


class CacheError(ReproError):
    """A cache-hierarchy invariant (inclusion, MESI transition) was violated."""


class DeviceError(ReproError):
    """A memory or DSA device was used outside of its operating envelope."""


class WorkloadError(ReproError):
    """A workload generator was configured with invalid parameters."""


class ExperimentError(ReproError):
    """An experiment harness failed to produce a result."""


class TelemetryError(ReproError):
    """A telemetry metric or trace was used or serialized incorrectly."""


class FaultError(ReproError):
    """A fault-injection plan is invalid or was applied inconsistently."""


class ClusterError(ReproError):
    """A cluster topology, pool carve, or routing rule was violated."""


class ScenarioError(ReproError):
    """A declarative scenario could not be loaded, validated, or run."""


def unknown_option(kind: str, name: object, options) -> str:
    """The uniform message for name-keyed factories: ``unknown <kind>
    <name>; available: [...]``.

    Both :func:`repro.cluster.routing.make_router` and
    :func:`repro.cluster.resilience.make_policy` raise with this shape,
    so CLI error output stays greppable across subsystems.
    """
    return f"unknown {kind} {name!r}; available: {sorted(options)}"
