"""The :class:`FaultPlan`: one run's declarative fault configuration.

A plan is a frozen, picklable value object — it travels unchanged into
worker processes, into result-cache keys, and into saved experiment
JSON, which is what makes faulty runs reproducible and cacheable.  All
probabilities are *per decision point* (per flit for CRC, per request
for the rest); durations are nanoseconds, consistent with
:mod:`repro.units`.

The knobs model the misbehaviors the paper's Agilex-I device exhibits
under load (§4.3–§4.5) plus the standard CXL RAS machinery:

===================  ====================================================
``crc_rate``         per-flit CRC failure; the link-layer retry buffer
                     retransmits (the 2 B CRC in every 68 B flit, §2.1)
``poison_rate``      per-response data poisoning; the host discards the
                     DRS and re-issues the read after a backoff
``timeout_rate``     per-request transient controller timeout; the host
                     re-issues after ``timeout_ns``
``stall_rate``       per-request device write-buffer / scheduler stall
                     of ``stall_ns`` (§4.3.2's buffer backpressure)
``link_width_fraction`` / ``link_speed_fraction``
                     degraded link operation (e.g. a Gen5 x16 port
                     retrained to x8 is ``width=0.5``)
===================  ====================================================
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace

from ..errors import FaultError

_RATE_FIELDS = ("crc_rate", "poison_rate", "timeout_rate", "stall_rate")

_PARSE_KEYS = {
    "crc": ("crc_rate", float),
    "poison": ("poison_rate", float),
    "timeout": ("timeout_rate", float),
    "stall": ("stall_rate", float),
    "stall-ns": ("stall_ns", float),
    "timeout-ns": ("timeout_ns", float),
    "backoff-ns": ("retry_backoff_ns", float),
    "retries": ("max_retries", int),
    "width": ("link_width_fraction", float),
    "speed": ("link_speed_fraction", float),
    "seed": ("seed", int),
}


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic, seedable fault configuration for one run."""

    crc_rate: float = 0.0
    poison_rate: float = 0.0
    timeout_rate: float = 0.0
    stall_rate: float = 0.0
    stall_ns: float = 400.0
    timeout_ns: float = 2_000.0
    retry_backoff_ns: float = 200.0
    max_retries: int = 8
    link_width_fraction: float = 1.0
    link_speed_fraction: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            rate = getattr(self, name)
            if not 0.0 <= rate < 1.0:
                raise FaultError(f"{name} must be in [0, 1): {rate}")
        for name in ("stall_ns", "timeout_ns", "retry_backoff_ns"):
            if getattr(self, name) < 0.0:
                raise FaultError(f"{name} must be non-negative")
        for name in ("link_width_fraction", "link_speed_fraction"):
            fraction = getattr(self, name)
            if not 0.0 < fraction <= 1.0:
                raise FaultError(f"{name} must be in (0, 1]: {fraction}")
        if self.max_retries < 1:
            raise FaultError("max_retries must be at least 1")

    # -- derived -----------------------------------------------------------

    @property
    def active(self) -> bool:
        """True when this plan can perturb a run at all.

        An all-zero plan is indistinguishable from no plan — simulators
        take the unperturbed fast path, so a zero-fault run is
        byte-identical to a fault-free one.
        """
        return any(getattr(self, name) > 0.0 for name in _RATE_FIELDS) \
            or self.link_slowdown != 1.0

    @property
    def link_slowdown(self) -> float:
        """Flit serialization-time multiplier from degraded link
        operation (>= 1)."""
        return 1.0 / (self.link_width_fraction
                      * self.link_speed_fraction)

    def scaled(self, factor: float) -> "FaultPlan":
        """A plan with every *rate* multiplied by ``factor``.

        Durations, the degraded-link fractions, and the seed are kept;
        rates cap just below 1 so any scale factor stays valid.  The
        severity axis of the ``degraded-cxl`` experiment.
        """
        if factor < 0.0:
            raise FaultError(f"scale factor must be non-negative: {factor}")
        return replace(self, **{
            name: min(getattr(self, name) * factor, 0.999)
            for name in _RATE_FIELDS})

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-compatible form (the result-cache key material)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        unknown = set(data) - {f for f, _ in _PARSE_KEYS.values()}
        if unknown:
            raise FaultError(
                f"unknown FaultPlan field(s): {sorted(unknown)}")
        return cls(**data)

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from a CLI spec like ``crc=0.01,poison=0.002``.

        Keys: ``crc poison timeout stall`` (rates), ``stall-ns
        timeout-ns backoff-ns`` (durations), ``retries``, ``width
        speed`` (degraded-link fractions), ``seed``.
        """
        fields: dict = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise FaultError(
                    f"fault spec entries are key=value, got {part!r}")
            key, _, raw = part.partition("=")
            key = key.strip()
            if key not in _PARSE_KEYS:
                raise FaultError(
                    f"unknown fault knob {key!r}; available: "
                    f"{' '.join(sorted(_PARSE_KEYS))}")
            field, convert = _PARSE_KEYS[key]
            try:
                fields[field] = convert(raw.strip())
            except ValueError as exc:
                raise FaultError(
                    f"bad value for {key!r}: {raw.strip()!r}") from exc
        return cls(**fields)


ZERO_FAULTS = FaultPlan()
"""The inactive plan: injects nothing, perturbs nothing."""
