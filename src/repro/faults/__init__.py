"""Deterministic CXL fault injection and degraded-mode simulation.

The paper's numbers come from a real FPGA-based CXL device that stalls,
retries, and backpressures under load (§4.3–§4.5); this package makes
those misbehaviors injectable so the simulators model degraded modes,
not just the happy path:

* :class:`FaultPlan` (:mod:`repro.faults.plan`) — a frozen, picklable
  fault configuration: per-flit CRC error rate, response poisoning,
  transient controller timeouts, device write-buffer stalls, and
  degraded link width/speed, plus retry/backoff policy and a seed;
* :class:`FaultInjector` (:mod:`repro.faults.injector`) — the per-run
  fault source.  Draws are *counter-based* (addressed by decision key,
  not by draw order), which gives two guarantees the test suite pins:
  serial and process-parallel runs inject identical faults, and raising
  a rate only ever adds faults (monotone degradation).

Faults perturb latency and bandwidth; they never lose work.  Every
injected fault is recovered by the protocol layer (retransmission,
re-issue after timeout/poison, or simply waiting out a stall) and both
sides are counted — see docs/FAULTS.md for the fault model and the
``faults.*`` telemetry counters, and the ``degraded-cxl`` experiment
for the headline sweep.
"""

from __future__ import annotations

from .injector import FaultInjector, injector_for
from .plan import ZERO_FAULTS, FaultPlan

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "ZERO_FAULTS",
    "injector_for",
]
