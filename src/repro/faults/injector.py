"""The :class:`FaultInjector`: draws faults, counts every one.

One injector is built *per simulation run* from a :class:`FaultPlan`
and a stream label, so a sweep rebuilt point-by-point in worker
processes draws exactly what a serial loop draws (the parallel
determinism contract).  Draws come from
:func:`repro.sim.rng.decision_uniform` — stateless, addressed by
``(plan.seed, stream, *decision key)`` — so visiting decision points in
a different order, or not at all, never perturbs other decisions.

Every injected fault and every recovery increments both a local tally
(shipped back inside results, cheap and always on) and a
``faults.*`` counter in the run's telemetry registry (docs/FAULTS.md
lists them all).
"""

from __future__ import annotations

from ..sim.rng import decision_uniform
from ..telemetry import NULL_TELEMETRY, Telemetry
from .plan import FaultPlan

# Registry counter names (docs/FAULTS.md, docs/TELEMETRY.md).
CRC_ERRORS = "faults.crc_errors"
POISONED = "faults.poisoned_responses"
TIMEOUTS = "faults.timeouts"
STALLS = "faults.stalls"
STALL_NS = "faults.stall_ns_total"
RETRIES = "faults.retries"
RECOVERIES = "faults.recoveries"


class FaultInjector:
    """Per-run fault source: deterministic draws plus accounting."""

    def __init__(self, plan: FaultPlan, *, stream: str = "faults",
                 telemetry: Telemetry | None = None) -> None:
        self.plan = plan
        self.stream = stream
        self.telemetry = telemetry if telemetry is not None \
            else NULL_TELEMETRY
        self.injected = 0        # faults injected this run
        self.recovered = 0       # faults the protocol absorbed

    # -- draws -------------------------------------------------------------

    def _uniform(self, *key: object) -> float:
        return decision_uniform(self.plan.seed, self.stream, *key)

    def crc_transmissions(self, flits: int, *key: object) -> int:
        """Total flit sends for ``flits`` flits, CRC retries included.

        Each flit retransmits while its per-attempt draw lands under
        ``crc_rate`` (a truncated geometric, capped at ``max_retries``
        extra sends).  Every retransmission is a counted fault *and* a
        counted recovery — the link-layer retry buffer never loses a
        flit, it only burns wire time.
        """
        rate = self.plan.crc_rate
        if rate <= 0.0:
            return flits
        total = 0
        errors = 0
        for flit in range(flits):
            attempt = 1
            while attempt <= self.plan.max_retries \
                    and self._uniform("crc", *key, flit, attempt) < rate:
                attempt += 1
                errors += 1
            total += attempt
        if errors:
            self.injected += errors
            self.recovered += errors
            registry = self.telemetry.registry
            registry.counter(CRC_ERRORS).inc(errors)
            registry.counter(RETRIES).inc(errors)
            registry.counter(RECOVERIES).inc(errors)
        return total

    def poisoned(self, *key: object) -> bool:
        """Whether this response arrives poisoned (host must re-read)."""
        if self.plan.poison_rate <= 0.0:
            return False
        hit = self._uniform("poison", *key) < self.plan.poison_rate
        if hit:
            self.injected += 1
            self.telemetry.registry.counter(POISONED).inc()
        return hit

    def timeout(self, *key: object) -> bool:
        """Whether the device transiently times out on this request."""
        if self.plan.timeout_rate <= 0.0:
            return False
        hit = self._uniform("timeout", *key) < self.plan.timeout_rate
        if hit:
            self.injected += 1
            self.telemetry.registry.counter(TIMEOUTS).inc()
        return hit

    def stall_ns(self, *key: object) -> float:
        """Extra device-side stall injected into this request (0 or
        ``plan.stall_ns``)."""
        if self.plan.stall_rate <= 0.0:
            return 0.0
        if self._uniform("stall", *key) < self.plan.stall_rate:
            self.injected += 1
            self.recovered += 1      # a stall only delays; nothing to redo
            registry = self.telemetry.registry
            registry.counter(STALLS).inc()
            registry.counter(STALL_NS).inc(self.plan.stall_ns)
            registry.counter(RECOVERIES).inc()
            return self.plan.stall_ns
        return 0.0

    # -- labeled per-request extras ----------------------------------------

    def request_extras(self, *key: object, reread_ns: float
                       ) -> tuple[list[tuple[str, float]], int]:
        """All request-level fault latency for one request, labeled.

        Draws the stall / timeout / poison decisions for the decision
        key (usually a request index; resilient runs add an attempt
        discriminator so each retry/hedge attempt draws independently)
        in the canonical order and returns ``(parts,
        pending_recoveries)`` where ``parts`` is a list of
        ``(span_component, ns)`` entries — one per fault that hit — and
        ``pending_recoveries`` counts the request-level retries to
        absolve via :meth:`recovery` once the request completes.
        ``reread_ns`` is what re-fetching the record's lines costs (the
        poison path re-reads them all).

        The summed parts equal exactly what inlined draws would have
        added to a request's service time, so callers can use this on
        both spanned and spans-off paths without perturbing results.
        """
        parts: list[tuple[str, float]] = []
        pending = 0
        stall = self.stall_ns(*key)
        if stall:
            parts.append(("fault.stall", stall))
        if self.timeout(*key):
            parts.append(("fault.timeout",
                          self.plan.timeout_ns + self.plan.retry_backoff_ns))
            self.retried()
            pending += 1
        if self.poisoned(*key):
            # Discard the poisoned response, re-read every line.
            parts.append(("fault.reread",
                          reread_ns + self.plan.retry_backoff_ns))
            self.retried()
            pending += 1
        return parts, pending

    # -- recovery accounting ----------------------------------------------

    def retried(self) -> None:
        """A request-level retry was issued (poison or timeout path)."""
        self.telemetry.registry.counter(RETRIES).inc()

    def recovery(self) -> None:
        """A previously injected request-level fault was absorbed."""
        self.recovered += 1
        self.telemetry.registry.counter(RECOVERIES).inc()


def injector_for(plan: FaultPlan | None, *, stream: str,
                 telemetry: Telemetry | None = None
                 ) -> FaultInjector | None:
    """An injector for ``plan``, or ``None`` when the plan is absent or
    inactive — callers branch on ``None`` to keep the unperturbed hot
    path byte-identical to a fault-free build."""
    if plan is None or not plan.active:
        return None
    return FaultInjector(plan, stream=stream, telemetry=telemetry)
