"""The single-threaded KV server under open-loop load (DES).

Redis processes queries on one event-loop thread, so the server is a
capacity-1 station.  YCSB clients throttle to a target QPS (§5.1:
"conducted multiple workloads while throttling query per second in the
YCSB clients"), modeled as a Poisson arrival process; the recorded
sojourn time (queue wait + service) is what the p99 curves plot.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ...errors import WorkloadError
from ...sim import Engine, LatencyRecorder, Server
from ...sim.rng import substream
from ...telemetry import NULL_TELEMETRY, Telemetry
from ...workloads.ycsb import Operation
from .store import KvStore

KVSTORE_TRACK = "apps.kvstore"


@dataclass(frozen=True)
class RunResult:
    """Outcome of one (workload, placement, QPS) run."""

    target_qps: float
    achieved_qps: float
    p50_ns: float
    p99_ns: float
    mean_service_ns: float
    requests: int

    @property
    def saturated(self) -> bool:
        """True when the server could not keep up with the offered load."""
        return self.achieved_qps < 0.95 * self.target_qps

    @property
    def p99_us(self) -> float:
        return self.p99_ns / 1000.0


class KvServer:
    """Drives a :class:`KvStore` with Poisson arrivals on the DES engine.

    ``workers=1`` is Redis' single-threaded event loop; ``workers>1``
    models a memcached-style threaded server (§6.1 names both as
    µs-level, latency-bound stores).  More workers raise the saturation
    QPS linearly but do nothing for the per-query CXL latency penalty —
    which is the §6.1 point: latency-bound is about *service time*, not
    concurrency.
    """

    def __init__(self, store: KvStore, *, seed: int = 1,
                 workers: int = 1,
                 telemetry: Telemetry | None = None) -> None:
        if workers <= 0:
            raise WorkloadError(f"workers must be positive: {workers}")
        self.store = store
        self.seed = seed
        self.workers = workers
        self.telemetry = telemetry if telemetry is not None \
            else NULL_TELEMETRY

    def run(self, target_qps: float, *, requests: int = 20_000) -> RunResult:
        """Simulate ``requests`` queries at ``target_qps`` offered load."""
        if target_qps <= 0:
            raise WorkloadError(f"QPS must be positive: {target_qps}")
        if requests <= 0:
            raise WorkloadError(f"requests must be positive: {requests}")
        if (self.workers == 1 and not self.telemetry.enabled
                and not self.telemetry.spans.enabled
                and os.environ.get("REPRO_KV_FASTPATH", "") != "0"):
            # A capacity-1 FIFO station needs no event queue: the
            # Lindley recursion below replays the DES float-for-float.
            return self._run_fast(target_qps, requests)
        engine = Engine(telemetry=self.telemetry)
        tracer = self.telemetry.tracer
        traced = tracer.enabled
        spans = self.telemetry.spans
        spanned = spans.enabled
        name = ("redis-event-loop" if self.workers == 1
                else f"memcached-{self.workers}w")
        server = Server(self.workers, name=name)
        arrivals = substream(f"arrivals-{self.seed}", self.seed)
        sojourn = LatencyRecorder("sojourn")
        service_total = [0.0]
        completed = [0]
        last_completion = [0.0]
        mean_gap_ns = 1e9 / target_qps

        def submit(index: int, arrival_time: float) -> None:
            def start() -> None:
                op = self.store.workload.next_operation(arrivals)
                if op is Operation.INSERT:
                    # Workload D: new records append and become the
                    # "latest" keys subsequent reads favor.
                    key = self.store.insert_record()
                else:
                    key = self.store.chooser.next_key(arrivals)
                cpu, misses, miss_ns = \
                    self.store.sample_service_parts(op, key)
                service = cpu + misses * miss_ns
                service_total[0] += service

                def finish() -> None:
                    server.release()
                    sojourn.record(engine.now - arrival_time)
                    completed[0] += 1
                    last_completion[0] = engine.now
                    if traced:
                        tracer.complete(KVSTORE_TRACK, op.value,
                                        arrival_time,
                                        engine.now - arrival_time,
                                        request=index)

                if not spanned:
                    engine.schedule(service, finish)
                    return

                # Spanned path only: defaults bind start()'s locals so
                # the spans-off closure above keeps its exact shape (no
                # extra cells on the hot path).
                def finish_spanned(key=key, cpu=cpu, misses=misses,
                                   mem_total=misses * miss_ns,
                                   grant=engine.now) -> None:
                    finish()
                    # The memory part splits by the kind of node
                    # backing the record's lines; the second entry
                    # is a residual so the pair closes exactly on
                    # misses * miss_ns.
                    dram_share, cxl_share = \
                        self.store.miss_node_split(key)
                    segments = [
                        ("client.wait", grant - arrival_time),
                        ("kv.cpu", cpu)]
                    if cxl_share == 0.0:
                        segments.append(("mem.dram", mem_total))
                    elif dram_share == 0.0:
                        segments.append(("mem.cxl", mem_total))
                    else:
                        dram_part = misses * dram_share
                        segments.append(("mem.dram", dram_part))
                        segments.append(
                            ("mem.cxl", mem_total - dram_part))
                    spans.record(index, arrival_time, segments,
                                 kind=op.value)

                engine.schedule(service, finish_spanned)

            server.acquire(start)

        # Pre-draw all arrival times (exponential gaps).
        gaps = arrivals.exponential(mean_gap_ns, size=requests)
        arrival_time = 0.0
        for index in range(requests):
            arrival_time += float(gaps[index])
            engine.schedule_at(arrival_time,
                               lambda i=index, t=arrival_time: submit(i, t))
        engine.run()

        elapsed = last_completion[0]
        if elapsed <= 0:
            raise WorkloadError("no requests completed")
        registry = self.telemetry.registry
        registry.counter("apps.kvstore.requests").inc(completed[0])
        registry.gauge("apps.kvstore.p99_sojourn_ns").set(sojourn.p99())
        registry.gauge("apps.kvstore.achieved_qps").set(
            completed[0] / (elapsed / 1e9))
        return RunResult(target_qps=target_qps,
                         achieved_qps=completed[0] / (elapsed / 1e9),
                         p50_ns=sojourn.p50(),
                         p99_ns=sojourn.p99(),
                         mean_service_ns=service_total[0] / completed[0],
                         requests=completed[0])

    def _run_fast(self, target_qps: float, requests: int) -> RunResult:
        """The ``workers == 1`` analytic fast path (no event queue).

        With a single FIFO slot the DES collapses to the Lindley
        recursion ``start_i = max(arrival_i, finish_{i-1})``,
        ``finish_i = start_i + service_i``: arrival events carry the
        lowest sequence numbers, so grants — and with them every RNG
        draw (operation, key, service) — happen in arrival-index order
        exactly as the engine replays them, and the float arithmetic
        here is the same adds/compares the event loop performs.  The
        result is byte-identical to the DES path
        (``REPRO_KV_FASTPATH=0`` forces the engine for verification;
        ``tests/apps/test_kv_fastpath.py`` pins the equivalence).
        Tracing runs keep the DES path so per-request trace events and
        engine trace spans still appear.
        """
        store = self.store
        arrivals = substream(f"arrivals-{self.seed}", self.seed)
        sojourn = LatencyRecorder("sojourn")
        next_operation = store.workload.next_operation
        insert_record = store.insert_record
        chooser = store.chooser
        sample_service_ns = store.sample_service_ns
        record = sojourn.record
        insert = Operation.INSERT

        gaps = arrivals.exponential(1e9 / target_qps, size=requests)
        arrival = 0.0
        finish = 0.0
        service_total = 0.0
        for index in range(requests):
            arrival += float(gaps[index])
            op = next_operation(arrivals)
            if op is insert:
                key = insert_record()
            else:
                key = chooser.next_key(arrivals)
            service = sample_service_ns(op, key)
            service_total += service
            start = arrival if arrival >= finish else finish
            finish = start + service
            record(finish - arrival)

        if finish <= 0:
            raise WorkloadError("no requests completed")
        registry = self.telemetry.registry
        # Registry parity with the DES path: the engine's end-of-run
        # gauges (one arrival event + one finish event per request, the
        # clock left at the last completion) plus the app-level stats.
        registry.gauge("sim.engine.events_processed").set(2 * requests)
        registry.gauge("sim.engine.now_ns").set(finish)
        registry.counter("apps.kvstore.requests").inc(requests)
        registry.gauge("apps.kvstore.p99_sojourn_ns").set(sojourn.p99())
        registry.gauge("apps.kvstore.achieved_qps").set(
            requests / (finish / 1e9))
        return RunResult(target_qps=target_qps,
                         achieved_qps=requests / (finish / 1e9),
                         p50_ns=sojourn.p50(),
                         p99_ns=sojourn.p99(),
                         mean_service_ns=service_total / requests,
                         requests=requests)
