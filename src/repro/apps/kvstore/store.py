"""The Redis-like store: records on policy-placed pages.

Service-time model
------------------
One query's latency decomposes into

* a CPU part — request parsing, hashing, reply serialization — with
  log-normal jitter (Redis' own processing is µs-scale, §5.1);
* a memory part — the *effective dependent misses* of walking the hash
  bucket and touching the record's value lines.  Each miss pays the
  unloaded read path of whichever NUMA node backs the touched page, so
  interleave ratios shift the mix of ~106 ns (DRAM) and ~390 ns (CXL)
  misses;
* cache absorption — requests to keys hot enough to live in the LLC
  skip most of the memory part.  Hot mass comes from the workload's key
  distribution, which is how Fig 7's lat/zipf/uni variants differ.

This is the mechanism behind both paper observations: µs-level queries
are highly sensitive to memory latency (the p99 gap of Fig 6), and the
max QPS ordering across interleave ratios (Fig 7).
"""

from __future__ import annotations

import numpy as np

from ...cpu.system import System
from ...errors import WorkloadError
from ...topology.interleave import PlacementPolicy
from ...topology.pages import Allocation
from ...units import CACHELINE
from ...workloads.ycsb import Operation, YcsbWorkload

CPU_BASE_NS = 10_400.0
"""Per-query CPU work (parse + hash + reply), Redis-like."""

CPU_JITTER_SIGMA = 0.12
"""Log-normal sigma of the CPU part."""

EFFECTIVE_MISSES_MEAN = 20.0
"""Mean dependent memory misses per query (bucket walk + 1 KB value)."""

MISS_JITTER_SIGMA = 0.5
"""Log-normal sigma of the miss count — the tail that p99 sees."""

RECORD_OVERHEAD_BYTES = 200
"""Redis object headers, SDS strings, dict entry per record."""

LLC_USABLE_FRACTION = 0.5
"""Share of the LLC realistically holding hot records."""


class KvStore:
    """Keyspace layout + per-operation service-time sampling."""

    def __init__(self, system: System, policy: PlacementPolicy, *,
                 workload: YcsbWorkload, num_keys: int = 1_000_000,
                 capacity_keys: int | None = None,
                 rng: np.random.Generator | None = None) -> None:
        if num_keys <= 0:
            raise WorkloadError(f"num_keys must be positive: {num_keys}")
        self.system = system
        self.workload = workload
        self.num_keys = num_keys
        # Inserts (workload D is 5% inserts) grow the keyspace into
        # pre-allocated headroom, like a store started with maxmemory.
        self.capacity_keys = capacity_keys if capacity_keys is not None \
            else int(num_keys * 1.1)
        if self.capacity_keys < num_keys:
            raise WorkloadError("capacity below the initial keyspace")
        self.record_bytes = _round_lines(
            workload.value_bytes + RECORD_OVERHEAD_BYTES)
        self.allocation: Allocation = system.allocator.allocate(
            self.capacity_keys * self.record_bytes, policy)
        self.chooser = workload.make_chooser(num_keys)
        self._rng = rng if rng is not None else np.random.default_rng(0)
        # Unloaded read path per node, precomputed once.
        self._node_read_ns = {
            node.node_id: system.edge_ns()
            + system.backend_for_node(node.node_id).idle_read_ns()
            for node in system.topology.nodes}
        self._cache_hit_prob = self._estimate_cache_hit_prob()
        # Per-key expected miss latency, built lazily on first use
        # (None = unbuilt, False = record too large for the vectorized
        # build, ndarray = the table).  See _build_miss_table.
        self._miss_table: np.ndarray | None | bool = None

    def free(self) -> None:
        """Return the store's pages to the allocator (sweep hygiene)."""
        self.system.allocator.free(self.allocation)

    def insert_record(self) -> int:
        """Append a new record (a YCSB INSERT); returns its key.

        Raises once the pre-allocated capacity is exhausted — the
        simulated analogue of hitting maxmemory.
        """
        if self.num_keys >= self.capacity_keys:
            raise WorkloadError(
                f"keyspace capacity {self.capacity_keys} exhausted")
        key = self.num_keys
        self.num_keys += 1
        self.chooser.grow(self.num_keys)
        return key

    # -- layout ------------------------------------------------------------

    def record_offset(self, key: int) -> int:
        if not 0 <= key < self.num_keys:
            raise WorkloadError(f"key {key} outside keyspace")
        return key * self.record_bytes

    def record_node_mix(self, key: int) -> dict[int, float]:
        """Fraction of the record's lines on each node."""
        start = self.record_offset(key)
        offsets = np.arange(start, start + self.record_bytes, CACHELINE)
        nodes = self.allocation.nodes_of(offsets)
        ids, counts = np.unique(nodes, return_counts=True)
        return {int(n): float(c) / len(offsets)
                for n, c in zip(ids, counts)}

    def cxl_resident_fraction(self) -> float:
        """Fraction of the whole store on CXL nodes (verifies policies)."""
        fractions = self.allocation.node_fractions()
        return sum(share for node, share in fractions.items()
                   if self.system.topology.node(node).kind.is_cxl)

    # -- caching -------------------------------------------------------------

    def _estimate_cache_hit_prob(self) -> float:
        llc = self.system.socket.config.cache.llc.capacity_bytes
        hot_records = int(llc * LLC_USABLE_FRACTION / self.record_bytes)
        return self.chooser.hot_mass(hot_records)

    @property
    def cache_hit_prob(self) -> float:
        return self._cache_hit_prob

    # -- service times ---------------------------------------------------------

    def _build_miss_table(self) -> np.ndarray | bool:
        """Vectorize ``average_miss_latency_ns`` over the whole keyspace.

        A record shorter than a page touches at most two pages, so each
        key's node mix is (lines-on-first-page, lines-on-second-page)
        split between two ``page_nodes`` entries — a handful of O(keys)
        integer ops instead of an ``arange``/``nodes_of``/``unique``
        round-trip per query.  The float expression replicates the
        scalar path exactly: shares accumulate in ascending node-id
        order with the same ``count/lines`` division and
        ``share * ns`` product, and the single-node case collapses to
        ``1.0 * ns`` just as the scalar sum does — so every table entry
        is bit-identical to what the per-key computation returns.
        """
        page = self.allocation.page_bytes
        rb = self.record_bytes
        if rb > page:
            self._miss_table = False
            return False
        nlines = rb // CACHELINE
        page_nodes = self.allocation.page_nodes
        ns_arr = np.zeros(max(int(page_nodes.max()),
                              max(self._node_read_ns)) + 1)
        for node, ns in self._node_read_ns.items():
            ns_arr[node] = ns
        start = np.arange(self.capacity_keys, dtype=np.int64) * rb
        first_page = start // page
        last_page = (start + rb - CACHELINE) // page
        n1 = page_nodes[first_page].astype(np.int64)
        n2 = page_nodes[last_page].astype(np.int64)
        # Lines of the record on its first page (start and page are
        # both cacheline-multiples, so the bound divides exactly).
        a = np.minimum(nlines, ((first_page + 1) * page - start)
                       // CACHELINE).astype(np.float64)
        b = nlines - a
        lo_first = n1 <= n2
        c_lo = np.where(lo_first, a, b)
        c_hi = np.where(lo_first, b, a)
        ns_lo = ns_arr[np.minimum(n1, n2)]
        ns_hi = ns_arr[np.maximum(n1, n2)]
        split = (c_lo / nlines) * ns_lo + (c_hi / nlines) * ns_hi
        table = np.where(n1 == n2, ns_arr[n1], split)
        self._miss_table = table
        return table

    def average_miss_latency_ns(self, key: int) -> float:
        """Expected per-miss latency given the record's node mix."""
        table = self._miss_table
        if table is None:
            table = self._build_miss_table()
        if table is not False:
            if not 0 <= key < self.num_keys:
                raise WorkloadError(f"key {key} outside keyspace")
            return float(table[key])
        mix = self.record_node_mix(key)
        return sum(share * self._node_read_ns[node]
                   for node, share in mix.items())

    def sample_service_parts(self, op: Operation, key: int
                             ) -> tuple[float, float, float]:
        """One query's sampled ``(cpu_ns, misses, per_miss_ns)``.

        The span layer records the parts separately;
        :meth:`sample_service_ns` folds them into the scalar service
        time.  Draw order is fixed (CPU jitter, miss jitter, cache
        draw) so sampling parts or the scalar consumes the RNG stream
        identically.
        """
        rng = self._rng
        cpu = CPU_BASE_NS * rng.lognormal(0.0, CPU_JITTER_SIGMA)
        misses = EFFECTIVE_MISSES_MEAN * rng.lognormal(0.0, MISS_JITTER_SIGMA)
        if op in (Operation.UPDATE, Operation.READ_MODIFY_WRITE,
                  Operation.INSERT):
            # Mutations rewrite the value: extra dirty-line traffic.
            misses *= 1.15
        if rng.random() < self._cache_hit_prob:
            misses *= 0.1        # hot record: index + value mostly cached
        return cpu, misses, self.average_miss_latency_ns(key)

    def sample_service_ns(self, op: Operation, key: int) -> float:
        """One query's service time (CPU + memory), sampled."""
        cpu, misses, miss_ns = self.sample_service_parts(op, key)
        return cpu + misses * miss_ns

    def miss_node_split(self, key: int) -> tuple[float, float]:
        """``(dram_share_ns, cxl_share_ns)`` of the per-miss latency.

        Splits :meth:`average_miss_latency_ns` by the kind of node
        backing each of the record's lines — the span layer's
        DRAM-vs-CXL attribution.  Only called on spanned runs; uses the
        exact per-node scalar path, no RNG.
        """
        mix = self.record_node_mix(key)
        dram = 0.0
        cxl = 0.0
        for node, share in mix.items():
            part = share * self._node_read_ns[node]
            if self.system.topology.node(node).kind.is_cxl:
                cxl += part
            else:
                dram += part
        return dram, cxl

    def mean_service_ns(self, samples: int = 2000) -> float:
        """Monte-Carlo mean service time under the workload."""
        if samples <= 0:
            raise WorkloadError("samples must be positive")
        total = 0.0
        for _ in range(samples):
            op = self.workload.next_operation(self._rng)
            key = self.chooser.next_key(self._rng)
            total += self.sample_service_ns(op, key)
        return total / samples


def _round_lines(nbytes: int) -> int:
    return -(-nbytes // CACHELINE) * CACHELINE
