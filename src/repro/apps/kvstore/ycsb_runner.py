"""The Redis-YCSB study harness (Figs 6 and 7).

Placement is specified as the *fraction of Redis memory on CXL*:
0.0 binds everything to local DDR5, 1.0 binds to the CXL node, anything
between uses the weighted-interleave patch ratio closest to the target
(§5: 3.23 % = 30:1, 10 % = 9:1, 50 % = 1:1).  NUMA balancing is off —
pages never migrate (§5: "we disabled NUMA balancing to prevent page
migration to DRAM").
"""

from __future__ import annotations

from ...analysis.series import Series
from ...cpu.system import System
from ...errors import WorkloadError
from ...topology.interleave import Membind, PlacementPolicy, WeightedInterleave
from ...workloads.ycsb import WORKLOADS, YcsbWorkload
from .server import KvServer, RunResult
from .store import KvStore

SATURATION_HEADROOM = 0.97
"""A server sustains ~97% of its theoretical 1/E[service] capacity."""


class RedisYcsbStudy:
    """Builds stores at given CXL fractions and measures p99 / max QPS."""

    def __init__(self, system: System, *, num_keys: int = 200_000,
                 seed: int = 1) -> None:
        if not system.has_cxl:
            raise WorkloadError("the Redis study needs a CXL node")
        self.system = system
        self.num_keys = num_keys
        self.seed = seed

    # -- placement -----------------------------------------------------------

    def policy_for_fraction(self, cxl_fraction: float) -> PlacementPolicy:
        if not 0.0 <= cxl_fraction <= 1.0:
            raise WorkloadError(
                f"CXL fraction out of range: {cxl_fraction}")
        local = self.system.LOCAL_NODE
        cxl = self.system.cxl_node_id
        if cxl_fraction == 0.0:
            return Membind(local)
        if cxl_fraction == 1.0:
            return Membind(cxl)
        return WeightedInterleave.from_cxl_fraction(local, cxl,
                                                    cxl_fraction)

    def build_store(self, workload: YcsbWorkload,
                    cxl_fraction: float) -> KvStore:
        import numpy as np
        policy = self.policy_for_fraction(cxl_fraction)
        return KvStore(self.system, policy, workload=workload,
                       num_keys=self.num_keys,
                       rng=np.random.default_rng(self.seed))

    # -- Fig 6: p99 vs QPS ---------------------------------------------------

    def p99_point(self, workload: YcsbWorkload, cxl_fraction: float,
                  qps: float, *, requests: int = 15_000) -> RunResult:
        store = self.build_store(workload, cxl_fraction)
        try:
            return KvServer(store, seed=self.seed).run(qps,
                                                       requests=requests)
        finally:
            store.free()

    def p99_curve(self, workload: YcsbWorkload, cxl_fraction: float,
                  qps_points: list[float], *, requests: int = 15_000,
                  jobs: int = 1) -> Series:
        """One Fig-6 curve: p99 sojourn (µs) versus offered QPS.

        Each point builds its own store from the same seed, so points
        are independent: ``jobs > 1`` fans them across worker processes
        and reassembles the series in QPS order, bit-identical to the
        serial loop.
        """
        label = f"{int(cxl_fraction * 100)}%-CXL"
        series = Series(label, x_label="QPS", y_label="p99 (us)")
        if jobs > 1 and len(qps_points) > 1:
            from ...parallel import ParallelRunner
            from ...parallel.sweeps import run_kv_p99_point
            specs = [(self.system, self.num_keys, self.seed, workload,
                      cxl_fraction, qps, requests) for qps in qps_points]
            names = [f"fig6[{label},qps={qps:g}]" for qps in qps_points]
            results = ParallelRunner(jobs, names=names).map(
                run_kv_p99_point, specs)
        else:
            results = [self.p99_point(workload, cxl_fraction, qps,
                                      requests=requests)
                       for qps in qps_points]
        for qps, result in zip(qps_points, results):
            series.append(qps, result.p99_us)
        return series

    def p99_curves(self, workload: YcsbWorkload,
                   cxl_fractions: list[float],
                   qps_points: list[float], *, requests: int = 15_000,
                   jobs: int = 1) -> list[Series]:
        """Every Fig-6 curve in one flat (fraction × QPS) sweep.

        With ``jobs > 1`` each *(fraction, qps)* pair is its own worker
        unit — finer sharding than one-curve-at-a-time, so a handful of
        workers keeps busy across the whole figure instead of stalling
        at each curve boundary.  Results reassemble fraction-major,
        QPS-minor, byte-identical to the serial nested loop.
        """
        if jobs > 1 and len(cxl_fractions) * len(qps_points) > 1:
            from ...parallel import ParallelRunner
            from ...parallel.sweeps import run_kv_p99_point
            specs = []
            names = []
            for fraction in cxl_fractions:
                label = f"{int(fraction * 100)}%-CXL"
                for qps in qps_points:
                    specs.append((self.system, self.num_keys, self.seed,
                                  workload, fraction, qps, requests))
                    names.append(f"fig6[{label},qps={qps:g}]")
            results = ParallelRunner(jobs, names=names).map(
                run_kv_p99_point, specs)
            curves = []
            for index, fraction in enumerate(cxl_fractions):
                label = f"{int(fraction * 100)}%-CXL"
                series = Series(label, x_label="QPS", y_label="p99 (us)")
                offset = index * len(qps_points)
                for qps, result in zip(
                        qps_points,
                        results[offset:offset + len(qps_points)]):
                    series.append(qps, result.p99_us)
                curves.append(series)
            return curves
        return [self.p99_curve(workload, fraction, qps_points,
                               requests=requests)
                for fraction in cxl_fractions]

    # -- Fig 7: max sustainable QPS -------------------------------------------

    def max_qps(self, workload: YcsbWorkload,
                cxl_fraction: float) -> float:
        """Saturation throughput: ~97% of 1/E[service].

        The DES server validates this analytic capacity (see the tests);
        using the closed form keeps the 6-workloads x 5-ratios sweep of
        Fig 7 fast.
        """
        store = self.build_store(workload, cxl_fraction)
        try:
            mean_service = store.mean_service_ns()
        finally:
            store.free()
        return SATURATION_HEADROOM / (mean_service / 1e9)

    def max_qps_table(self, *, cxl_fractions: list[float],
                      workload_names: list[str] | None = None
                      ) -> dict[str, Series]:
        """The full Fig-7 data: one series per workload variant."""
        variants = self._fig7_variants(workload_names)
        table: dict[str, Series] = {}
        for name, workload in variants:
            series = Series(name, x_label="CXL fraction",
                            y_label="max QPS")
            for fraction in cxl_fractions:
                series.append(fraction, self.max_qps(workload, fraction))
            table[name] = series
        return table

    @staticmethod
    def _fig7_variants(workload_names: list[str] | None
                       ) -> list[tuple[str, YcsbWorkload]]:
        names = workload_names or ["A", "B", "C", "D", "F"]
        variants: list[tuple[str, YcsbWorkload]] = []
        for name in names:
            if name not in WORKLOADS:
                raise WorkloadError(f"unknown YCSB workload {name!r}")
            workload = WORKLOADS[name]
            if name == "D":
                # Fig 7 runs D with all three request distributions.
                for distribution in ("latest", "zipfian", "uniform"):
                    variant = workload.with_distribution(distribution)
                    variants.append((variant.name, variant))
            else:
                variants.append((name, workload))
        return variants
