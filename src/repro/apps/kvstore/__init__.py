"""A Redis-like single-threaded KV store on simulated memory."""

from .store import KvStore
from .server import KvServer, RunResult
from .ycsb_runner import RedisYcsbStudy

__all__ = ["KvStore", "KvServer", "RunResult", "RedisYcsbStudy"]
