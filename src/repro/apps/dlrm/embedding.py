"""Embedding tables placed on simulated memory.

§5.2: "Embedding reduction, a step within the DLRM inference, is known
to have a high memory footprint and occupies 50% to 70% of the
inference latency."  Tables hold dense float32 rows; a lookup gathers
one row (a few cachelines at a random offset), which is why the study
correlates with MEMO's small-block random-access results (§4.3.2).
"""

from __future__ import annotations

from ...cpu.system import System
from ...errors import WorkloadError
from ...topology.interleave import PlacementPolicy
from ...units import CACHELINE

FLOAT_BYTES = 4


class EmbeddingTables:
    """A set of embedding tables under one placement policy."""

    def __init__(self, system: System, policy: PlacementPolicy, *,
                 num_tables: int = 26, rows_per_table: int = 200_000,
                 embedding_dim: int = 64) -> None:
        if num_tables <= 0 or rows_per_table <= 0 or embedding_dim <= 0:
            raise WorkloadError("table geometry must be positive")
        self.system = system
        self.num_tables = num_tables
        self.rows_per_table = rows_per_table
        self.embedding_dim = embedding_dim
        self.row_bytes = embedding_dim * FLOAT_BYTES
        total = num_tables * rows_per_table * self.row_bytes
        self.allocation = system.allocator.allocate(total, policy)
        self._node_read_ns = {
            node.node_id: system.edge_ns()
            + system.backend_for_node(node.node_id).idle_read_ns()
            for node in system.topology.nodes}

    @property
    def total_bytes(self) -> int:
        return self.allocation.size_bytes

    @property
    def lines_per_lookup(self) -> int:
        """Cachelines gathered per embedding row."""
        return -(-self.row_bytes // CACHELINE)

    def node_fractions(self) -> dict[int, float]:
        """Where the table pages live (verifies the interleave ratio)."""
        return self.allocation.node_fractions()

    def average_lookup_latency_ns(self) -> float:
        """Expected gather latency for one row, weighted by placement.

        Rows land uniformly over the allocation, so the placement
        fractions are exactly the probability a lookup hits each node.
        """
        return sum(share * self._node_read_ns[node]
                   for node, share in self.node_fractions().items())

    def cxl_fraction(self) -> float:
        return sum(share for node, share in self.node_fractions().items()
                   if self.system.topology.node(node).kind.is_cxl)
