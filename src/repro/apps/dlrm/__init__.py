"""DLRM embedding reduction in the MERCI setup (§5.2)."""

from .embedding import EmbeddingTables
from .reduction import ReductionKernel
from .inference import DlrmInferenceStudy

__all__ = ["EmbeddingTables", "ReductionKernel", "DlrmInferenceStudy"]
