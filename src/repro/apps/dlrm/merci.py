"""MERCI-style sub-query memoization over the embedding reduction.

The paper's DLRM study uses "the same setup as MERCI [22]", whose core
idea is memoizing partial sums of frequently co-occurring lookup
clusters: a small, hot memoization table absorbs a fraction of the
gathers, trading a little fast memory for fewer slow ones.

On a CXL-resident table this compounds: every memoized hit replaces a
~390 ns CXL gather with a ~106 ns DRAM read *and* removes CXL random-
access traffic from the bandwidth bound — so memoization is worth more,
not less, when embeddings are offloaded.  That interaction is the
module's payoff, and the tests pin it down.
"""

from __future__ import annotations

from ...cpu.system import System
from ...errors import WorkloadError
from ...mem.dram import AccessPattern
from ...units import MIB, SEC
from .reduction import GATHER_MLP, ReductionKernel


class MerciMemoization:
    """A memoized view of a :class:`ReductionKernel`."""

    def __init__(self, kernel: ReductionKernel, *,
                 memo_hit_rate: float = 0.35,
                 memo_table_bytes: int = 256 * MIB) -> None:
        if not 0.0 <= memo_hit_rate < 1.0:
            raise WorkloadError(
                f"memo hit rate must be in [0, 1): {memo_hit_rate}")
        if memo_table_bytes <= 0:
            raise WorkloadError("memo table must have positive size")
        self.kernel = kernel
        self.system: System = kernel.system
        self.memo_hit_rate = memo_hit_rate
        self.memo_table_bytes = memo_table_bytes
        # The memoization table is small and hot: it lives in local DRAM
        # regardless of where the embedding tables sit (MERCI's design).
        self._memo_read_ns = (self.system.edge_ns()
                              + self.system.backend_for_node(
                                  self.system.LOCAL_NODE).idle_read_ns())

    # -- per-inference costs ---------------------------------------------------

    @property
    def table_lookups(self) -> float:
        """Gathers that still hit the embedding tables."""
        return self.kernel.lookups * (1.0 - self.memo_hit_rate)

    @property
    def memo_lookups(self) -> float:
        """Reads served by the memoization table."""
        return self.kernel.lookups * self.memo_hit_rate

    def service_ns_per_inference(self) -> float:
        """Single-thread inference time with memoization."""
        table_ns = (self.table_lookups / GATHER_MLP
                    * self.kernel.tables.average_lookup_latency_ns())
        memo_ns = self.memo_lookups / GATHER_MLP * self._memo_read_ns
        return self.kernel.dense_compute_ns + table_ns + memo_ns

    def bytes_per_inference_on_tables(self) -> float:
        """Embedding-table traffic after memoization."""
        return self.table_lookups * self.kernel.tables.lines_per_lookup \
            * 64

    # -- throughput --------------------------------------------------------

    def bandwidth_bound(self, threads: int) -> float:
        """Memory-bound inferences/s with the reduced table traffic."""
        if threads <= 0:
            raise WorkloadError(f"threads must be positive: {threads}")
        block = self.kernel.tables.row_bytes
        bound = float("inf")
        for node_id, share in self.kernel.tables.node_fractions().items():
            if share <= 0:
                continue
            backend = self.system.backend_for_node(node_id)
            bandwidth = backend.bus_ceiling(AccessPattern.RANDOM_BLOCK,
                                            block, streams=threads)
            bandwidth *= backend.concurrency_derate(readers=threads,
                                                    writers=0)
            bound = min(bound, bandwidth
                        / (share * self.bytes_per_inference_on_tables()))
        return bound

    def throughput(self, threads: int) -> float:
        """Aggregate inferences/s with memoization."""
        demand = threads * SEC / self.service_ns_per_inference()
        return min(demand, self.bandwidth_bound(threads))

    def speedup(self, threads: int) -> float:
        """Throughput gain over the unmemoized kernel."""
        return self.throughput(threads) / self.kernel.throughput(threads)
