"""The DLRM study harness (Figs 8 and 9).

Placements mirror the paper's five schemes: all-DRAM, all-CXL,
all-remote (DDR5-R1-like), and CXL interleaves at 3.23 % and 50 %.
Fig 9 adds the SNC variant: the memory system is limited to one SNC
cluster's two DDR5 channels while threads still scale to 32 ("By
running inference on one SNC node, we are effectively limiting the
inference to run on two DDR5 channels, making it memory bounded").
"""

from __future__ import annotations

from dataclasses import replace

from ...analysis.series import Series
from ...config import SystemConfig
from ...cpu.system import System
from ...errors import WorkloadError
from ...topology.interleave import (
    Interleaved,
    Membind,
    PlacementPolicy,
    WeightedInterleave,
)
from .embedding import EmbeddingTables
from .reduction import ReductionKernel

Placement = "str | float"


def r1_remote_config(config: SystemConfig) -> SystemConfig:
    """Remote socket restricted to one DDR5 channel (the paper's R1).

    Fig 8 compares against DDR5-R1, not the full remote socket — "the
    overall trend of DDR5-R1 and CXL memory is similar", which only
    holds with matched channel counts (§4.4).
    """
    if len(config.sockets) < 2:
        raise WorkloadError("no remote socket to restrict")
    remote = config.sockets[1]
    r1_socket = replace(remote, name=f"{remote.name}-r1",
                        dram=remote.dram.with_channels(1),
                        snc_clusters=1)
    return replace(config, sockets=(config.sockets[0], r1_socket)
                   + config.sockets[2:])


def snc_memory_config(config: SystemConfig) -> SystemConfig:
    """The Fig-9 memory system: one SNC cluster's channels, all cores.

    The paper pins *memory* to one SNC node; threads still spread over
    the whole package.  (LLC partitioning is ignored here — the tables
    dwarf any LLC slice.)
    """
    socket0 = config.sockets[0]
    channels = socket0.dram.channels // socket0.snc_clusters
    snc_socket = replace(socket0, name=f"{socket0.name}-sncmem",
                         dram=socket0.dram.with_channels(channels),
                         snc_clusters=1)
    return replace(config, sockets=(snc_socket,) + config.sockets[1:])


class DlrmInferenceStudy:
    """Builds kernels per placement and sweeps thread counts."""

    def __init__(self, config: SystemConfig, *,
                 num_tables: int = 26, rows_per_table: int = 200_000,
                 fault_plan=None) -> None:
        self.config = config
        self.num_tables = num_tables
        self.rows_per_table = rows_per_table
        # Degraded-mode twin: the plan derates every CXL backend the
        # kernels touch (expected fault latency + link-ceiling derate).
        self.fault_plan = fault_plan

    # -- kernel construction ----------------------------------------------

    def kernel(self, placement: str | float, *,
               snc: bool = False) -> ReductionKernel:
        """A reduction kernel with tables placed per ``placement``.

        ``placement`` is ``"local"``, ``"remote"``, ``"cxl"``, or a float
        CXL fraction in (0, 1).  A fresh system is built per kernel so
        repeated sweeps do not exhaust the allocator.
        """
        config = self.config
        if snc:
            config = snc_memory_config(config)
        if placement == "remote":
            config = r1_remote_config(config)
        system = System(config, fault_plan=self.fault_plan)
        policy = self._policy(system, placement)
        tables = EmbeddingTables(system, policy,
                                 num_tables=self.num_tables,
                                 rows_per_table=self.rows_per_table)
        return ReductionKernel(tables)

    @staticmethod
    def _policy(system: System, placement: str | float) -> PlacementPolicy:
        if placement == "local":
            return Membind(system.LOCAL_NODE)
        if placement == "remote":
            if not system.has_remote_socket:
                raise WorkloadError("no remote socket for this placement")
            return Membind(system.REMOTE_NODE)
        if placement == "cxl":
            return Membind(system.cxl_node_id)
        if placement == "cxl-pool":
            # Interleave over every pooled expander (pooled_cxl_testbed).
            nodes = tuple(node.node_id
                          for node in system.topology.cxl_nodes)
            return Interleaved(nodes)
        if isinstance(placement, float) and 0.0 < placement < 1.0:
            return WeightedInterleave.from_cxl_fraction(
                system.LOCAL_NODE, system.cxl_node_id, placement)
        raise WorkloadError(f"bad placement {placement!r}")

    # -- sweeps ----------------------------------------------------------

    def curve(self, placement: str | float, thread_counts: list[int], *,
              snc: bool = False, name: str | None = None) -> Series:
        """Throughput (inferences/s) versus thread count."""
        kernel = self.kernel(placement, snc=snc)
        label = name or self._label(placement, snc)
        series = Series(label, x_label="threads",
                        y_label="inferences/s")
        for threads in thread_counts:
            series.append(float(threads), kernel.throughput(threads))
        return series

    def normalized_at(self, placements: list[str | float],
                      threads: int = 32) -> dict[str, float]:
        """Fig 8 right: throughput at ``threads``, normalized to DRAM."""
        reference = self.kernel("local").throughput(threads)
        normalized = {}
        for placement in placements:
            kernel = self.kernel(placement)
            normalized[self._label(placement, False)] = \
                kernel.throughput(threads) / reference
        return normalized

    def snc_gain(self, cxl_fraction: float, threads: int = 32) -> float:
        """Fig 9's headline: relative gain of interleaving under SNC.

        "at 32 threads, putting 20% of memory on CXL increases the
        inference throughput by 11% compared to the SNC case."
        """
        baseline = self.kernel("local", snc=True).throughput(threads)
        mixed = self.kernel(cxl_fraction, snc=True).throughput(threads)
        return mixed / baseline - 1.0

    @staticmethod
    def _label(placement: str | float, snc: bool) -> str:
        if isinstance(placement, float):
            label = f"CXL-{placement * 100:.2f}%"
        else:
            label = {"local": "DDR5-L8", "remote": "DDR5-R1",
                     "cxl": "CXL", "cxl-pool": "CXL-pool"}[placement]
        return f"SNC-{label}" if snc else label
