"""Near-memory embedding reduction on a programmable CXL device.

§6's final guideline: "Explore the potential of inline acceleration with
programmable CXL memory devices ... even though such acceleration may
add extra latency to data access, such overhead will not be visible from
an end-to-end point of view" — and §4.2 notes the FPGA's merit "to
offload memory-intensive tasks in a near-memory fashion".

The model: the host ships an index list (8 B per lookup), the device
gathers rows against its *local* DDR4 with deep on-chip parallelism and
returns only the pooled vector.  Three effects fall out:

* link traffic per inference collapses from ``lookups x row`` to
  ``indices + pooled vector`` (~28x less for the MERCI-scale kernel);
* the host thread only does dense compute + submission, so its
  latency-bound rate rises;
* the binding resource becomes the device's internal DRAM bandwidth —
  without the CXL flit framing overhead the host-gather path pays.
"""

from __future__ import annotations

from ...cpu.system import System
from ...errors import WorkloadError
from ...mem.dram import AccessPattern
from ...units import SEC
from .reduction import ReductionKernel

INDEX_BYTES = 8
"""Bytes per lookup index shipped to the device."""

DEVICE_GATHER_MLP = 16.0
"""Concurrent gathers the on-device engine sustains (no core LSQ limits)."""

ACCEL_LATENCY_NS = 3_000.0
"""Extra per-inference latency of the inline accelerator pipeline."""

SUBMIT_NS = 2_000.0
"""Host-side cost to enqueue one inference and collect its result."""


class NearMemoryReduction:
    """Embedding reduction executed inside the CXL device."""

    def __init__(self, kernel: ReductionKernel) -> None:
        tables = kernel.tables
        if tables.cxl_fraction() < 1.0:
            raise WorkloadError(
                "inline acceleration requires the tables to be resident "
                "on the CXL device")
        self.kernel = kernel
        self.tables = tables
        self.system: System = tables.system

    # -- traffic -------------------------------------------------------------

    def link_bytes_per_inference(self) -> int:
        """Wire payload: index list down, pooled vector back."""
        return (self.kernel.lookups * INDEX_BYTES
                + self.tables.row_bytes)

    def host_gather_link_bytes(self) -> int:
        """What the host-gather path ships per inference."""
        return self.kernel.bytes_per_inference

    def link_traffic_reduction(self) -> float:
        """How many times less link traffic the offload needs."""
        return self.host_gather_link_bytes() / self.link_bytes_per_inference()

    # -- latency / throughput ----------------------------------------------------

    def device_time_ns(self) -> float:
        """On-device execution of one inference (gather + pool)."""
        dram = self.system.cxl_backend().controller.config
        gather_rounds = self.kernel.lookups / DEVICE_GATHER_MLP
        return ACCEL_LATENCY_NS + gather_rounds * dram.access_ns

    def host_service_ns(self) -> float:
        """Host-thread time per inference: dense compute + submission."""
        return self.kernel.dense_compute_ns + SUBMIT_NS

    def single_inference_latency_ns(self) -> float:
        """Unpipelined end-to-end latency (where the accel cost *is*
        visible)."""
        port = self.system.cxl_backend().port
        link = 2 * (port.phy.config.hop_latency_ns + port.pack_ns)
        return self.host_service_ns() + link + self.device_time_ns()

    def device_bound(self) -> float:
        """Max inferences/s the device's internal DRAM allows."""
        backend = self.system.cxl_backend()
        bandwidth = backend.controller.sustained_bandwidth(
            AccessPattern.RANDOM_BLOCK, self.tables.row_bytes, streams=4)
        return bandwidth / self.kernel.bytes_per_inference

    def throughput(self, threads: int) -> float:
        """Pipelined aggregate inferences/s at ``threads`` host threads."""
        if threads <= 0:
            raise WorkloadError(f"threads must be positive: {threads}")
        host_demand = threads * SEC / self.host_service_ns()
        return min(host_demand, self.device_bound())

    # -- comparison ----------------------------------------------------------

    def speedup_over_host_gather(self, threads: int) -> float:
        """Throughput ratio vs the host pulling rows over CXL.mem."""
        return self.throughput(threads) / self.kernel.throughput(threads)

    def accel_latency_hidden(self, threads: int) -> bool:
        """§6's claim: the accel's extra latency is invisible end-to-end
        once the pipeline is throughput-bound."""
        with_accel = self.throughput(threads)
        # A hypothetical zero-latency accelerator changes nothing unless
        # the device time is the per-thread bottleneck.
        return with_accel >= self.kernel.throughput(threads)
