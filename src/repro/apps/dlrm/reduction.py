"""The embedding-reduction kernel: latency-bound slope, bandwidth-bound cap.

Per-thread, one inference gathers ``lookups_per_inference`` rows with
modest memory-level parallelism (independent gathers overlap, but index
computation and pooling arithmetic serialize batches), then runs the
dense interaction/MLP compute.  Aggregate throughput is::

    min(threads / service_time,  device_random_bandwidth / bytes_moved)

which yields exactly the Fig 8/9 shapes: a linear region whose slope is
set by memory latency (CXL ~ DDR5-R1, both below DDR5-L8) and a plateau
set by channel count (SNC's two channels bind around 24 threads; eight
channels never bind through 32).
"""

from __future__ import annotations

from ...cpu.system import System
from ...errors import WorkloadError
from ...mem.dram import AccessPattern
from ...telemetry import NULL_TELEMETRY, Telemetry
from ...topology.numa import MemoryKind
from .embedding import EmbeddingTables

LOOKUPS_PER_INFERENCE = 256
"""Multi-hot lookups pooled per inference (MERCI-scale)."""

GATHER_MLP = 4.0
"""Concurrent outstanding gathers one thread sustains."""

DENSE_COMPUTE_NS = 50_000.0
"""Bottom/top MLP + feature interaction per inference, per thread."""


class ReductionKernel:
    """Throughput model for one table placement."""

    def __init__(self, tables: EmbeddingTables, *,
                 lookups_per_inference: int = LOOKUPS_PER_INFERENCE,
                 dense_compute_ns: float = DENSE_COMPUTE_NS,
                 telemetry: Telemetry | None = None) -> None:
        if lookups_per_inference <= 0:
            raise WorkloadError("lookups per inference must be positive")
        self.tables = tables
        self.system: System = tables.system
        self.lookups = lookups_per_inference
        self.dense_compute_ns = dense_compute_ns
        self.telemetry = telemetry if telemetry is not None \
            else NULL_TELEMETRY

    @property
    def bytes_per_inference(self) -> int:
        return self.lookups * self.tables.lines_per_lookup * 64

    def service_ns_per_inference(self) -> float:
        """Single-thread inference time (latency-bound regime)."""
        gather_rounds = self.lookups / GATHER_MLP
        return (self.dense_compute_ns
                + gather_rounds * self.tables.average_lookup_latency_ns())

    def per_thread_rate(self) -> float:
        """Inferences per second for one thread."""
        return 1e9 / self.service_ns_per_inference()

    def bandwidth_bound(self, threads: int) -> float:
        """Max inferences/s the memory devices allow.

        Each node serves its share of lookups; the binding node is the
        one whose random-access bandwidth divided by its traffic share
        is smallest.
        """
        if threads <= 0:
            raise WorkloadError(f"threads must be positive: {threads}")
        block = self.tables.row_bytes
        bound = float("inf")
        for node_id, share in self.tables.node_fractions().items():
            if share <= 0:
                continue
            backend = self.system.backend_for_node(node_id)
            node = self.system.topology.node(node_id)
            streams = threads if node.kind is MemoryKind.CXL else threads
            bandwidth = backend.bus_ceiling(AccessPattern.RANDOM_BLOCK,
                                            block, streams=streams)
            bandwidth *= backend.concurrency_derate(readers=streams,
                                                    writers=0)
            bound = min(bound, bandwidth / (share * self.bytes_per_inference))
        return bound

    def throughput(self, threads: int) -> float:
        """Aggregate inferences/s at ``threads`` threads (Fig 8 left)."""
        demand = threads * self.per_thread_rate()
        bound = self.bandwidth_bound(threads)
        registry = self.telemetry.registry
        registry.counter("apps.dlrm.throughput_queries").inc()
        registry.gauge("apps.dlrm.inferences_per_s").set(
            min(demand, bound))
        registry.gauge("apps.dlrm.bandwidth_bound").set(
            1.0 if bound < demand else 0.0)
        return min(demand, bound)

    def is_bandwidth_bound(self, threads: int) -> bool:
        """§6.1's classification test at a given thread count."""
        return self.bandwidth_bound(threads) < threads * self.per_thread_rate()
