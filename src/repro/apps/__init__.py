"""End-to-end application studies (§5).

* :mod:`repro.apps.kvstore` — a Redis-like in-memory KV store driven by
  YCSB (Figs 6 and 7);
* :mod:`repro.apps.dlrm` — DLRM embedding reduction in the MERCI setup
  (Figs 8 and 9);
* :mod:`repro.apps.dsb` — a DeathStarBench-style social-network
  microservice graph (Fig 10).
"""
