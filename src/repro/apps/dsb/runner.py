"""Open-loop DES driver for the social network (Fig 10's p99 curves)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...cpu.system import System
from ...errors import WorkloadError
from ...sim import Engine, LatencyRecorder
from ...sim.process import spawn
from ...sim.rng import substream
from ...telemetry import NULL_TELEMETRY, Telemetry

DSB_TRACK = "apps.dsb"
from .service import StageRuntime
from .socialnet import (
    MIXED_WORKLOAD,
    PARALLEL_GROUPS,
    RequestType,
    SocialNetwork,
)


@dataclass(frozen=True)
class DsbResult:
    """p99 (and mean) end-to-end latency of one (mix, node, QPS) run."""

    target_qps: float
    achieved_qps: float
    p99_ms: float
    mean_ms: float
    requests: int

    @property
    def saturated(self) -> bool:
        return self.achieved_qps < 0.95 * self.target_qps


class DsbRunner:
    """Simulates the service graph under Poisson load."""

    def __init__(self, system: System, *, database_node: int,
                 seed: int = 3,
                 telemetry: Telemetry | None = None) -> None:
        self.system = system
        self.network = SocialNetwork(system, database_node=database_node)
        self.seed = seed
        self.telemetry = telemetry if telemetry is not None \
            else NULL_TELEMETRY

    def run(self, qps: float, *,
            mix: dict[RequestType, float] | None = None,
            requests: int = 4000) -> DsbResult:
        """Drive ``requests`` arrivals at ``qps``; measure sojourn p99."""
        if qps <= 0:
            raise WorkloadError(f"QPS must be positive: {qps}")
        if requests <= 0:
            raise WorkloadError("requests must be positive")
        mix = mix or MIXED_WORKLOAD
        if abs(sum(mix.values()) - 1.0) > 1e-9:
            raise WorkloadError("request mix must sum to 1")

        engine = Engine(telemetry=self.telemetry)
        tracer = self.telemetry.tracer
        traced = tracer.enabled
        rng = substream(f"dsb-{self.seed}", self.seed)
        sojourn = LatencyRecorder("dsb")
        completed = [0]
        last_done = [0.0]
        types = list(mix.keys())
        shares = np.array([mix[t] for t in types])

        def stage_visits(stage: StageRuntime, visits: float):
            for _ in range(int(visits)):
                yield from self._visit(engine, stage, rng)
            fractional = visits - int(visits)
            if fractional > 0 and rng.random() < fractional:
                yield from self._visit(engine, stage, rng)

        def request_body(request: RequestType, arrival: float):
            group = PARALLEL_GROUPS[request]
            forked = []
            for stage, visits in self.network.recipe(request):
                if stage.stage.name in group:
                    forked.append((stage, visits))
                else:
                    yield from stage_visits(stage, visits)
            if forked:
                # Fork the concurrent legs, then join them all — the
                # compose-post pattern where media/text processing and
                # the database writes overlap.
                children = [spawn(engine, stage_visits(stage, visits),
                                  name=stage.stage.name)
                            for stage, visits in forked]
                for child in children:
                    yield child
            sojourn.record(engine.now - arrival)
            completed[0] += 1
            last_done[0] = engine.now
            if traced:
                tracer.complete(DSB_TRACK, request.value, arrival,
                                engine.now - arrival)

        gaps = rng.exponential(1e9 / qps, size=requests)
        arrival = 0.0
        for gap in gaps:
            arrival += float(gap)
            choice = types[int(rng.choice(len(types), p=shares))]
            engine.schedule_at(
                arrival,
                lambda r=choice, t=arrival: spawn(
                    engine, request_body(r, t), name=r.value))
        engine.run()

        if completed[0] == 0:
            raise WorkloadError("no requests completed")
        registry = self.telemetry.registry
        registry.counter("apps.dsb.requests").inc(completed[0])
        registry.gauge("apps.dsb.p99_sojourn_ns").set(sojourn.p99())
        elapsed_s = last_done[0] / 1e9
        return DsbResult(target_qps=qps,
                         achieved_qps=completed[0] / elapsed_s,
                         p99_ms=sojourn.p99() / 1e6,
                         mean_ms=sojourn.mean() / 1e6,
                         requests=completed[0])

    @staticmethod
    def _visit(engine: Engine, stage: StageRuntime, rng):
        """One stage visit as process commands (acquire/serve/release)."""
        from ...sim.process import Acquire, Release, Timeout
        yield Acquire(stage.server)
        yield Timeout(stage.sample_service_ns(rng))
        yield Release(stage.server)

    # -- convenience -----------------------------------------------------------

    def _init_kwargs(self) -> dict:
        """Constructor state minus telemetry — the picklable spec a
        worker process needs to rebuild an equivalent runner."""
        return {"system": self.system,
                "database_node": self.network.database_node,
                "seed": self.seed}

    def p99_curve(self, qps_points: list[float], *,
                  request_type: RequestType | None = None,
                  requests: int = 4000, jobs: int = 1):
        """p99 (ms) vs QPS for one request type (or the mixed workload).

        Points are independent runs, so ``jobs > 1`` shards them across
        worker processes; results and telemetry merge back in QPS order,
        identical to the serial loop.
        """
        from ...analysis.series import Series
        mix = (MIXED_WORKLOAD if request_type is None
               else {request_type: 1.0})
        label = request_type.value if request_type else "mixed"
        node = self.network.database_node
        kind = self.system.topology.node(node).kind.value
        series = Series(f"{label}@{kind}", x_label="QPS",
                        y_label="p99 (ms)")
        if jobs > 1 and len(qps_points) > 1:
            from ...parallel import (
                ParallelRunner,
                merge_all,
                telemetry_spec,
            )
            from ...parallel.sweeps import run_sim_point
            spec = telemetry_spec(self.telemetry)
            units = [(DsbRunner, self._init_kwargs(),
                      {"qps": qps, "mix": mix, "requests": requests},
                      spec)
                     for qps in qps_points]
            outputs = ParallelRunner(jobs).map(run_sim_point, units)
            merge_all(self.telemetry,
                      (export for _, export in outputs))
            for qps, (result, _) in zip(qps_points, outputs):
                series.append(qps, result.p99_ms)
        else:
            for qps in qps_points:
                series.append(qps, self.run(qps, mix=mix,
                                            requests=requests).p99_ms)
        return series
