"""Open-loop DES driver for the social network (Fig 10's p99 curves)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...cpu.system import System
from ...errors import WorkloadError
from ...sim import Engine, LatencyRecorder
from ...sim.process import Serve, spawn
from ...sim.rng import substream
from ...telemetry import NULL_TELEMETRY, Telemetry

DSB_TRACK = "apps.dsb"
from .service import StageRuntime
from .socialnet import (
    MIXED_WORKLOAD,
    PARALLEL_GROUPS,
    RequestType,
    SocialNetwork,
)


@dataclass(frozen=True)
class DsbResult:
    """p99 (and mean) end-to-end latency of one (mix, node, QPS) run."""

    target_qps: float
    achieved_qps: float
    p99_ms: float
    mean_ms: float
    requests: int

    @property
    def saturated(self) -> bool:
        return self.achieved_qps < 0.95 * self.target_qps


class DsbRunner:
    """Simulates the service graph under Poisson load."""

    def __init__(self, system: System, *, database_node: int,
                 seed: int = 3,
                 telemetry: Telemetry | None = None) -> None:
        self.system = system
        self.network = SocialNetwork(system, database_node=database_node)
        self.seed = seed
        self.telemetry = telemetry if telemetry is not None \
            else NULL_TELEMETRY

    def run(self, qps: float, *,
            mix: dict[RequestType, float] | None = None,
            requests: int = 4000) -> DsbResult:
        """Drive ``requests`` arrivals at ``qps``; measure sojourn p99."""
        if qps <= 0:
            raise WorkloadError(f"QPS must be positive: {qps}")
        if requests <= 0:
            raise WorkloadError("requests must be positive")
        mix = mix or MIXED_WORKLOAD
        if abs(sum(mix.values()) - 1.0) > 1e-9:
            raise WorkloadError("request mix must sum to 1")

        engine = Engine(telemetry=self.telemetry)
        tracer = self.telemetry.tracer
        traced = tracer.enabled
        rng = substream(f"dsb-{self.seed}", self.seed)
        sojourn = LatencyRecorder("dsb")
        completed = [0]
        last_done = [0.0]
        types = list(mix.keys())
        shares = np.array([mix[t] for t in types])

        # Per request type, flatten the recipe once into (fused Serve
        # command, whole visits, fractional visit) triples — Serve is
        # immutable and samples at grant time, so one instance per
        # stage serves every request of the run byte-identically to
        # the historical acquire/timeout/release triple per visit.
        plans: dict[RequestType, tuple[list, list]] = {}
        for request in types:
            group = PARALLEL_GROUPS[request]
            serial: list = []
            forked: list = []
            for stage, visits in self.network.recipe(request):
                item = (Serve(stage.server, stage.sample_service_ns, rng),
                        int(visits), visits - int(visits),
                        stage.stage.name)
                if stage.stage.name in group:
                    forked.append(item)
                else:
                    serial.append(item[:3])
            plans[request] = (serial, forked)

        def stage_visits(visit, whole: int, fractional: float):
            for _ in range(whole):
                yield visit
            if fractional > 0 and rng.random() < fractional:
                yield visit

        def request_body(request: RequestType, arrival: float):
            serial, forked = plans[request]
            for visit, whole, fractional in serial:
                for _ in range(whole):
                    yield visit
                if fractional > 0 and rng.random() < fractional:
                    yield visit
            if forked:
                # Fork the concurrent legs, then join them all — the
                # compose-post pattern where media/text processing and
                # the database writes overlap.
                children = [spawn(engine,
                                  stage_visits(visit, whole, fractional),
                                  name=name, immediate=True)
                            for visit, whole, fractional, name in forked]
                for child in children:
                    yield child
            sojourn.record(engine.now - arrival)
            completed[0] += 1
            last_done[0] = engine.now
            if traced:
                tracer.complete(DSB_TRACK, request.value, arrival,
                                engine.now - arrival)

        def start_request(request: RequestType, arrival_time: float):
            spawn(engine, request_body(request, arrival_time),
                  name=request.value, immediate=True)

        gaps = rng.exponential(1e9 / qps, size=requests)
        # One batched draw consumes the exact word stream of the
        # historical per-request rng.choice calls.
        choices = rng.choice(len(types), size=requests, p=shares)
        arrival = 0.0
        for index in range(requests):
            arrival += float(gaps[index])
            engine.schedule_at(arrival, start_request,
                               types[int(choices[index])], arrival)
        engine.run()

        if completed[0] == 0:
            raise WorkloadError("no requests completed")
        registry = self.telemetry.registry
        registry.counter("apps.dsb.requests").inc(completed[0])
        registry.gauge("apps.dsb.p99_sojourn_ns").set(sojourn.p99())
        elapsed_s = last_done[0] / 1e9
        return DsbResult(target_qps=qps,
                         achieved_qps=completed[0] / elapsed_s,
                         p99_ms=sojourn.p99() / 1e6,
                         mean_ms=sojourn.mean() / 1e6,
                         requests=completed[0])

    @staticmethod
    def _visit(engine: Engine, stage: StageRuntime, rng):
        """One stage visit as a process command (fused acquire/serve/release)."""
        yield Serve(stage.server, stage.sample_service_ns, rng)

    # -- convenience -----------------------------------------------------------

    def _init_kwargs(self) -> dict:
        """Constructor state minus telemetry — the picklable spec a
        worker process needs to rebuild an equivalent runner."""
        return {"system": self.system,
                "database_node": self.network.database_node,
                "seed": self.seed}

    def p99_curve(self, qps_points: list[float], *,
                  request_type: RequestType | None = None,
                  requests: int = 4000, jobs: int = 1):
        """p99 (ms) vs QPS for one request type (or the mixed workload).

        Points are independent runs, so ``jobs > 1`` shards them across
        worker processes; results and telemetry merge back in QPS order,
        identical to the serial loop.
        """
        from ...analysis.series import Series
        mix = (MIXED_WORKLOAD if request_type is None
               else {request_type: 1.0})
        label = request_type.value if request_type else "mixed"
        node = self.network.database_node
        kind = self.system.topology.node(node).kind.value
        series = Series(f"{label}@{kind}", x_label="QPS",
                        y_label="p99 (ms)")
        if jobs > 1 and len(qps_points) > 1:
            from ...parallel import (
                ParallelRunner,
                merge_all,
                telemetry_spec,
            )
            from ...parallel.sweeps import run_sim_point
            spec = telemetry_spec(self.telemetry)
            units = [(DsbRunner, self._init_kwargs(),
                      {"qps": qps, "mix": mix, "requests": requests},
                      spec)
                     for qps in qps_points]
            outputs = ParallelRunner(jobs).map(run_sim_point, units)
            merge_all(self.telemetry,
                      (export for _, export in outputs))
            for qps, (result, _) in zip(qps_points, outputs):
                series.append(qps, result.p99_ms)
        else:
            for qps in qps_points:
                series.append(qps, self.run(qps, mix=mix,
                                            requests=requests).p99_ms)
        return series


def p99_curves(combos: list[tuple["DsbRunner", RequestType | None]],
               qps_points: list[float], *, requests: int = 4000,
               jobs: int = 1):
    """Every Fig-10 curve in one flat (combo × QPS) sweep.

    ``combos`` pairs a runner (DRAM- or CXL-backed database) with a
    request type (``None`` = the mixed workload).  With ``jobs > 1``
    each *(combo, qps)* point is its own worker unit — the whole
    figure shards at once instead of curve-at-a-time, so workers stay
    busy across panel boundaries.  Results reassemble combo-major,
    QPS-minor; telemetry merges into the first runner's session in
    unit order.  Byte-identical to the serial loop either way.
    """
    from ...analysis.series import Series
    if jobs > 1 and len(combos) * len(qps_points) > 1:
        from ...parallel import ParallelRunner, merge_all, telemetry_spec
        from ...parallel.sweeps import run_sim_point
        spec = telemetry_spec(combos[0][0].telemetry)
        units = []
        names = []
        for runner, request_type in combos:
            mix = (MIXED_WORKLOAD if request_type is None
                   else {request_type: 1.0})
            label = request_type.value if request_type else "mixed"
            node = runner.network.database_node
            kind = runner.system.topology.node(node).kind.value
            for qps in qps_points:
                units.append((DsbRunner, runner._init_kwargs(),
                              {"qps": qps, "mix": mix,
                               "requests": requests}, spec))
                names.append(f"fig10[{label}@{kind},qps={qps:g}]")
        outputs = ParallelRunner(jobs, names=names).map(
            run_sim_point, units)
        merge_all(combos[0][0].telemetry,
                  (export for _, export in outputs))
        curves = []
        for index, (runner, request_type) in enumerate(combos):
            label = request_type.value if request_type else "mixed"
            node = runner.network.database_node
            kind = runner.system.topology.node(node).kind.value
            series = Series(f"{label}@{kind}", x_label="QPS",
                            y_label="p99 (ms)")
            offset = index * len(qps_points)
            for qps, (result, _) in zip(
                    qps_points, outputs[offset:offset + len(qps_points)]):
                series.append(qps, result.p99_ms)
            curves.append(series)
        return curves
    return [runner.p99_curve(qps_points, request_type=request_type,
                             requests=requests)
            for runner, request_type in combos]
