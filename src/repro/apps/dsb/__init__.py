"""A DeathStarBench-style social-network microservice graph (§5.3)."""

from .service import ServiceStage, StageRuntime
from .socialnet import RequestType, SocialNetwork, memory_breakdown
from .runner import DsbRunner, DsbResult

__all__ = [
    "ServiceStage",
    "StageRuntime",
    "RequestType",
    "SocialNetwork",
    "memory_breakdown",
    "DsbRunner",
    "DsbResult",
]
