"""Microservice stages: worker pools with memory-dependent service times.

Each component (nginx, application logic, memcached-style cache,
mongodb-style storage) is a worker pool.  A visit's service time is CPU
work plus memory stalls — ``mem_lines`` effective dependent misses paying
the read path of whichever NUMA node the component's working set is
pinned to.  Pinning the *databases* (cache + storage) to CXL while
compute stays on DRAM is exactly the paper's §5.3 experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...cpu.system import System
from ...errors import WorkloadError
from ...sim import Server


@dataclass(frozen=True)
class ServiceStage:
    """Static description of one microservice component."""

    name: str
    workers: int
    cpu_ns: float               # mean CPU time per visit
    mem_lines: float            # effective dependent misses per visit
    resident_bytes: int         # working-set size (Fig 10 right)
    cpu_sigma: float = 0.25     # log-normal CPU jitter
    pinnable: bool = False      # True for the high-WSS database stages

    def __post_init__(self) -> None:
        if self.workers <= 0:
            raise WorkloadError(f"{self.name}: workers must be positive")
        if self.cpu_ns < 0 or self.mem_lines < 0 or self.resident_bytes < 0:
            raise WorkloadError(f"{self.name}: negative parameters")


class StageRuntime:
    """A stage bound to a NUMA node, with a DES worker pool."""

    def __init__(self, stage: ServiceStage, system: System,
                 node_id: int) -> None:
        if node_id not in system.topology:
            raise WorkloadError(f"unknown node {node_id}")
        if (system.topology.node(node_id).kind.is_cxl
                and not stage.pinnable):
            raise WorkloadError(
                f"{stage.name} is computation-intensive and stays on DRAM "
                "(§5.3 pins only the storage and caching components)")
        self.stage = stage
        self.node_id = node_id
        self.server = Server(stage.workers, name=stage.name)
        backend = system.backend_for_node(node_id)
        self._miss_ns = system.edge_ns() + backend.idle_read_ns()

    @property
    def mean_service_ns(self) -> float:
        """Expected visit time (capacity planning / saturation math)."""
        return self.stage.cpu_ns + self.stage.mem_lines * self._miss_ns

    def sample_service_ns(self, rng: np.random.Generator) -> float:
        """One visit's service time with CPU jitter."""
        cpu = self.stage.cpu_ns * rng.lognormal(0.0, self.stage.cpu_sigma)
        return cpu + self.stage.mem_lines * self._miss_ns
