"""The social-network application: components, request recipes, breakdown.

§5.3: "we pinned the components with high working set size (i.e., the
storage and caching applications) to either DDR5-L8 or CXL memory.  We
left the computation-intensive parts to run purely on DDR5-L8."

Request recipes encode the trace analysis the paper reports: composing
a post "involve[s] more database operations, which puts a heavier load
on the CXL memory", while "most of the response time in reading user
timeline is spent on the nginx front end".  Reading home timeline "does
not operate on the databases" and is served from the cache.
"""

from __future__ import annotations

import enum

from ...cpu.system import System
from ...errors import WorkloadError
from ...units import GIB, MS, US
from .service import ServiceStage, StageRuntime

COMPONENTS: dict[str, ServiceStage] = {
    "nginx": ServiceStage("nginx", workers=8, cpu_ns=0.55 * MS,
                          mem_lines=40, resident_bytes=1 * GIB),
    "logic": ServiceStage("logic", workers=8, cpu_ns=0.35 * MS,
                          mem_lines=60, resident_bytes=2 * GIB),
    "ml-infer": ServiceStage("ml-infer", workers=4, cpu_ns=0.30 * MS,
                             mem_lines=120, resident_bytes=1 * GIB),
    "cache": ServiceStage("cache", workers=6, cpu_ns=40 * US,
                          mem_lines=150, resident_bytes=6 * GIB,
                          pinnable=True),
    "storage": ServiceStage("storage", workers=4, cpu_ns=150 * US,
                            mem_lines=500, resident_bytes=9 * GIB,
                            pinnable=True),
}


class RequestType(enum.Enum):
    """The DSB social-network request types of Fig 10."""

    COMPOSE_POST = "compose-post"
    READ_USER_TIMELINE = "read-user-timeline"
    READ_HOME_TIMELINE = "read-home-timeline"


# Stage visit sequences per request type.  (stage, visits); fractional
# visits model probabilistic paths (a cache miss escalating to storage).
# DSB's compose-post additionally *fans out*: after the frontend, the
# text/media/user services and their database writes proceed in
# parallel and join before the reply — PARALLEL_GROUPS below names the
# stages whose visits overlap, which the DES runner exploits.
RECIPES: dict[RequestType, list[tuple[str, float]]] = {
    RequestType.COMPOSE_POST: [
        ("nginx", 1.0), ("logic", 2.0), ("ml-infer", 1.0),
        ("cache", 2.0), ("storage", 3.0),
    ],
    RequestType.READ_USER_TIMELINE: [
        ("nginx", 1.5),             # the frontend dominates this path
        ("logic", 1.0), ("cache", 1.0), ("storage", 0.2),
    ],
    RequestType.READ_HOME_TIMELINE: [
        ("nginx", 1.0), ("logic", 1.0), ("cache", 1.0),
        # no storage visits: home timeline does not touch the databases
    ],
}

# Stages whose visits run concurrently (fork/join) per request type.
# Compose-post's ML inference overlaps the database writes, as in DSB's
# service graph; read paths are sequential chains.
PARALLEL_GROUPS: dict[RequestType, frozenset[str]] = {
    RequestType.COMPOSE_POST: frozenset({"ml-infer", "cache", "storage"}),
    RequestType.READ_USER_TIMELINE: frozenset(),
    RequestType.READ_HOME_TIMELINE: frozenset(),
}

MIXED_WORKLOAD: dict[RequestType, float] = {
    RequestType.READ_HOME_TIMELINE: 0.60,
    RequestType.READ_USER_TIMELINE: 0.30,
    RequestType.COMPOSE_POST: 0.10,
}
"""Fig 10: "60% read-home-timeline, 30% read-user-timeline, and 10%
composing-post"."""


class SocialNetwork:
    """Component runtimes with databases pinned to a chosen node."""

    def __init__(self, system: System, *, database_node: int) -> None:
        self.system = system
        self.database_node = database_node
        self.stages: dict[str, StageRuntime] = {}
        for name, stage in COMPONENTS.items():
            node = database_node if stage.pinnable else system.LOCAL_NODE
            self.stages[name] = StageRuntime(stage, system, node)

    def recipe(self, request: RequestType) -> list[tuple[StageRuntime, float]]:
        return [(self.stages[name], visits)
                for name, visits in RECIPES[request]]

    def mean_latency_ns(self, request: RequestType) -> float:
        """Zero-load *work* per request (sum over all visits).

        This is the serialized total; see :meth:`zero_load_latency_ns`
        for the critical-path latency with the fork/join overlap.
        """
        return sum(stage.mean_service_ns * visits
                   for stage, visits in self.recipe(request))

    def zero_load_latency_ns(self, request: RequestType) -> float:
        """Critical-path latency: sequential stages + max parallel leg."""
        group = PARALLEL_GROUPS[request]
        sequential = 0.0
        legs = []
        for stage, visits in self.recipe(request):
            work = stage.mean_service_ns * visits
            if stage.stage.name in group:
                legs.append(work)
            else:
                sequential += work
        return sequential + (max(legs) if legs else 0.0)

    def database_load_ns(self, request: RequestType) -> float:
        """Time spent in pinnable (database) stages per request."""
        return sum(stage.mean_service_ns * visits
                   for stage, visits in self.recipe(request)
                   if stage.stage.pinnable)

    def saturation_qps(self, mix: dict[RequestType, float]) -> float:
        """Bottleneck-stage capacity under a request mix."""
        total = sum(mix.values())
        if abs(total - 1.0) > 1e-9:
            raise WorkloadError(f"mix sums to {total}, not 1")
        worst = float("inf")
        for name, runtime in self.stages.items():
            demand_ns = sum(
                share * visits * runtime.mean_service_ns
                for request, share in mix.items()
                for stage_name, visits in RECIPES[request]
                if stage_name == name)
            if demand_ns > 0:
                worst = min(worst, runtime.stage.workers / (demand_ns / 1e9))
        return worst


def memory_breakdown() -> dict[str, float]:
    """Fig 10 (right): resident memory share by functionality."""
    total = sum(stage.resident_bytes for stage in COMPONENTS.values())
    return {name: stage.resident_bytes / total
            for name, stage in COMPONENTS.items()}
