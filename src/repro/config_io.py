"""Testbed configuration serialization (JSON).

Lets users describe their own machines — different channel counts, an
ASIC-latency CXL device, more expanders — in version-controllable files
instead of Python, and round-trips the built-in presets exactly.

Format: a plain JSON object mirroring the dataclass tree.  Unknown keys
are rejected (typos should fail loudly, not silently default).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any

from .config import (
    CacheConfig,
    CacheLevelConfig,
    CoreConfig,
    CxlDeviceConfig,
    DramConfig,
    LinkConfig,
    SocketConfig,
    SystemConfig,
)
from .errors import ConfigError


def _to_dict(value: Any) -> Any:
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {field.name: _to_dict(getattr(value, field.name))
                for field in dataclasses.fields(value)}
    if isinstance(value, tuple):
        return [_to_dict(item) for item in value]
    return value


def system_to_dict(config: SystemConfig) -> dict:
    """A JSON-ready dict for a whole testbed."""
    return _to_dict(config)


def _build(cls, data: dict | None, context: str):
    if data is None:
        return None
    if not isinstance(data, dict):
        raise ConfigError(f"{context}: expected an object, got "
                          f"{type(data).__name__}")
    field_names = {field.name for field in dataclasses.fields(cls)}
    unknown = set(data) - field_names
    if unknown:
        raise ConfigError(
            f"{context}: unknown keys {sorted(unknown)}; "
            f"valid keys: {sorted(field_names)}")
    return data


def system_from_dict(data: dict) -> SystemConfig:
    """Rebuild a :class:`SystemConfig` from its dict form."""
    payload = dict(_build(SystemConfig, data, "system"))
    sockets = tuple(_socket_from(entry, f"sockets[{i}]")
                    for i, entry in enumerate(payload.pop("sockets", [])))
    upi_data = payload.pop("upi", None)
    upi = LinkConfig(**_build(LinkConfig, upi_data, "upi")) \
        if upi_data else None
    devices = tuple(_cxl_from(entry, f"cxl_devices[{i}]")
                    for i, entry in enumerate(
                        payload.pop("cxl_devices", [])))
    return SystemConfig(sockets=sockets, upi=upi, cxl_devices=devices,
                        **payload)


def _socket_from(data: dict, context: str) -> SocketConfig:
    payload = dict(_build(SocketConfig, data, context))
    payload["core"] = CoreConfig(
        **_build(CoreConfig, payload["core"], f"{context}.core"))
    cache = _build(CacheConfig, payload["cache"], f"{context}.cache")
    payload["cache"] = CacheConfig(
        l1=CacheLevelConfig(**_build(CacheLevelConfig, cache["l1"],
                                     f"{context}.cache.l1")),
        l2=CacheLevelConfig(**_build(CacheLevelConfig, cache["l2"],
                                     f"{context}.cache.l2")),
        llc=CacheLevelConfig(**_build(CacheLevelConfig, cache["llc"],
                                      f"{context}.cache.llc")))
    payload["dram"] = DramConfig(
        **_build(DramConfig, payload["dram"], f"{context}.dram"))
    return SocketConfig(**payload)


def _cxl_from(data: dict, context: str) -> CxlDeviceConfig:
    payload = dict(_build(CxlDeviceConfig, data, context))
    payload["dram"] = DramConfig(
        **_build(DramConfig, payload["dram"], f"{context}.dram"))
    payload["link"] = LinkConfig(
        **_build(LinkConfig, payload["link"], f"{context}.link"))
    return CxlDeviceConfig(**payload)


def save_system(config: SystemConfig, path: str | Path) -> None:
    """Write a testbed to a JSON file."""
    Path(path).write_text(json.dumps(system_to_dict(config), indent=2)
                          + "\n")


def load_system(path: str | Path) -> SystemConfig:
    """Read a testbed from a JSON file."""
    target = Path(path)
    if not target.exists():
        raise ConfigError(f"no such config file: {target}")
    try:
        data = json.loads(target.read_text())
    except json.JSONDecodeError as error:
        raise ConfigError(f"{target}: invalid JSON ({error})") from error
    return system_from_dict(data)
