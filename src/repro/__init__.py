"""repro — a simulation-based reproduction of *Demystifying CXL Memory with
Genuine CXL-Ready Systems and Devices* (MICRO 2023).

The package models the paper's two Sapphire-Rapids testbeds and the
Agilex-I CXL 1.1 Type-3 memory device in enough architectural detail to
reproduce the *shape* of every figure in the paper:

* :mod:`repro.config` — the Table-1 testbeds and all calibrated constants.
* :mod:`repro.memo` — MEMO, the paper's microbenchmark (Figs 2–5).
* :mod:`repro.apps` — Redis-YCSB, DLRM embedding reduction, and
  DeathStarBench application studies (Figs 6–10).
* :mod:`repro.experiments` — one module per paper table/figure, plus a
  registry and ``repro-experiments`` CLI.
* :mod:`repro.analysis` — result series/tables and the §6 best-practice
  guideline advisor.

Quickstart::

    from repro import single_socket_testbed, build_system
    from repro.memo import LatencyBench

    system = build_system(single_socket_testbed())
    print(LatencyBench(system).run().render())
"""

from .config import (
    combined_testbed,
    dual_socket_testbed,
    single_socket_testbed,
    SystemConfig,
)
from .errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "SystemConfig",
    "single_socket_testbed",
    "dual_socket_testbed",
    "combined_testbed",
    "build_system",
]


def build_system(config: SystemConfig, *, fault_plan=None):
    """Construct a runnable :class:`repro.cpu.system.System` from a config.

    Defined here (lazily) so ``import repro`` stays cheap and avoids
    circular imports between ``config`` and the model packages.
    ``fault_plan`` builds the degraded-mode twin: every CXL backend's
    analytic model is derated per the plan (docs/FAULTS.md).
    """
    from .cpu.system import System

    return System(config, fault_plan=fault_plan)
