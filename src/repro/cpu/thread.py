"""Software threads pinned to cores (MEMO pins every test thread, §4.1)."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from .core import Core


@dataclass(frozen=True)
class PinnedThread:
    """One benchmark thread bound to a physical core."""

    thread_id: int
    core: Core
    prefetch_enabled: bool = True

    def __post_init__(self) -> None:
        if self.thread_id < 0:
            raise ConfigError(f"negative thread id: {self.thread_id}")


def pin_threads(count: int, cores: list[Core], *,
                prefetch_enabled: bool = True) -> list[PinnedThread]:
    """Pin ``count`` threads one-per-core, in core order.

    MEMO's convention: one thread per physical core, no SMT sharing —
    oversubscription would muddy the MLP story, so it is rejected.
    """
    if count <= 0:
        raise ConfigError(f"thread count must be positive: {count}")
    if count > len(cores):
        raise ConfigError(
            f"cannot pin {count} threads on {len(cores)} cores "
            "(one thread per physical core)")
    return [PinnedThread(i, cores[i], prefetch_enabled=prefetch_enabled)
            for i in range(count)]
