"""One CPU package at runtime: cores, a cache hierarchy, local memory."""

from __future__ import annotations

from ..cache.hierarchy import CacheHierarchy
from ..config import SocketConfig
from ..interconnect.mesh import Mesh
from ..mem.controller import MemoryController
from ..mem.device import MemoryBackend
from .core import Core


class Socket:
    """Runtime view of a :class:`~repro.config.SocketConfig`."""

    def __init__(self, config: SocketConfig, *, snc: bool = False) -> None:
        if snc:
            config = config.snc_node()
        self.config = config
        self.snc = snc
        self.cores = [Core(config.core, core_id=i)
                      for i in range(config.cores)]
        self.mesh = Mesh(config.mesh_ns, snc=snc)
        self.local_controller = MemoryController(config.dram)

    @property
    def name(self) -> str:
        return self.config.name

    def new_hierarchy(self, *, telemetry=None) -> CacheHierarchy:
        """A fresh (cold) cache hierarchy for a functional experiment."""
        return CacheHierarchy(self.config.cache, telemetry=telemetry)

    def hierarchy_traversal_ns(self) -> float:
        """Core to LLC-miss detection: the on-chip part of every miss."""
        return sum(level.latency_ns for level in self.config.cache.levels)

    def socket_edge_ns(self) -> float:
        """Core to the socket boundary: caches + mesh + home agent.

        This is the host-side latency prefix shared by all three memory
        schemes; the schemes differ only in what lies beyond the edge.
        """
        return (self.hierarchy_traversal_ns()
                + self.mesh.traverse_ns()
                + self.config.home_agent_ns)

    def local_backend(self) -> MemoryBackend:
        """The DDR5-L8 backend (or the 2-channel SNC slice)."""
        label = "SNC-DDR5-L2" if self.snc else "DDR5-L8"
        return MemoryBackend(label=label, controller=self.local_controller)
