"""The whole machine: sockets + NUMA topology + memory backends.

:class:`System` is the root object of the library.  It exposes the
paper's three memory schemes uniformly:

* ``MemoryScheme.DDR5_L8`` — all eight local DDR5 channels;
* ``MemoryScheme.DDR5_R1`` — remote-socket DDR5 restricted to one
  channel ("to facilitate a fair comparison of memory channel count",
  §4.3);
* ``MemoryScheme.CXL`` — the Agilex-I Type-3 device.

plus a page allocator over the OS-visible NUMA nodes so applications can
place memory with the §5 policies.
"""

from __future__ import annotations

import enum

from ..config import SystemConfig
from ..cxl.device import CxlMemoryBackend, build_cxl_backend
from ..cxl.enumeration import (
    dvsec_for,
    enumerate_devices,
    map_devices,
    numa_nodes_for,
)
from ..errors import ConfigError
from ..interconnect.upi import UpiLink
from ..mem.controller import MemoryController
from ..mem.device import MemoryBackend
from ..topology.allocator import PageAllocator
from ..topology.numa import MemoryKind, NumaNode, NumaTopology
from .socket import Socket


class MemoryScheme(enum.Enum):
    """The three memory schemes compared throughout the paper."""

    DDR5_L8 = "DDR5-L8"
    DDR5_R1 = "DDR5-R1"
    CXL = "CXL"

    @property
    def label(self) -> str:
        return self.value


class System:
    """Runtime machine model assembled from a :class:`SystemConfig`."""

    LOCAL_NODE = 0
    REMOTE_NODE = 1

    def __init__(self, config: SystemConfig, *, snc: bool = False,
                 fault_plan=None) -> None:
        self.config = config
        self.snc = snc
        self.fault_plan = fault_plan
        self.sockets = [Socket(config.sockets[0], snc=snc)]
        self.sockets += [Socket(s) for s in config.sockets[1:]]
        self.upi = UpiLink(config.upi) if config.upi is not None else None

        nodes = [NumaNode(self.LOCAL_NODE, MemoryKind.DRAM_LOCAL,
                          self.sockets[0].config.dram.capacity_bytes,
                          cpus=self.sockets[0].config.cores,
                          label="DDR5-L8")]
        if len(self.sockets) > 1:
            nodes.append(NumaNode(self.REMOTE_NODE, MemoryKind.DRAM_REMOTE,
                                  self.sockets[1].config.dram.capacity_bytes,
                                  cpus=self.sockets[1].config.cores,
                                  label="DDR5-R"))
        # CXL devices go through the enumeration flow (CXL.io DVSEC
        # validation -> HDM decoder programming -> CPU-less NUMA nodes),
        # exactly the boot path §2.1/§3 describe.
        self._cxl_node_id = len(nodes)
        dvsecs = [dvsec_for(device, serial=f"agilex-{index}")
                  for index, device in enumerate(config.cxl_devices)]
        discovered = enumerate_devices(dvsecs)
        dram_top = sum(node.capacity_bytes for node in nodes)
        self.hdm, mapped = map_devices(discovered, hpa_base=dram_top)
        nodes += numa_nodes_for(mapped, first_node_id=self._cxl_node_id)
        # An active fault plan degrades every device's analytic model —
        # expected stall/retry latency joins the protocol path and CRC
        # retransmissions plus retrained-link fractions derate the link
        # ceiling (docs/FAULTS.md).
        self._cxl_backends: list[CxlMemoryBackend] = [
            build_cxl_backend(device, fault_plan=fault_plan)
            for device in config.cxl_devices]
        self.topology = NumaTopology(nodes=nodes)
        self.allocator = PageAllocator(self.topology)

    # -- structure --------------------------------------------------------

    @property
    def socket(self) -> Socket:
        """The socket running the benchmark threads."""
        return self.sockets[0]

    @property
    def has_remote_socket(self) -> bool:
        return len(self.sockets) > 1

    @property
    def has_cxl(self) -> bool:
        return bool(self._cxl_backends)

    @property
    def cxl_node_id(self) -> int:
        if not self.has_cxl:
            raise ConfigError(f"system {self.config.name!r} has no CXL node")
        return self._cxl_node_id

    def snc_system(self) -> "System":
        """This system with socket 0 in SNC mode (one cluster, Fig. 9)."""
        return System(self.config, snc=True, fault_plan=self.fault_plan)

    # -- host-side latency components --------------------------------------

    def edge_ns(self) -> float:
        """Core to socket edge (caches + mesh + home agent)."""
        return self.socket.socket_edge_ns()

    def flushed_line_penalty_ns(self) -> float:
        """Extra coherence cost of touching an explicitly flushed line."""
        return self.config.flushed_line_penalty_ns

    # -- backends -----------------------------------------------------------

    def backend_for_node(self, node_id: int) -> MemoryBackend:
        """The device-side backend behind a NUMA node."""
        node = self.topology.node(node_id)
        if node.kind is MemoryKind.DRAM_LOCAL:
            return self.socket.local_backend()
        if node.kind is MemoryKind.DRAM_REMOTE:
            return self._remote_backend(channels=None)
        return self._cxl_backends[node_id - self._cxl_node_id]

    def scheme_backend(self, scheme: MemoryScheme) -> MemoryBackend:
        """The backend for one of the paper's three schemes."""
        if scheme is MemoryScheme.DDR5_L8:
            return self.socket.local_backend()
        if scheme is MemoryScheme.DDR5_R1:
            return self._remote_backend(channels=1)
        return self.cxl_backend()

    def scheme_node(self, scheme: MemoryScheme) -> int:
        """The NUMA node where a scheme's memory lives."""
        if scheme is MemoryScheme.DDR5_L8:
            return self.LOCAL_NODE
        if scheme is MemoryScheme.DDR5_R1:
            if not self.has_remote_socket:
                raise ConfigError("no remote socket in this system")
            return self.REMOTE_NODE
        return self.cxl_node_id

    def cxl_backend(self) -> CxlMemoryBackend:
        if not self.has_cxl:
            raise ConfigError(f"system {self.config.name!r} has no CXL device")
        return self._cxl_backends[0]

    def _remote_backend(self, channels: int | None) -> MemoryBackend:
        if not self.has_remote_socket or self.upi is None:
            raise ConfigError("system has no remote socket / UPI link")
        dram = self.sockets[1].config.dram
        if channels is not None:
            dram = dram.with_channels(channels)
        label = f"DDR5-R{channels}" if channels is not None else "DDR5-R8"
        round_trip = self.upi.cacheline_round_trip_ns()
        return MemoryBackend(label=label,
                             controller=MemoryController(dram),
                             extra_read_ns=round_trip,
                             extra_write_ns=round_trip,
                             link_bandwidth=self.upi.effective_bandwidth())

    def available_schemes(self) -> list[MemoryScheme]:
        """Schemes this testbed can measure."""
        schemes = [MemoryScheme.DDR5_L8]
        if self.has_remote_socket:
            schemes.append(MemoryScheme.DDR5_R1)
        if self.has_cxl:
            schemes.append(MemoryScheme.CXL)
        return schemes
