"""CPU-side models: instruction kinds, cores, sockets, and whole systems.

The centerpiece is :class:`~repro.cpu.system.System`, which assembles a
:class:`~repro.config.SystemConfig` into runtime objects: a NUMA
topology, a page allocator, and one memory backend per node.  Everything
above this layer (MEMO, the perfmodel, the applications) addresses memory
through a ``System``.
"""

from .isa import AccessKind, FENCE_NS
from .core import Core
from .thread import PinnedThread, pin_threads
from .socket import Socket
from .system import MemoryScheme, System

__all__ = [
    "AccessKind",
    "FENCE_NS",
    "Core",
    "PinnedThread",
    "pin_threads",
    "Socket",
    "System",
    "MemoryScheme",
]
