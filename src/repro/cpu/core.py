"""The core model: how many 64 B lines one thread keeps in flight.

Every bandwidth curve in the paper is a story about per-thread
memory-level parallelism (MLP) meeting a device ceiling.  The calibrated
values here, together with unloaded latencies, set the *slopes* of
Figs 3 and 5; the ceilings set the plateaus.
"""

from __future__ import annotations

from ..config import CoreConfig
from ..mem.dram import AccessPattern
from .isa import AccessKind

WRITE_ACCEPTANCE_NS = 70.0
"""Effective service time of one posted (non-temporal) 64 B write.

Posted writes complete, from the core's perspective, when the uncore
accepts them — not when the device finishes.  ~70 ns reproduces both
calibration anchors: DDR5-L8 nt-store saturating 170 GB/s at ~16 threads
and CXL nt-store reaching ~22 GB/s with just 2 threads (Fig. 3).
"""


class Core:
    """One physical core executing AVX-512 memory kernels."""

    def __init__(self, config: CoreConfig, core_id: int = 0) -> None:
        self.config = config
        self.core_id = core_id

    def effective_mlp(self, kind: AccessKind,
                      pattern: AccessPattern) -> float:
        """Sustained in-flight 64 B lines for one thread.

        * Dependent chains (pointer chase) have no parallelism at all.
        * Loads use most of the fill buffers; out-of-order plus the
          hardware prefetcher keep ~13 of 16 busy on streaming kernels.
        * Temporal stores are throttled by store-buffer drain and share
          fill buffers with their RFO reads (~10).
        * nt-stores / movdir64B are bounded by the write-combining
          buffers — but see :data:`WRITE_ACCEPTANCE_NS`: their service
          time is acceptance, not a full device round trip.
        """
        if pattern is AccessPattern.POINTER_CHASE:
            return 1.0
        if kind is AccessKind.LOAD:
            return min(self.config.fill_buffers, 15.0)
        if kind is AccessKind.STORE:
            return min(self.config.fill_buffers, 10.0)
        if kind is AccessKind.NT_STORE:
            return float(self.config.wc_buffers)
        if kind is AccessKind.MOVDIR64B:
            # Direct-store moves track both a read and a write; fewer fit.
            return min(self.config.wc_buffers, 8.0)
        raise AssertionError(f"unhandled kind {kind}")

    def service_latency_ns(self, kind: AccessKind, *, read_latency_ns: float,
                           write_latency_ns: float) -> float:
        """Latency one in-flight slot is occupied for, per line.

        ``read_latency_ns`` / ``write_latency_ns`` are the end-to-end
        (possibly loaded) path latencies of the target memory.
        """
        issue = self.config.issue_overhead_ns
        if kind is AccessKind.LOAD:
            return issue + read_latency_ns
        if kind is AccessKind.STORE:
            # The RFO fill is the blocking part; the writeback drains in
            # the background but occupies the slot for a fraction of it.
            return issue + read_latency_ns + 0.3 * write_latency_ns
        if kind is AccessKind.NT_STORE:
            return issue + WRITE_ACCEPTANCE_NS
        if kind is AccessKind.MOVDIR64B:
            # The cache-bypassing source read dominates (§4.3.1: "the
            # slower load from CXL memory leads to the lower throughput
            # in movdir64B").
            return issue + read_latency_ns + WRITE_ACCEPTANCE_NS
        raise AssertionError(f"unhandled kind {kind}")

    def peak_thread_bandwidth(self, kind: AccessKind,
                              pattern: AccessPattern, *,
                              read_latency_ns: float,
                              write_latency_ns: float) -> float:
        """Little's-law per-thread application bandwidth, B/s."""
        mlp = self.effective_mlp(kind, pattern)
        service = self.service_latency_ns(
            kind, read_latency_ns=read_latency_ns,
            write_latency_ns=write_latency_ns)
        return mlp * 64 / (service / 1e9)
