"""The memory-access instruction kinds MEMO exercises (§4.1).

All accesses are 64 B AVX-512 operations; the kinds differ in how they
interact with the cache hierarchy and what bus traffic one application
line implies:

===========  =============  ==========  =====================================
kind         bus reads      bus writes  notes
===========  =============  ==========  =====================================
LOAD         1              0           demand fill
STORE        1              1           RFO fill now + writeback later
NT_STORE     0              1           write-combining, bypasses caches
MOVDIR64B    1 (src)        1 (dst)     cache-bypassing 64 B move [7]
===========  =============  ==========  =====================================

``STORE`` is what MEMO times as "st+wb" (temporal store + ``clwb``);
``NT_STORE`` is timed with a trailing ``sfence``.  Both nt-store and
movdir64B are weakly ordered — the §6 guidelines remind users to fence.
"""

from __future__ import annotations

import enum

FENCE_NS = 2.0
"""Approximate cost of an mfence/sfence when the pipeline is quiet."""


class AccessKind(enum.Enum):
    """One 64 B memory operation class."""

    LOAD = "ld"
    STORE = "st+wb"
    NT_STORE = "nt-st"
    MOVDIR64B = "movdir64B"

    @property
    def bus_reads_per_line(self) -> int:
        """64 B reads on the memory bus per application line."""
        if self in (AccessKind.LOAD, AccessKind.STORE, AccessKind.MOVDIR64B):
            return 1
        return 0

    @property
    def bus_writes_per_line(self) -> int:
        """64 B writes on the memory bus per application line."""
        if self in (AccessKind.STORE, AccessKind.NT_STORE,
                    AccessKind.MOVDIR64B):
            return 1
        return 0

    @property
    def traffic_factor(self) -> int:
        """Total bus lines moved per application line.

        The RFO penalty in one number: a temporal store moves twice the
        traffic of a non-temporal store (§4.3.1).
        """
        return self.bus_reads_per_line + self.bus_writes_per_line

    @property
    def is_weakly_ordered(self) -> bool:
        """Needs an explicit fence for ordering (§6 best practices)."""
        return self in (AccessKind.NT_STORE, AccessKind.MOVDIR64B)

    @property
    def allocates_in_cache(self) -> bool:
        """Whether the line lands in the hierarchy."""
        return self in (AccessKind.LOAD, AccessKind.STORE)

    @property
    def occupies_core_tracking(self) -> bool:
        """Whether in-flight lines consume core miss-tracking resources.

        nt-stores hand off to write-combining buffers and stop being the
        core's problem — which is exactly why they can overflow the CXL
        device's internal buffer (§4.3.2: "nt-store does not occupy
        tracking resources in the CPU core").
        """
        return self is not AccessKind.NT_STORE

    @property
    def is_write(self) -> bool:
        return self.bus_writes_per_line > 0
