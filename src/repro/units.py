"""Units and conversions used throughout the simulator.

The simulator's canonical units are:

* **time** — nanoseconds (``float``), because every latency in the paper is
  quoted in ns or µs;
* **size** — bytes (``int``), with binary prefixes for capacities
  (KiB/MiB/GiB) and decimal prefixes for link rates, matching how the
  paper mixes "16 GB DRAM" (capacity) with "221 GB/s" (decimal bandwidth);
* **bandwidth** — bytes per second (``float``); helpers convert to and
  from the GB/s figures printed in the paper.

Keeping conversions in one module avoids the classic off-by-1000 bugs
between GiB and GB when calibrating against the paper's numbers.
"""

from __future__ import annotations

# --- time ------------------------------------------------------------------

NS = 1.0
US = 1_000.0
MS = 1_000_000.0
SEC = 1_000_000_000.0


def ns_to_us(ns: float) -> float:
    """Convert nanoseconds to microseconds."""
    return ns / US


def ns_to_ms(ns: float) -> float:
    """Convert nanoseconds to milliseconds."""
    return ns / MS


def ns_to_sec(ns: float) -> float:
    """Convert nanoseconds to seconds."""
    return ns / SEC


def sec_to_ns(sec: float) -> float:
    """Convert seconds to nanoseconds."""
    return sec * SEC


# --- sizes -----------------------------------------------------------------

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

KB = 1000
MB = 1000 * KB
GB = 1000 * MB

CACHELINE = 64
"""Size of one x86 cacheline in bytes; also one AVX-512 register's width."""

PAGE_4K = 4 * KIB
"""Base OS page size used by the NUMA allocator."""

PAGE_2M = 2 * MIB
"""Huge-page size; the DSA guideline in the paper mentions both 4K and 2M."""

CXL_FLIT_BYTES = 68
"""A CXL 1.1 flit: 64 B of slots + 2 B CRC + 2 B protocol ID (paper §2.1)."""

CXL_FLIT_PAYLOAD = 64
"""Payload carried by one protocol flit."""


def kib(n: float) -> int:
    """``n`` KiB expressed in bytes."""
    return int(n * KIB)


def mib(n: float) -> int:
    """``n`` MiB expressed in bytes."""
    return int(n * MIB)


def gib(n: float) -> int:
    """``n`` GiB expressed in bytes."""
    return int(n * GIB)


# --- bandwidth -------------------------------------------------------------


def gb_per_s(rate: float) -> float:
    """Convert a decimal GB/s figure (as printed in the paper) to B/s."""
    return rate * GB


def to_gb_per_s(bytes_per_s: float) -> float:
    """Convert B/s to the decimal GB/s convention used by the paper."""
    return bytes_per_s / GB


def transfer_ns(nbytes: float, bytes_per_s: float) -> float:
    """Time in ns to move ``nbytes`` at a sustained rate of ``bytes_per_s``."""
    if bytes_per_s <= 0:
        raise ValueError(f"bandwidth must be positive, got {bytes_per_s}")
    return nbytes / bytes_per_s * SEC


def bandwidth_from(nbytes: float, elapsed_ns: float) -> float:
    """Sustained bandwidth in B/s given bytes moved over ``elapsed_ns``."""
    if elapsed_ns <= 0:
        raise ValueError(f"elapsed time must be positive, got {elapsed_ns}")
    return nbytes / (elapsed_ns / SEC)


def ddr_peak_bandwidth(transfer_mt_s: float, channels: int = 1,
                       bus_bytes: int = 8) -> float:
    """Theoretical peak bandwidth of a DDR interface, in B/s.

    ``transfer_mt_s`` is the MT/s rating (e.g. 4800 for DDR5-4800, 2666 for
    DDR4-2666).  Each transfer moves ``bus_bytes`` (8 B for a standard
    64-bit channel).  This reproduces the paper's grey dashed line in
    Fig. 3b: DDR4-2666 x1 -> 21.3 GB/s.
    """
    if transfer_mt_s <= 0 or channels <= 0:
        raise ValueError("transfer rate and channel count must be positive")
    return transfer_mt_s * 1e6 * bus_bytes * channels


def format_bytes(nbytes: float) -> str:
    """Human-readable binary size, e.g. ``format_bytes(2048) == '2.0KiB'``."""
    value = float(nbytes)
    for suffix in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024 or suffix == "TiB":
            if suffix == "B":
                return f"{int(value)}B"
            return f"{value:.1f}{suffix}"
        value /= 1024
    raise AssertionError("unreachable")


def format_ns(ns_value: float) -> str:
    """Human-readable duration, e.g. ``format_ns(1500) == '1.5us'``."""
    if ns_value < US:
        return f"{ns_value:.1f}ns"
    if ns_value < MS:
        return f"{ns_value / US:.1f}us"
    if ns_value < SEC:
        return f"{ns_value / MS:.2f}ms"
    return f"{ns_value / SEC:.3f}s"
