"""Key-popularity distributions used by YCSB.

Three request distributions appear in the paper's Redis study (Fig. 7):
uniform ("uni", the default for workloads A/B/C/F "ensuring maximal
stress on the memory"), Zipfian ("zipf"), and latest ("lat", workload
D's default, reading "the most recently inserted elements").

The Zipfian implementation follows Gray et al.'s rejection-free method
used by YCSB itself (incremental, O(1) per draw), with the YCSB "scrambled"
variant spreading hot keys over the keyspace via FNV hashing.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError

ZIPFIAN_CONSTANT = 0.99

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def fnv1a_64(value: int) -> int:
    """64-bit FNV-1a hash of an integer (YCSB's key scrambler)."""
    data = value.to_bytes(8, "little", signed=False)
    hashed = _FNV_OFFSET
    for byte in data:
        hashed ^= byte
        hashed = (hashed * _FNV_PRIME) % (1 << 64)
    return hashed


class KeyChooser:
    """Base class: picks key indices in ``[0, keyspace)``."""

    def __init__(self, keyspace: int) -> None:
        if keyspace <= 0:
            raise WorkloadError(f"keyspace must be positive: {keyspace}")
        self.keyspace = keyspace

    def next_key(self, rng: np.random.Generator) -> int:
        raise NotImplementedError

    def grow(self, new_keyspace: int) -> None:
        """Inform the chooser of inserts (only Latest cares)."""
        if new_keyspace < self.keyspace:
            raise WorkloadError("keyspace cannot shrink")
        self.keyspace = new_keyspace

    def hot_mass(self, hot_keys: int) -> float:
        """Request mass landing on the ``hot_keys`` most popular keys.

        Used to estimate cache hit rates: a 60 MB LLC covers some number
        of hot records, and this is the fraction of requests they absorb.
        """
        raise NotImplementedError


class UniformKeys(KeyChooser):
    """Every key equally likely."""

    def next_key(self, rng: np.random.Generator) -> int:
        return int(rng.integers(0, self.keyspace))

    def hot_mass(self, hot_keys: int) -> float:
        return min(1.0, hot_keys / self.keyspace)


class ZipfianKeys(KeyChooser):
    """Scrambled Zipfian with the YCSB constant theta = 0.99."""

    def __init__(self, keyspace: int,
                 theta: float = ZIPFIAN_CONSTANT) -> None:
        super().__init__(keyspace)
        if not 0 < theta < 1:
            raise WorkloadError(f"theta must be in (0, 1): {theta}")
        self.theta = theta
        self._recompute()

    def _recompute(self) -> None:
        n = self.keyspace
        self._zetan = self._zeta(n, self.theta)
        self._zeta2 = self._zeta(2, self.theta)
        self._alpha = 1.0 / (1.0 - self.theta)
        denominator = 1 - self._zeta2 / self._zetan
        if denominator == 0.0:
            # n == 2: both keys are covered by the explicit rank-0/1
            # branches of next_rank, so eta never matters.
            self._eta = 0.0
        else:
            self._eta = ((1 - (2.0 / n) ** (1 - self.theta))
                         / denominator)

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        # Exact for small n; Euler–Maclaurin tail for large n keeps this
        # O(1)-ish instead of summing millions of terms.
        cutoff = 10_000
        head = sum(1.0 / i ** theta for i in range(1, min(n, cutoff) + 1))
        if n <= cutoff:
            return head
        tail = (n ** (1 - theta) - cutoff ** (1 - theta)) / (1 - theta)
        return head + tail

    def next_rank(self, rng: np.random.Generator) -> int:
        """Popularity rank (0 = hottest), Gray et al.'s method."""
        u = rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.keyspace
                   * (self._eta * u - self._eta + 1) ** self._alpha)

    def next_key(self, rng: np.random.Generator) -> int:
        rank = min(self.next_rank(rng), self.keyspace - 1)
        return fnv1a_64(rank) % self.keyspace

    def grow(self, new_keyspace: int) -> None:
        super().grow(new_keyspace)
        self._recompute()

    def hot_mass(self, hot_keys: int) -> float:
        if hot_keys <= 0:
            return 0.0
        return min(1.0, self._zeta(min(hot_keys, self.keyspace),
                                   self.theta) / self._zetan)


class LatestKeys(KeyChooser):
    """Workload D's default: skew toward the most recent inserts.

    Implemented as YCSB does — a Zipfian over recency: draw a Zipfian
    rank and count backwards from the newest key.
    """

    def __init__(self, keyspace: int,
                 theta: float = ZIPFIAN_CONSTANT) -> None:
        super().__init__(keyspace)
        self._zipf = ZipfianKeys(keyspace, theta)

    def next_key(self, rng: np.random.Generator) -> int:
        rank = min(self._zipf.next_rank(rng), self.keyspace - 1)
        return self.keyspace - 1 - rank

    def grow(self, new_keyspace: int) -> None:
        super().grow(new_keyspace)
        self._zipf.grow(new_keyspace)

    def hot_mass(self, hot_keys: int) -> float:
        # Recency skew concentrates harder than scrambled Zipfian: the
        # hot set is *contiguous*, so it also enjoys spatial locality
        # and never leaves the cache between touches.
        return min(1.0, 1.08 * self._zipf.hot_mass(hot_keys))
