"""The YCSB core workloads [6].

§5.1: "With the exception of workload D, all workloads used a uniform
distribution for requests, ensuring maximal stress on the memory", and
Fig 7 additionally runs workload D with Zipfian and uniform request
distributions ("lat", "zipf", "uni").  Workload E (range scans) is
omitted exactly as the paper omits it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

import numpy as np

from ..errors import WorkloadError
from .distributions import KeyChooser, LatestKeys, UniformKeys, ZipfianKeys


class Operation(enum.Enum):
    """YCSB operation types."""

    READ = "read"
    UPDATE = "update"
    INSERT = "insert"
    READ_MODIFY_WRITE = "rmw"
    SCAN = "scan"


@dataclass(frozen=True)
class YcsbWorkload:
    """One YCSB core workload: an operation mix plus a key distribution."""

    name: str
    read: float = 0.0
    update: float = 0.0
    insert: float = 0.0
    rmw: float = 0.0
    scan: float = 0.0
    distribution: str = "uniform"      # uniform | zipfian | latest
    value_bytes: int = 1000            # 10 fields x 100 B, the YCSB default
    fields_per_record: int = 10

    def __post_init__(self) -> None:
        total = self.read + self.update + self.insert + self.rmw + self.scan
        if abs(total - 1.0) > 1e-9:
            raise WorkloadError(
                f"workload {self.name}: proportions sum to {total}, not 1")
        if self.distribution not in ("uniform", "zipfian", "latest"):
            raise WorkloadError(
                f"unknown distribution {self.distribution!r}")
        if self.scan > 0:
            raise WorkloadError(
                "range scans are not modeled (the paper omits workload E)")

    def with_distribution(self, distribution: str) -> "YcsbWorkload":
        """The Fig-7 variants: D-lat / D-zipf / D-uni."""
        suffix = {"uniform": "uni", "zipfian": "zipf",
                  "latest": "lat"}[distribution]
        base = self.name.split("-")[0]
        return replace(self, name=f"{base}-{suffix}",
                       distribution=distribution)

    def make_chooser(self, keyspace: int) -> KeyChooser:
        if self.distribution == "uniform":
            return UniformKeys(keyspace)
        if self.distribution == "zipfian":
            return ZipfianKeys(keyspace)
        return LatestKeys(keyspace)

    def next_operation(self, rng: np.random.Generator) -> Operation:
        """Draw one operation according to the mix."""
        draw = rng.random()
        for op, share in ((Operation.READ, self.read),
                          (Operation.UPDATE, self.update),
                          (Operation.INSERT, self.insert),
                          (Operation.READ_MODIFY_WRITE, self.rmw)):
            if draw < share:
                return op
            draw -= share
        return Operation.READ            # numeric slack lands on reads

    @property
    def write_fraction(self) -> float:
        """Fraction of operations that mutate the store."""
        return self.update + self.insert + self.rmw


WORKLOADS: dict[str, YcsbWorkload] = {
    # §5.1 uses uniform for everything except D.
    "A": YcsbWorkload("A", read=0.5, update=0.5),
    "B": YcsbWorkload("B", read=0.95, update=0.05),
    "C": YcsbWorkload("C", read=1.0),
    "D": YcsbWorkload("D", read=0.95, insert=0.05, distribution="latest"),
    "F": YcsbWorkload("F", read=0.5, rmw=0.5),
}
