"""Request-distribution generators and the YCSB core workloads (§5.1)."""

from .distributions import (
    KeyChooser,
    LatestKeys,
    UniformKeys,
    ZipfianKeys,
)
from .ycsb import Operation, YcsbWorkload, WORKLOADS

__all__ = [
    "KeyChooser",
    "UniformKeys",
    "ZipfianKeys",
    "LatestKeys",
    "Operation",
    "YcsbWorkload",
    "WORKLOADS",
]
