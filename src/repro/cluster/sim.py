"""The cluster simulator: N KV shards, one pool, open-loop clients.

Each host runs the kvstore service-time model (CPU work plus dependent
memory misses, log-normal jitter on both) against the perfmodel read
paths of the shared :class:`~repro.cluster.topology.ClusterTopology`:
a record either lives in the host's local DRAM (~106 ns per miss) or
in its CXL pool slice (device path plus a fabric hop).  Which records
are pool-resident is a *stable* per-key decision — counter-based
(:func:`~repro.sim.rng.decision_uniform`, keyed by owner and key), so
the placement never depends on request order and serial/parallel runs
agree byte for byte.

Fault semantics
---------------
Two fault layers compose:

* a per-host :class:`~repro.faults.FaultPlan` perturbs that host's CXL
  (pool) accesses — stalls, transient timeouts, poisoned reads — with
  the same injected/recovered accounting the ``degraded-cxl``
  experiment pins;
* a :class:`LinkDown` event kills one host's CXL link mid-run.  From
  that instant the downed host can no longer reach its pool slice, so
  pool-resident requests owned by it are *rerouted* to a surviving
  host — possible precisely because the pool is shared fabric memory,
  not host-private DRAM.  Every reroute counts one injected fault and,
  on completion at the survivor, one recovery.  Local-DRAM-resident
  keys stay on the downed host (its DRAM is fine; only the link died).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..apps.kvstore.store import (CPU_BASE_NS, CPU_JITTER_SIGMA,
                                  EFFECTIVE_MISSES_MEAN, MISS_JITTER_SIGMA)
from ..errors import ClusterError
from ..faults import FaultPlan
from ..faults.injector import FaultInjector, injector_for
from ..sim import Engine, LatencyRecorder, Server
from ..sim.rng import decision_uniform, substream
from ..telemetry import NULL_TELEMETRY, Telemetry
from .routing import HostView, Router, make_router
from .topology import ClusterTopology
from .traffic import OpenLoopZipfian

CLUSTER_TRACK = "cluster"
"""Telemetry track prefix; per-host spans land on ``cluster.host<i>``."""

WRITE_MISS_FACTOR = 1.15
"""Extra dirty-line traffic of a mutation (matches the kvstore model)."""

CACHE_HIT_MISS_FACTOR = 0.1
"""Miss-count multiplier when the record is LLC-hot."""

REROUTE_HOP_NS = 1_500.0
"""Balancer redirect to a survivor after a link-down routing failure."""


@dataclass(frozen=True)
class LinkDown:
    """Kill one host's CXL link partway through the run.

    ``at_fraction`` places the failure on the arrival timeline (0.5 =
    midway through the trace), so the event scales with offered load
    instead of being pinned to an absolute nanosecond.
    """

    host: int
    at_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.at_fraction < 1.0:
            raise ClusterError(
                f"at_fraction must be in (0, 1): {self.at_fraction}")

    def to_dict(self) -> dict:
        return {"host": self.host, "at_fraction": self.at_fraction}


@dataclass(frozen=True)
class HostResult:
    """One host's view of a cluster run."""

    name: str
    index: int
    requests: int                      # requests this host served
    p50_ns: float                      # sojourn percentiles of those
    p99_ns: float
    injected: int                      # plan faults + link-down hits
    recovered: int                     # absorbed plan faults + reroutes
    absorbed: int                      # reroutes this host served
    pool_fraction: float               # shard bytes living in the pool

    @property
    def fault_free(self) -> bool:
        return self.injected == 0 and self.recovered == 0


@dataclass(frozen=True)
class ClusterResult:
    """Cluster-wide outcome of one (QPS, skew, pool-share) point."""

    qps: float
    theta: float
    pool_share: float
    requests: int                      # completed end-to-end
    achieved_qps: float
    p50_ns: float                      # end-to-end sojourn percentiles
    p99_ns: float
    mean_service_ns: float
    pool_utilization: float
    rerouted: int                      # link-down reroutes, fleet-wide
    link_down_host: int | None
    hosts: tuple[HostResult, ...]

    @property
    def injected(self) -> int:
        return sum(host.injected for host in self.hosts)

    @property
    def recovered(self) -> int:
        return sum(host.recovered for host in self.hosts)

    @property
    def p99_us(self) -> float:
        return self.p99_ns / 1000.0


class ClusterSim:
    """Drives a :class:`ClusterTopology` under open-loop zipfian load."""

    def __init__(self, topology: ClusterTopology, *,
                 router: str | Router = "hash-shard", seed: int = 1,
                 fault_plans: Mapping[int, FaultPlan] | None = None,
                 link_down: LinkDown | None = None,
                 telemetry: Telemetry | None = None) -> None:
        self.topology = topology
        self.router = router if isinstance(router, Router) \
            else make_router(router)
        self.seed = seed
        self.fault_plans = dict(fault_plans) if fault_plans else {}
        for host in self.fault_plans:
            if not 0 <= host < topology.num_hosts:
                raise ClusterError(
                    f"fault plan for unknown host {host}")
        if link_down is not None \
                and not 0 <= link_down.host < topology.num_hosts:
            raise ClusterError(
                f"link_down host {link_down.host} outside the fleet")
        if link_down is not None and topology.num_hosts < 2:
            raise ClusterError(
                "link_down needs a survivor: add at least one more host")
        self.link_down = link_down
        self.telemetry = telemetry if telemetry is not None \
            else NULL_TELEMETRY

    # -- stable per-key placement ------------------------------------------

    def pool_resident(self, key: int) -> bool:
        """Whether ``key``'s record spilled to its owner's pool slice.

        Counter-based draw keyed by ``(owner, key)``: the same key is
        resident in every run with this seed, regardless of request
        order, and raising ``pool_share`` only ever *adds* residents
        (nested fault-set property, same as the fault layer).
        """
        owner = self.topology.shard_of(key)
        fraction = self.topology.hosts[owner].pool_fraction
        if fraction <= 0.0:
            return False
        return decision_uniform(self.seed, "resident", owner, key) \
            < fraction

    # -- the run -----------------------------------------------------------

    def run(self, qps: float, *, theta: float = 0.99,
            requests: int = 8_000,
            write_fraction: float = 0.05) -> ClusterResult:
        topo = self.topology
        traffic = OpenLoopZipfian(
            qps=qps, num_requests=requests, keyspace=topo.total_keys,
            theta=theta, write_fraction=write_fraction, seed=self.seed)
        engine = Engine(telemetry=self.telemetry)
        tracer = self.telemetry.tracer
        traced = tracer.enabled
        spans = self.telemetry.spans
        spanned = spans.enabled

        servers = [Server(host.spec.workers, name=host.name)
                   for host in topo.hosts]
        host_sojourn = [LatencyRecorder(f"{host.name}-sojourn")
                        for host in topo.hosts]
        cluster_sojourn = LatencyRecorder("cluster-sojourn")
        injectors: dict[int, FaultInjector] = {}
        for index, plan in self.fault_plans.items():
            injector = injector_for(plan, stream=f"host{index}",
                                    telemetry=self.telemetry)
            if injector is not None:
                injectors[index] = injector

        dram_ns = topo.dram_read_ns()
        # Per-owner pool path: with one CXL device every entry is the
        # same number (the classic shared path); a heterogeneous pool
        # gives each shard the latency of the device holding its slice.
        pool_ns_by_host = [topo.pool_read_ns(host)
                           for host in range(topo.num_hosts)]
        hit_prob = topo.cache_hit_prob(theta)

        # Per-miss span decomposition of the two read paths; only built
        # (and only consulted) when span recording is on.
        if spanned:
            dram_parts = topo.dram_components()
            pool_parts_by_host = [topo.pool_components(host)
                                  for host in range(topo.num_hosts)]

        # Per-request randomness, pre-drawn and indexed by request so
        # no simulation path can perturb another request's draws.
        n = requests
        cpu_jitter = substream("cluster/cpu", self.seed).lognormal(
            0.0, CPU_JITTER_SIGMA, size=n)
        miss_jitter = substream("cluster/miss", self.seed).lognormal(
            0.0, MISS_JITTER_SIGMA, size=n)
        cache_u = substream("cluster/cache", self.seed).random(n)

        link_up = [True] * topo.num_hosts
        link_injected = [0] * topo.num_hosts
        link_recovered = [0] * topo.num_hosts
        absorbed = [0] * topo.num_hosts
        served = [0] * topo.num_hosts
        rerouted = [0]
        completed = [0]
        service_total = [0.0]
        last_completion = [0.0]

        def submit(index: int, arrival: float, key: int,
                   is_write: bool) -> None:
            owner = topo.shard_of(key)
            resident = self.pool_resident(key)
            penalty = 0.0
            rerouted_from: int | None = None
            if resident:
                views = [HostView(i, up=link_up[i],
                                  in_flight=servers[i].busy
                                  + servers[i].queue_depth)
                         for i in range(topo.num_hosts)]
                target = self.router.route(key, owner, views)
                if not link_up[owner]:
                    # The owner's link is down; reaching the shared
                    # pool slice from a survivor costs one redirect.
                    link_injected[owner] += 1
                    rerouted[0] += 1
                    rerouted_from = owner
                    penalty = REROUTE_HOP_NS
            else:
                target = owner       # local DRAM keys never move

            def start() -> None:
                cpu = CPU_BASE_NS * float(cpu_jitter[index])
                misses = EFFECTIVE_MISSES_MEAN * float(miss_jitter[index])
                if is_write:
                    misses *= WRITE_MISS_FACTOR
                if float(cache_u[index]) < hit_prob:
                    misses *= CACHE_HIT_MISS_FACTOR
                miss_ns = pool_ns_by_host[owner] if resident \
                    else dram_ns
                extra = penalty
                fault_parts: tuple = ()
                pending_recoveries = 0
                injector = injectors.get(target) if resident else None
                if injector is not None:
                    fault_parts, pending_recoveries = \
                        injector.request_extras(index,
                                                reread_ns=misses * miss_ns)
                    for _, part_ns in fault_parts:
                        extra += part_ns
                service = cpu + misses * miss_ns + extra
                service_total[0] += service

                def finish() -> None:
                    servers[target].release()
                    sojourn = engine.now - arrival
                    cluster_sojourn.record(sojourn)
                    host_sojourn[target].record(sojourn)
                    served[target] += 1
                    completed[0] += 1
                    last_completion[0] = engine.now
                    for _ in range(pending_recoveries):
                        injector.recovery()
                    if rerouted_from is not None:
                        link_recovered[rerouted_from] += 1
                        absorbed[target] += 1
                    if traced:
                        tracer.complete(
                            f"{CLUSTER_TRACK}.host{target}",
                            "put" if is_write else "get",
                            arrival, sojourn, request=index)

                if not spanned:
                    engine.schedule(service, finish)
                    return

                # Spanned path only: the segment builder binds start()'s
                # locals as defaults so the spans-off closure above keeps
                # its exact shape (no extra cells on the hot path).
                def finish_spanned(cpu=cpu, misses=misses,
                                   mem_total=misses * miss_ns,
                                   grant=engine.now,
                                   parts=pool_parts_by_host[owner]
                                   if resident else dram_parts,
                                   fault_parts=fault_parts) -> None:
                    finish()
                    # Ordered waterfall; the memory components use a
                    # residual on the last entry so their sum closes
                    # exactly on misses * miss_ns.
                    segments = [("client.wait", grant - arrival)]
                    if rerouted_from is not None:
                        segments.append(("route.reroute", penalty))
                    segments.append(("shard.cpu", cpu))
                    accounted = 0.0
                    last = len(parts) - 1
                    for pos, (part, per_miss) in enumerate(parts):
                        if pos == last:
                            dur = mem_total - accounted
                        else:
                            dur = misses * per_miss
                            accounted += dur
                        segments.append((part, dur))
                    segments.extend(fault_parts)
                    spans.record(index, arrival, segments,
                                 kind="put" if is_write else "get")

                engine.schedule(service, finish_spanned)

            servers[target].acquire(start)

        if self.link_down is not None:
            down = self.link_down

            def kill_link() -> None:
                link_up[down.host] = False

            engine.schedule_at(down.at_fraction * traffic.duration_ns,
                               kill_link)

        for req in traffic.requests():
            engine.schedule_at(req.arrival_ns, submit, req.index,
                               req.arrival_ns, req.key, req.is_write)
        engine.run()

        if completed[0] != requests:
            raise ClusterError(
                f"only {completed[0]}/{requests} requests completed")

        hosts = []
        for index, host in enumerate(topo.hosts):
            injector = injectors.get(index)
            inj = (injector.injected if injector else 0) \
                + link_injected[index]
            rec = (injector.recovered if injector else 0) \
                + link_recovered[index]
            recorder = host_sojourn[index]
            hosts.append(HostResult(
                name=host.name, index=index, requests=served[index],
                p50_ns=recorder.p50() if len(recorder) else 0.0,
                p99_ns=recorder.p99() if len(recorder) else 0.0,
                injected=inj, recovered=rec, absorbed=absorbed[index],
                pool_fraction=host.pool_fraction))

        registry = self.telemetry.registry
        registry.counter("cluster.requests").inc(completed[0])
        registry.gauge("cluster.p99_sojourn_ns").set(cluster_sojourn.p99())
        achieved = completed[0] / (last_completion[0] / 1e9)
        registry.gauge("cluster.achieved_qps").set(achieved)
        for result in hosts:
            registry.gauge(
                f"cluster.host{result.index}.p99_ns").set(result.p99_ns)

        return ClusterResult(
            qps=qps, theta=theta, pool_share=topo.pool_share,
            requests=completed[0], achieved_qps=achieved,
            p50_ns=cluster_sojourn.p50(), p99_ns=cluster_sojourn.p99(),
            mean_service_ns=service_total[0] / completed[0],
            pool_utilization=topo.pool_utilization(),
            rerouted=rerouted[0],
            link_down_host=self.link_down.host
            if self.link_down is not None else None,
            hosts=tuple(hosts))
