"""The cluster simulator: N KV shards, one pool, open-loop clients.

Each host runs the kvstore service-time model (CPU work plus dependent
memory misses, log-normal jitter on both) against the perfmodel read
paths of the shared :class:`~repro.cluster.topology.ClusterTopology`:
a record either lives in the host's local DRAM (~106 ns per miss) or
in its CXL pool slice (device path plus a fabric hop).  Which records
are pool-resident is a *stable* per-key decision — counter-based
(:func:`~repro.sim.rng.decision_uniform`, keyed by owner and key), so
the placement never depends on request order and serial/parallel runs
agree byte for byte.

Fault semantics
---------------
Two fault layers compose:

* a per-host :class:`~repro.faults.FaultPlan` perturbs that host's CXL
  (pool) accesses — stalls, transient timeouts, poisoned reads — with
  the same injected/recovered accounting the ``degraded-cxl``
  experiment pins;
* a :class:`LinkDown` event kills one host's CXL link mid-run.  From
  that instant the downed host can no longer reach its pool slice, so
  pool-resident requests owned by it are *rerouted* to a surviving
  host — possible precisely because the pool is shared fabric memory,
  not host-private DRAM.  Every reroute counts one injected fault and,
  on completion at the survivor, one recovery.  Local-DRAM-resident
  keys stay on the downed host (its DRAM is fine; only the link died).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..apps.kvstore.store import (CPU_BASE_NS, CPU_JITTER_SIGMA,
                                  EFFECTIVE_MISSES_MEAN, MISS_JITTER_SIGMA)
from ..errors import ClusterError
from ..faults import FaultPlan
from ..faults.injector import FaultInjector, injector_for
from ..sim import Engine, LatencyRecorder, Server
from ..sim.rng import decision_uniform, substream
from ..telemetry import NULL_TELEMETRY, Telemetry
from .resilience import (DEADLINE_WAIT, HEDGE_WAIT, RETRY_BACKOFF,
                         SHED_REJECT, SHED_REJECT_NS, CircuitBreaker,
                         ResiliencePolicy, ResilienceStats, RetryBudget,
                         hedge_delay_ns, parse_policy)
from .routing import HostView, Router, make_router
from .topology import ClusterTopology
from .traffic import OpenLoopZipfian

CLUSTER_TRACK = "cluster"
"""Telemetry track prefix; per-host spans land on ``cluster.host<i>``."""

WRITE_MISS_FACTOR = 1.15
"""Extra dirty-line traffic of a mutation (matches the kvstore model)."""

CACHE_HIT_MISS_FACTOR = 0.1
"""Miss-count multiplier when the record is LLC-hot."""

REROUTE_HOP_NS = 1_500.0
"""Balancer redirect to a survivor after a link-down routing failure."""


@dataclass(frozen=True)
class LinkDown:
    """Kill one host's CXL link partway through the run.

    ``at_fraction`` places the failure on the arrival timeline (0.5 =
    midway through the trace), so the event scales with offered load
    instead of being pinned to an absolute nanosecond.
    """

    host: int
    at_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.at_fraction < 1.0:
            raise ClusterError(
                f"at_fraction must be in (0, 1): {self.at_fraction}")

    def to_dict(self) -> dict:
        return {"host": self.host, "at_fraction": self.at_fraction}


@dataclass(frozen=True)
class HostResult:
    """One host's view of a cluster run."""

    name: str
    index: int
    requests: int                      # requests this host served
    p50_ns: float                      # sojourn percentiles of those
    p99_ns: float
    injected: int                      # plan faults + link-down hits
    recovered: int                     # absorbed plan faults + reroutes
    absorbed: int                      # reroutes this host served
    pool_fraction: float               # shard bytes living in the pool

    @property
    def fault_free(self) -> bool:
        return self.injected == 0 and self.recovered == 0


@dataclass(frozen=True)
class ClusterResult:
    """Cluster-wide outcome of one (QPS, skew, pool-share) point."""

    qps: float
    theta: float
    pool_share: float
    requests: int                      # completed end-to-end
    achieved_qps: float
    p50_ns: float                      # end-to-end sojourn percentiles
    p99_ns: float
    mean_service_ns: float
    pool_utilization: float
    rerouted: int                      # link-down reroutes, fleet-wide
    link_down_host: int | None
    hosts: tuple[HostResult, ...]
    resilience: ResilienceStats | None = None

    @property
    def injected(self) -> int:
        return sum(host.injected for host in self.hosts)

    @property
    def recovered(self) -> int:
        return sum(host.recovered for host in self.hosts)

    @property
    def p99_us(self) -> float:
        return self.p99_ns / 1000.0

    @property
    def successes(self) -> int:
        """Requests that got an answer (everything, minus policy
        failures — a policy-free run succeeds by definition)."""
        if self.resilience is None:
            return self.requests
        return self.resilience.successes

    @property
    def goodput_qps(self) -> float:
        """Achieved throughput scaled to successful answers only."""
        if self.requests == 0:
            return 0.0
        return self.achieved_qps * (self.successes / self.requests)


class ClusterSim:
    """Drives a :class:`ClusterTopology` under open-loop zipfian load."""

    def __init__(self, topology: ClusterTopology, *,
                 router: str | Router = "hash-shard", seed: int = 1,
                 fault_plans: Mapping[int, FaultPlan] | None = None,
                 link_down: LinkDown | None = None,
                 policy: ResiliencePolicy | str | None = None,
                 telemetry: Telemetry | None = None) -> None:
        self.topology = topology
        self.router = router if isinstance(router, Router) \
            else make_router(router)
        self.seed = seed
        if isinstance(policy, str):
            policy = parse_policy(policy)
        if policy is not None and not policy.active:
            # The all-zero policy changes nothing; normalizing it to
            # None keeps the policy-free fast path byte-identical.
            policy = None
        self.policy = policy
        self.fault_plans = dict(fault_plans) if fault_plans else {}
        for host in self.fault_plans:
            if not 0 <= host < topology.num_hosts:
                raise ClusterError(
                    f"fault plan for unknown host {host}")
        if link_down is not None \
                and not 0 <= link_down.host < topology.num_hosts:
            raise ClusterError(
                f"link_down host {link_down.host} outside the fleet")
        if link_down is not None and topology.num_hosts < 2:
            raise ClusterError(
                "link_down needs a survivor: add at least one more host")
        self.link_down = link_down
        self.telemetry = telemetry if telemetry is not None \
            else NULL_TELEMETRY

    # -- stable per-key placement ------------------------------------------

    def pool_resident(self, key: int) -> bool:
        """Whether ``key``'s record spilled to its owner's pool slice.

        Counter-based draw keyed by ``(owner, key)``: the same key is
        resident in every run with this seed, regardless of request
        order, and raising ``pool_share`` only ever *adds* residents
        (nested fault-set property, same as the fault layer).
        """
        owner = self.topology.shard_of(key)
        fraction = self.topology.hosts[owner].pool_fraction
        if fraction <= 0.0:
            return False
        return decision_uniform(self.seed, "resident", owner, key) \
            < fraction

    # -- the run -----------------------------------------------------------

    def run(self, qps: float, *, theta: float = 0.99,
            requests: int = 8_000,
            write_fraction: float = 0.05) -> ClusterResult:
        if self.policy is not None:
            return self._run_resilient(qps, theta=theta,
                                       requests=requests,
                                       write_fraction=write_fraction)
        topo = self.topology
        traffic = OpenLoopZipfian(
            qps=qps, num_requests=requests, keyspace=topo.total_keys,
            theta=theta, write_fraction=write_fraction, seed=self.seed)
        engine = Engine(telemetry=self.telemetry)
        tracer = self.telemetry.tracer
        traced = tracer.enabled
        spans = self.telemetry.spans
        spanned = spans.enabled

        servers = [Server(host.spec.workers, name=host.name)
                   for host in topo.hosts]
        host_sojourn = [LatencyRecorder(f"{host.name}-sojourn")
                        for host in topo.hosts]
        cluster_sojourn = LatencyRecorder("cluster-sojourn")
        injectors: dict[int, FaultInjector] = {}
        for index, plan in self.fault_plans.items():
            injector = injector_for(plan, stream=f"host{index}",
                                    telemetry=self.telemetry)
            if injector is not None:
                injectors[index] = injector

        dram_ns = topo.dram_read_ns()
        # Per-owner pool path: with one CXL device every entry is the
        # same number (the classic shared path); a heterogeneous pool
        # gives each shard the latency of the device holding its slice.
        pool_ns_by_host = [topo.pool_read_ns(host)
                           for host in range(topo.num_hosts)]
        hit_prob = topo.cache_hit_prob(theta)

        # Per-miss span decomposition of the two read paths; only built
        # (and only consulted) when span recording is on.
        if spanned:
            dram_parts = topo.dram_components()
            pool_parts_by_host = [topo.pool_components(host)
                                  for host in range(topo.num_hosts)]

        # Per-request randomness, pre-drawn and indexed by request so
        # no simulation path can perturb another request's draws.
        n = requests
        cpu_jitter = substream("cluster/cpu", self.seed).lognormal(
            0.0, CPU_JITTER_SIGMA, size=n)
        miss_jitter = substream("cluster/miss", self.seed).lognormal(
            0.0, MISS_JITTER_SIGMA, size=n)
        cache_u = substream("cluster/cache", self.seed).random(n)

        link_up = [True] * topo.num_hosts
        link_injected = [0] * topo.num_hosts
        link_recovered = [0] * topo.num_hosts
        absorbed = [0] * topo.num_hosts
        served = [0] * topo.num_hosts
        rerouted = [0]
        completed = [0]
        service_total = [0.0]
        last_completion = [0.0]

        def submit(index: int, arrival: float, key: int,
                   is_write: bool) -> None:
            owner = topo.shard_of(key)
            resident = self.pool_resident(key)
            penalty = 0.0
            rerouted_from: int | None = None
            if resident:
                views = [HostView(i, up=link_up[i],
                                  in_flight=servers[i].busy
                                  + servers[i].queue_depth)
                         for i in range(topo.num_hosts)]
                target = self.router.route(key, owner, views)
                if not link_up[owner]:
                    # The owner's link is down; reaching the shared
                    # pool slice from a survivor costs one redirect.
                    link_injected[owner] += 1
                    rerouted[0] += 1
                    rerouted_from = owner
                    penalty = REROUTE_HOP_NS
            else:
                target = owner       # local DRAM keys never move

            def start() -> None:
                cpu = CPU_BASE_NS * float(cpu_jitter[index])
                misses = EFFECTIVE_MISSES_MEAN * float(miss_jitter[index])
                if is_write:
                    misses *= WRITE_MISS_FACTOR
                if float(cache_u[index]) < hit_prob:
                    misses *= CACHE_HIT_MISS_FACTOR
                miss_ns = pool_ns_by_host[owner] if resident \
                    else dram_ns
                extra = penalty
                fault_parts: tuple = ()
                pending_recoveries = 0
                injector = injectors.get(target) if resident else None
                if injector is not None:
                    fault_parts, pending_recoveries = \
                        injector.request_extras(index,
                                                reread_ns=misses * miss_ns)
                    for _, part_ns in fault_parts:
                        extra += part_ns
                service = cpu + misses * miss_ns + extra
                service_total[0] += service

                def finish() -> None:
                    servers[target].release()
                    sojourn = engine.now - arrival
                    cluster_sojourn.record(sojourn)
                    host_sojourn[target].record(sojourn)
                    served[target] += 1
                    completed[0] += 1
                    last_completion[0] = engine.now
                    for _ in range(pending_recoveries):
                        injector.recovery()
                    if rerouted_from is not None:
                        link_recovered[rerouted_from] += 1
                        absorbed[target] += 1
                    if traced:
                        tracer.complete(
                            f"{CLUSTER_TRACK}.host{target}",
                            "put" if is_write else "get",
                            arrival, sojourn, request=index)

                if not spanned:
                    engine.schedule(service, finish)
                    return

                # Spanned path only: the segment builder binds start()'s
                # locals as defaults so the spans-off closure above keeps
                # its exact shape (no extra cells on the hot path).
                def finish_spanned(cpu=cpu, misses=misses,
                                   mem_total=misses * miss_ns,
                                   grant=engine.now,
                                   parts=pool_parts_by_host[owner]
                                   if resident else dram_parts,
                                   fault_parts=fault_parts) -> None:
                    finish()
                    # Ordered waterfall; the memory components use a
                    # residual on the last entry so their sum closes
                    # exactly on misses * miss_ns.
                    segments = [("client.wait", grant - arrival)]
                    if rerouted_from is not None:
                        segments.append(("route.reroute", penalty))
                    segments.append(("shard.cpu", cpu))
                    accounted = 0.0
                    last = len(parts) - 1
                    for pos, (part, per_miss) in enumerate(parts):
                        if pos == last:
                            dur = mem_total - accounted
                        else:
                            dur = misses * per_miss
                            accounted += dur
                        segments.append((part, dur))
                    segments.extend(fault_parts)
                    spans.record(index, arrival, segments,
                                 kind="put" if is_write else "get")

                engine.schedule(service, finish_spanned)

            servers[target].acquire(start)

        if self.link_down is not None:
            down = self.link_down

            def kill_link() -> None:
                link_up[down.host] = False

            engine.schedule_at(down.at_fraction * traffic.duration_ns,
                               kill_link)

        for req in traffic.requests():
            engine.schedule_at(req.arrival_ns, submit, req.index,
                               req.arrival_ns, req.key, req.is_write)
        engine.run()

        if completed[0] != requests:
            raise ClusterError(
                f"only {completed[0]}/{requests} requests completed")

        hosts = []
        for index, host in enumerate(topo.hosts):
            injector = injectors.get(index)
            inj = (injector.injected if injector else 0) \
                + link_injected[index]
            rec = (injector.recovered if injector else 0) \
                + link_recovered[index]
            recorder = host_sojourn[index]
            hosts.append(HostResult(
                name=host.name, index=index, requests=served[index],
                p50_ns=recorder.p50() if len(recorder) else 0.0,
                p99_ns=recorder.p99() if len(recorder) else 0.0,
                injected=inj, recovered=rec, absorbed=absorbed[index],
                pool_fraction=host.pool_fraction))

        registry = self.telemetry.registry
        registry.counter("cluster.requests").inc(completed[0])
        registry.gauge("cluster.p99_sojourn_ns").set(cluster_sojourn.p99())
        achieved = completed[0] / (last_completion[0] / 1e9)
        registry.gauge("cluster.achieved_qps").set(achieved)
        for result in hosts:
            registry.gauge(
                f"cluster.host{result.index}.p99_ns").set(result.p99_ns)

        return ClusterResult(
            qps=qps, theta=theta, pool_share=topo.pool_share,
            requests=completed[0], achieved_qps=achieved,
            p50_ns=cluster_sojourn.p50(), p99_ns=cluster_sojourn.p99(),
            mean_service_ns=service_total[0] / completed[0],
            pool_utilization=topo.pool_utilization(),
            rerouted=rerouted[0],
            link_down_host=self.link_down.host
            if self.link_down is not None else None,
            hosts=tuple(hosts))

    # -- the resilient run -------------------------------------------------

    def _run_resilient(self, qps: float, *, theta: float,
                       requests: int,
                       write_fraction: float) -> ClusterResult:
        """The policied request lifecycle (docs/CLUSTER.md).

        Each *request* settles exactly once — into one of the outcome
        buckets of :class:`~repro.cluster.resilience.ResilienceStats` —
        but may spawn several *attempts* (retries after a deadline
        expiry, one hedged secondary).  The asymmetry that produces
        retry storms is deliberate: a client abandoning an attempt at
        its deadline cannot reach into the server's queue, so the
        abandoned attempt still consumes a full service slot when
        granted (wasted work); only a *successful* settle actively
        cancels still-queued sibling attempts (first-wins hedging),
        because success is the one outcome the client can signal.
        """
        policy = self.policy
        assert policy is not None
        topo = self.topology
        traffic = OpenLoopZipfian(
            qps=qps, num_requests=requests, keyspace=topo.total_keys,
            theta=theta, write_fraction=write_fraction, seed=self.seed)
        engine = Engine(telemetry=self.telemetry)
        tracer = self.telemetry.tracer
        traced = tracer.enabled
        spans = self.telemetry.spans
        spanned = spans.enabled

        servers = [Server(host.spec.workers, name=host.name)
                   for host in topo.hosts]
        host_sojourn = [LatencyRecorder(f"{host.name}-sojourn")
                        for host in topo.hosts]
        cluster_sojourn = LatencyRecorder("cluster-sojourn")
        injectors: dict[int, FaultInjector] = {}
        for index, plan in self.fault_plans.items():
            injector = injector_for(plan, stream=f"host{index}",
                                    telemetry=self.telemetry)
            if injector is not None:
                injectors[index] = injector

        dram_ns = topo.dram_read_ns()
        pool_ns_by_host = [topo.pool_read_ns(host)
                           for host in range(topo.num_hosts)]
        hit_prob = topo.cache_hit_prob(theta)
        if spanned:
            dram_parts = topo.dram_components()
            pool_parts_by_host = [topo.pool_components(host)
                                  for host in range(topo.num_hosts)]

        n = requests
        cpu_jitter = substream("cluster/cpu", self.seed).lognormal(
            0.0, CPU_JITTER_SIGMA, size=n)
        miss_jitter = substream("cluster/miss", self.seed).lognormal(
            0.0, MISS_JITTER_SIGMA, size=n)
        cache_u = substream("cluster/cache", self.seed).random(n)

        link_up = [True] * topo.num_hosts
        link_injected = [0] * topo.num_hosts
        link_recovered = [0] * topo.num_hosts
        absorbed = [0] * topo.num_hosts
        served = [0] * topo.num_hosts
        rerouted = [0]
        completed = [0]
        service_total = [0.0]
        last_completion = [0.0]

        budget = RetryBudget(policy.retry_budget)
        breaker: CircuitBreaker | None = None
        if policy.breaking:
            # Reference latency: the unloaded mean service of the
            # slowest healthy read path — a host whose EWMA sojourn
            # sits at several multiples of this is sick, not busy.
            breaker = CircuitBreaker(
                policy, topo.num_hosts,
                reference_ns=CPU_BASE_NS
                + EFFECTIVE_MISSES_MEAN * max(pool_ns_by_host))
        hedge_wait = 0.0
        if policy.hedging and topo.num_hosts >= 2:
            hedge_wait = hedge_delay_ns(
                self.seed, policy.hedge_quantile,
                miss_ns=max(pool_ns_by_host))
        deadline = policy.deadline_ns
        counts = {"ok": 0, "ok_retried": 0, "ok_hedged": 0,
                  "deadline_exceeded": 0, "rejected": 0,
                  "hedges": 0, "hedge_wins": 0}
        wasted = [0.0]

        def routable(exclude: frozenset) -> list[HostView]:
            views = [HostView(i, up=link_up[i],
                              in_flight=servers[i].busy
                              + servers[i].queue_depth)
                     for i in range(topo.num_hosts)]
            if breaker is not None:
                views = breaker.filter_views(views, engine.now)
            if exclude:
                masked = [HostView(view.index,
                                   up=view.up
                                   and view.index not in exclude,
                                   in_flight=view.in_flight)
                          for view in views]
                # Prefer an untried host, but a retry with nowhere new
                # to go re-queues at a tried one rather than failing.
                if any(view.up for view in masked):
                    return masked
            return views

        def settle_failure(state: dict, index: int, arrival: float,
                           outcome: str, segments: list,
                           is_write: bool) -> None:
            if state["settled"]:
                return           # a racing hedge won during the window
            state["settled"] = True
            counts[outcome] += 1
            completed[0] += 1
            last_completion[0] = engine.now
            if outcome == "deadline_exceeded":
                # The client *waited* this long for nothing: failures
                # belong in the sojourn tail.  Rejections don't — the
                # balancer turned them around in SHED_REJECT_NS.
                cluster_sojourn.record(engine.now - arrival)
            if spanned:
                spans.record(index, arrival, segments,
                             kind="put" if is_write else "get")

        def launch(state: dict, index: int, arrival: float, key: int,
                   is_write: bool, owner: int, resident: bool,
                   attempt: int, prefix: tuple, issue: float,
                   hedge: bool, exclude: frozenset) -> None:
            if resident:
                target = self.router.route(key, owner,
                                           routable(exclude))
                reroute = not link_up[owner]
            else:
                target = owner       # local DRAM keys never move
                reroute = False

            if policy.shedding and servers[target].busy \
                    + servers[target].queue_depth \
                    >= policy.shed_inflight:
                if hedge:
                    return           # the primary attempt carries on
                segments = list(prefix)
                segments.append((SHED_REJECT, SHED_REJECT_NS))
                engine.schedule(SHED_REJECT_NS, settle_failure, state,
                                index, arrival, "rejected", segments,
                                is_write)
                return
            if attempt == 0 and not hedge:
                budget.note_admitted()
            state["outstanding"] += 1
            state["tried"].add(target)
            if hedge:
                counts["hedges"] += 1
            done = [False]
            abandoned = [False]
            timer = None

            def on_deadline() -> None:
                if state["settled"] or done[0]:
                    return
                abandoned[0] = True
                state["outstanding"] -= 1
                if not hedge and state["chain"] < policy.retries \
                        and budget.allow():
                    state["chain"] += 1
                    chain = state["chain"]
                    # Exponential backoff with full deterministic
                    # jitter in [0.5, 1.5) of the doubled base.
                    backoff = policy.backoff_base_ns \
                        * (2.0 ** (chain - 1)) \
                        * (0.5 + decision_uniform(
                            self.seed, "resil-backoff", index, chain))
                    new_prefix = prefix + ((DEADLINE_WAIT, deadline),
                                           (RETRY_BACKOFF, backoff))
                    state["pending_retry"] = True

                    def relaunch() -> None:
                        state["pending_retry"] = False
                        if state["settled"]:
                            return
                        launch(state, index, arrival, key, is_write,
                               owner, resident, chain, new_prefix,
                               engine.now, False,
                               frozenset(state["tried"]))

                    engine.schedule(backoff, relaunch)
                    return
                if state["outstanding"] == 0 \
                        and not state["pending_retry"]:
                    segments = list(prefix)
                    segments.append((DEADLINE_WAIT, deadline))
                    settle_failure(state, index, arrival,
                                   "deadline_exceeded", segments,
                                   is_write)

            if deadline > 0.0:
                timer = engine.schedule_at(issue + deadline,
                                           on_deadline)

            def start() -> None:
                if state["won"]:
                    # First-wins cancel: the client already has its
                    # answer, so this still-queued attempt vacates the
                    # slot with zero service.  The release is scheduled
                    # rather than called so a long chain of cancelled
                    # waiters cannot recurse through the grant path.
                    done[0] = True
                    if timer is not None:
                        engine.cancel(timer)
                    if not abandoned[0]:
                        state["outstanding"] -= 1
                    engine.schedule(0.0, servers[target].release)
                    return
                cpu = CPU_BASE_NS * float(cpu_jitter[index])
                misses = EFFECTIVE_MISSES_MEAN * float(miss_jitter[index])
                if is_write:
                    misses *= WRITE_MISS_FACTOR
                if float(cache_u[index]) < hit_prob:
                    misses *= CACHE_HIT_MISS_FACTOR
                miss_ns = pool_ns_by_host[owner] if resident \
                    else dram_ns
                extra = REROUTE_HOP_NS if reroute else 0.0
                fault_parts: tuple = ()
                pending_recoveries = 0
                injector = injectors.get(target) if resident else None
                if injector is not None:
                    # Every attempt draws its own faults: a retry hits
                    # fresh device weather, not a replay of the first
                    # attempt's.  Attempt 0 keeps the base-path key so
                    # fault accounting stays comparable across modes.
                    if hedge:
                        fault_key = (index, "h", attempt)
                    elif attempt:
                        fault_key = (index, "a", attempt)
                    else:
                        fault_key = (index,)
                    fault_parts, pending_recoveries = \
                        injector.request_extras(
                            *fault_key, reread_ns=misses * miss_ns)
                    for _, part_ns in fault_parts:
                        extra += part_ns
                service = cpu + misses * miss_ns + extra
                service_total[0] += service
                grant = engine.now

                def finish() -> None:
                    servers[target].release()
                    done[0] = True
                    if timer is not None:
                        engine.cancel(timer)
                    for _ in range(pending_recoveries):
                        injector.recovery()
                    if reroute:
                        # All reroute accounting lands at termination
                        # so abandoned attempts still balance
                        # injected == recovered.
                        link_injected[owner] += 1
                        link_recovered[owner] += 1
                        rerouted[0] += 1
                        absorbed[target] += 1
                    if breaker is not None:
                        breaker.observe(target, engine.now - issue,
                                        engine.now)
                    if state["settled"] or abandoned[0]:
                        # A losing attempt: the server did the work,
                        # nobody was listening.
                        wasted[0] += service
                        if not abandoned[0]:
                            state["outstanding"] -= 1
                        return
                    state["settled"] = True
                    state["won"] = True
                    state["outstanding"] -= 1
                    sojourn = engine.now - arrival
                    cluster_sojourn.record(sojourn)
                    host_sojourn[target].record(sojourn)
                    served[target] += 1
                    completed[0] += 1
                    last_completion[0] = engine.now
                    if hedge:
                        counts["ok_hedged"] += 1
                        counts["hedge_wins"] += 1
                    elif attempt:
                        counts["ok_retried"] += 1
                    else:
                        counts["ok"] += 1
                    if traced:
                        tracer.complete(
                            f"{CLUSTER_TRACK}.host{target}",
                            "put" if is_write else "get",
                            arrival, sojourn, request=index)
                    if not spanned:
                        return
                    segments = list(prefix)
                    segments.append(("client.wait", grant - issue))
                    if reroute:
                        segments.append(("route.reroute",
                                         REROUTE_HOP_NS))
                    segments.append(("shard.cpu", cpu))
                    mem_total = misses * miss_ns
                    parts = pool_parts_by_host[owner] if resident \
                        else dram_parts
                    accounted = 0.0
                    last = len(parts) - 1
                    for pos, (part, per_miss) in enumerate(parts):
                        if pos == last:
                            dur = mem_total - accounted
                        else:
                            dur = misses * per_miss
                            accounted += dur
                        segments.append((part, dur))
                    segments.extend(fault_parts)
                    spans.record(index, arrival, segments,
                                 kind="put" if is_write else "get")

                engine.schedule(service, finish)

            servers[target].acquire(start)

            if not hedge and attempt == 0 and hedge_wait > 0.0 \
                    and resident:
                def maybe_hedge() -> None:
                    if state["settled"] or done[0]:
                        return
                    views = routable(frozenset((target,)))
                    if not any(view.up and view.index != target
                               for view in views):
                        return       # nowhere distinct to hedge to
                    launch(state, index, arrival, key, is_write,
                           owner, resident, 0,
                           prefix + ((HEDGE_WAIT, hedge_wait),),
                           engine.now, True, frozenset((target,)))

                engine.schedule(hedge_wait, maybe_hedge)

        def submit(index: int, arrival: float, key: int,
                   is_write: bool) -> None:
            owner = topo.shard_of(key)
            resident = self.pool_resident(key)
            state = {"settled": False, "won": False, "outstanding": 0,
                     "tried": set(), "chain": 0,
                     "pending_retry": False}
            launch(state, index, arrival, key, is_write, owner,
                   resident, 0, (), arrival, False, frozenset())

        if self.link_down is not None:
            down = self.link_down

            def kill_link() -> None:
                link_up[down.host] = False

            engine.schedule_at(down.at_fraction * traffic.duration_ns,
                               kill_link)

        for req in traffic.requests():
            engine.schedule_at(req.arrival_ns, submit, req.index,
                               req.arrival_ns, req.key, req.is_write)
        engine.run()

        if completed[0] != requests:
            raise ClusterError(
                f"only {completed[0]}/{requests} requests settled")

        hosts = []
        for index, host in enumerate(topo.hosts):
            injector = injectors.get(index)
            inj = (injector.injected if injector else 0) \
                + link_injected[index]
            rec = (injector.recovered if injector else 0) \
                + link_recovered[index]
            recorder = host_sojourn[index]
            hosts.append(HostResult(
                name=host.name, index=index, requests=served[index],
                p50_ns=recorder.p50() if len(recorder) else 0.0,
                p99_ns=recorder.p99() if len(recorder) else 0.0,
                injected=inj, recovered=rec, absorbed=absorbed[index],
                pool_fraction=host.pool_fraction))

        stats = ResilienceStats(
            ok=counts["ok"], ok_retried=counts["ok_retried"],
            ok_hedged=counts["ok_hedged"],
            deadline_exceeded=counts["deadline_exceeded"],
            rejected=counts["rejected"],
            retries_issued=budget.issued,
            retries_suppressed=budget.suppressed,
            hedges_launched=counts["hedges"],
            hedge_wins=counts["hedge_wins"],
            breaker_opens=breaker.opens if breaker is not None else 0,
            wasted_ns=wasted[0])

        registry = self.telemetry.registry
        registry.counter("cluster.requests").inc(completed[0])
        registry.gauge("cluster.p99_sojourn_ns").set(
            cluster_sojourn.p99() if len(cluster_sojourn) else 0.0)
        achieved = completed[0] / (last_completion[0] / 1e9)
        registry.gauge("cluster.achieved_qps").set(achieved)
        for result in hosts:
            registry.gauge(
                f"cluster.host{result.index}.p99_ns").set(result.p99_ns)
        registry.gauge("cluster.goodput_qps").set(
            achieved * (stats.successes / completed[0]))

        return ClusterResult(
            qps=qps, theta=theta, pool_share=topo.pool_share,
            requests=completed[0], achieved_qps=achieved,
            p50_ns=cluster_sojourn.p50()
            if len(cluster_sojourn) else 0.0,
            p99_ns=cluster_sojourn.p99()
            if len(cluster_sojourn) else 0.0,
            mean_service_ns=service_total[0] / completed[0],
            pool_utilization=topo.pool_utilization(),
            rerouted=rerouted[0],
            link_down_host=self.link_down.host
            if self.link_down is not None else None,
            hosts=tuple(hosts), resilience=stats)
