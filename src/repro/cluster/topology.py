"""The :class:`ClusterTopology`: N hosts sharing one CXL memory pool.

Each host is a KV shard in the style of :mod:`repro.apps.kvstore` — a
single-threaded (or ``workers``-threaded) store whose per-query service
time decomposes into CPU work plus dependent memory misses.  The miss
latencies come from the *same* device stack every single-host
experiment uses: a :class:`~repro.cpu.system.System` built from the
combined testbed supplies the unloaded DRAM and CXL read paths, and the
pool adds one switch hop on top of the device's own CXL path (a pooled
expander sits behind a fabric port, the topology CXL-DMSim and
CXLRAMSim model).

The split between local DRAM and the pool is decided by
:func:`~repro.cluster.pool.plan_spill`: each shard's working set fills
its local DRAM budget first and spills the remainder into a
:class:`~repro.cluster.pool.PoolAllocator` HDM slice.  A ``pool_share``
of 0.5 therefore means half of every shard's bytes — and, because keys
are hashed across lines, roughly half of every query's misses — pay the
pool path.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import build_system, combined_testbed
from ..config import SystemConfig
from ..errors import ClusterError
from ..workloads.distributions import ZipfianKeys
from .pool import PoolAllocator, PoolSlice, SpillPlan, plan_spill

RECORD_BYTES = 1280
"""One KV record, cacheline-rounded: 1 KiB value + object overhead."""

POOL_HOP_NS = 70.0
"""Extra one-way latency of the pool fabric port (switch traversal)."""

LLC_USABLE_FRACTION = 0.5
"""Share of a host's LLC realistically holding hot records (matches
:mod:`repro.apps.kvstore.store`)."""


@dataclass(frozen=True)
class HostSpec:
    """Static description of one host in the cluster."""

    name: str
    keys: int                          # shard keyspace size
    local_dram_bytes: int              # DRAM budget for the shard heap
    workers: int = 1                   # event-loop threads

    def __post_init__(self) -> None:
        if self.keys <= 0:
            raise ClusterError(f"{self.name}: keys must be positive")
        if self.local_dram_bytes < 0:
            raise ClusterError(f"{self.name}: DRAM budget must be >= 0")
        if self.workers <= 0:
            raise ClusterError(f"{self.name}: workers must be positive")

    @property
    def demand_bytes(self) -> int:
        return self.keys * RECORD_BYTES


@dataclass(frozen=True)
class Host:
    """One placed host: its spec, spill plan, and pool slice."""

    index: int
    spec: HostSpec
    spill: SpillPlan
    slice: PoolSlice | None            # None when nothing spilled

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def pool_fraction(self) -> float:
        """Fraction of this shard's data served from the pool."""
        return self.spill.pool_fraction


class ClusterTopology:
    """N KV shards carved into one shared CXL memory pool.

    ``pool_share`` is the fraction of each shard's working set forced
    into the pool (its local DRAM budget covers the rest), the knob the
    ``cluster-pooling`` experiment sweeps.  The shared
    :class:`~repro.cpu.system.System` supplies the perfmodel read
    paths; per-host placement differs only in how much of each shard
    pays the pool path.
    """

    def __init__(self, num_hosts: int, *, keys_per_host: int = 200_000,
                 pool_share: float = 0.5,
                 pool_bytes: int | None = None,
                 workers: int = 1,
                 testbed: SystemConfig | None = None) -> None:
        if num_hosts <= 0:
            raise ClusterError(f"need at least one host: {num_hosts}")
        if not 0.0 <= pool_share <= 1.0:
            raise ClusterError(
                f"pool_share must be in [0, 1]: {pool_share}")
        self.num_hosts = num_hosts
        self.keys_per_host = keys_per_host
        self.pool_share = pool_share
        self.system = build_system(testbed if testbed is not None
                                   else combined_testbed())
        demand = keys_per_host * RECORD_BYTES
        # Default pool capacity: exactly the fleet's total working set,
        # so utilization reads directly as the realized spill share.
        self.pool = PoolAllocator(pool_bytes if pool_bytes is not None
                                  else demand * num_hosts)
        local_budget = int(round(demand * (1.0 - pool_share)))
        self.hosts: list[Host] = []
        for index in range(num_hosts):
            spec = HostSpec(name=f"host{index}", keys=keys_per_host,
                            local_dram_bytes=local_budget,
                            workers=workers)
            spill = plan_spill(spec.demand_bytes, spec.local_dram_bytes)
            piece = self.pool.carve(spec.name, spill.pool_bytes) \
                if spill.pool_bytes > 0 else None
            self.hosts.append(Host(index=index, spec=spec, spill=spill,
                                   slice=piece))

    # -- perfmodel-derived latencies --------------------------------------

    def dram_read_ns(self) -> float:
        """Unloaded local-DRAM miss path of one host."""
        system = self.system
        return system.edge_ns() + system.backend_for_node(
            system.LOCAL_NODE).idle_read_ns()

    def pool_read_ns(self, host: int | None = None) -> float:
        """Unloaded pool miss path: the CXL device plus one fabric hop.

        With a multi-device pool (``pooled``/``hetero-pool`` scenario
        profiles) each host's slice lives on device ``host mod
        num_devices``, so a heterogeneous pool gives different shards
        different pool latencies.  Single-device systems reduce to the
        classic shared path regardless of ``host``.
        """
        system = self.system
        device = 0 if host is None \
            else host % len(system.config.cxl_devices)
        return (system.edge_ns()
                + system.backend_for_node(system.cxl_node_id + device)
                .idle_read_ns() + POOL_HOP_NS)

    # -- span components ---------------------------------------------------

    def dram_components(self) -> tuple[tuple[str, float], ...]:
        """The local-DRAM miss path as labeled per-miss span components.

        Sums to :meth:`dram_read_ns` (up to float association; span
        recording closes the sum with a residual on the last entry).
        """
        system = self.system
        backend = system.backend_for_node(system.LOCAL_NODE)
        return (("cpu.stall", system.edge_ns()),) + tuple(
            (f"dram.{part}", ns) for part, ns in backend.read_components_ns())

    def pool_components(self, host: int | None = None
                        ) -> tuple[tuple[str, float], ...]:
        """The pool miss path as labeled per-miss span components.

        Mirrors :meth:`pool_read_ns`: socket edge, then the owning CXL
        device's link/ctrl/media decomposition, then the fabric hop.
        """
        system = self.system
        device = 0 if host is None \
            else host % len(system.config.cxl_devices)
        backend = system.backend_for_node(system.cxl_node_id + device)
        return ((("cpu.stall", system.edge_ns()),)
                + tuple((f"cxl.{part}", ns)
                        for part, ns in backend.read_components_ns())
                + (("pool.hop", POOL_HOP_NS),))

    # -- workload-derived absorption --------------------------------------

    def cache_hit_prob(self, theta: float) -> float:
        """LLC hot-mass absorption for a scrambled-Zipfian keyspace.

        Scrambled Zipfian spreads hot keys uniformly over the hash
        space, so every shard sees the same hot mass — cluster-wide and
        per-host absorption coincide.
        """
        llc = self.system.socket.config.cache.llc.capacity_bytes
        hot_records = int(llc * LLC_USABLE_FRACTION / RECORD_BYTES)
        chooser = ZipfianKeys(self.total_keys, theta)
        return chooser.hot_mass(hot_records)

    # -- accounting --------------------------------------------------------

    @property
    def total_keys(self) -> int:
        return self.num_hosts * self.keys_per_host

    def pool_utilization(self) -> float:
        return self.pool.utilization()

    def shard_of(self, key: int) -> int:
        """Home shard of a global key (contiguous range partitioning)."""
        if not 0 <= key < self.total_keys:
            raise ClusterError(f"key {key} outside keyspace")
        return key // self.keys_per_host
