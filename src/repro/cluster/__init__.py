"""``repro.cluster`` — multi-host CXL memory pooling.

N kvstore shards share one CXL memory pool: each host fills its local
DRAM budget and spills the rest of its working set into a carved HDM
slice (:mod:`~repro.cluster.pool`), a load balancer routes pool-served
requests (:mod:`~repro.cluster.routing`), open-loop zipfian clients
offer cluster-scale QPS (:mod:`~repro.cluster.traffic`), and the DES
simulator (:mod:`~repro.cluster.sim`) reports end-to-end tail latency
per host and fleet-wide — including degraded fleets where one host's
CXL link dies mid-run.  See docs/CLUSTER.md.
"""

from .pool import PoolAllocator, PoolSlice, SpillPlan, plan_spill
from .resilience import (CircuitBreaker, PRESETS, ResiliencePolicy,
                         ResilienceStats, RetryBudget, SHED_REJECT_NS,
                         hedge_delay_ns, make_policy, parse_policy)
from .routing import (HashShardRouter, HostView, LeastLoadedRouter,
                      Router, make_router)
from .sim import (ClusterResult, ClusterSim, HostResult, LinkDown,
                  REROUTE_HOP_NS)
from .topology import (ClusterTopology, Host, HostSpec, POOL_HOP_NS,
                       RECORD_BYTES)
from .traffic import OpenLoopZipfian, Request

__all__ = [
    "CircuitBreaker", "ClusterResult", "ClusterSim", "ClusterTopology",
    "HashShardRouter", "Host", "HostResult", "HostSpec", "HostView",
    "LeastLoadedRouter", "LinkDown", "OpenLoopZipfian", "POOL_HOP_NS",
    "PRESETS", "PoolAllocator", "PoolSlice", "RECORD_BYTES",
    "REROUTE_HOP_NS", "Request", "ResiliencePolicy", "ResilienceStats",
    "RetryBudget", "Router", "SHED_REJECT_NS", "SpillPlan",
    "hedge_delay_ns", "make_policy", "make_router", "parse_policy",
    "plan_spill",
]
