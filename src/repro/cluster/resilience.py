"""Request-level resilience policies for the cluster simulator.

A :class:`ResiliencePolicy` gives :class:`~repro.cluster.sim.ClusterSim`
requests the defenses production fleets run when a CXL link degrades —
the paper's tail-latency story continued past "the tail gets worse"
into "what a service does about it":

* **deadlines** — a per-attempt timeout; a request whose every attempt
  expires is classified ``deadline_exceeded`` instead of dragging the
  open-loop tail unbounded;
* **retries** — bounded re-issues after a deadline expiry, with seeded
  exponential backoff and a fleet-wide retry *budget* (retries per
  admitted request).  An uncapped budget reproduces the metastable
  retry-storm collapse: abandoned attempts still consume server time,
  so goodput falls off a cliff past the saturation knee;
* **hedging** — a tail-latency secondary attempt to another
  pool-capable host after a quantile-derived delay, first-wins cancel
  (the CXL pool is shared fabric memory, so any healthy host can serve
  a pool-resident record);
* **circuit breaking** — an EWMA-latency breaker that ejects sick
  hosts from routing for a cooldown, composing with
  :class:`~repro.cluster.routing.HostView` health.  The breaker never
  ejects the last healthy host;
* **load shedding** — queue-depth admission control with an explicit
  ``rejected`` outcome instead of unbounded queueing.

Every decision is a pure function of ``(seed, config)`` — backoff
jitter and the hedge delay come from the counter-based RNG streams of
:mod:`repro.sim.rng` — so serial and ``--jobs N`` runs stay
byte-identical.  The policy layer emits its own span segments
(``retry.backoff``, ``hedge.wait``, ``shed.reject``, ``deadline.wait``)
through :mod:`repro.telemetry.spans`; see docs/CLUSTER.md for the
knob → scenario field → span segment table.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from ..apps.kvstore.store import (CPU_BASE_NS, CPU_JITTER_SIGMA,
                                  EFFECTIVE_MISSES_MEAN, MISS_JITTER_SIGMA)
from ..errors import ClusterError, unknown_option
from ..sim.rng import substream
from .routing import HostView

# Span segment names the policy layer adds (docs/CLUSTER.md).
RETRY_BACKOFF = "retry.backoff"
"""Exponential-backoff wait before a retry attempt is re-issued."""

HEDGE_WAIT = "hedge.wait"
"""Time the client waited before launching the hedged secondary."""

SHED_REJECT = "shed.reject"
"""Fast-fail turnaround of an admission-control rejection."""

DEADLINE_WAIT = "deadline.wait"
"""One expired attempt window (issue to deadline) of a failed request."""

SHED_REJECT_NS = 1_000.0
"""Balancer fast-fail turnaround: a rejection costs one redirect RTT."""

HEDGE_SAMPLES = 512
"""Service-model samples behind the quantile-derived hedge delay."""

_DURATION_FIELDS = ("deadline_ns", "backoff_base_ns",
                    "breaker_cooldown_ns")

_PARSE_KEYS = {
    "deadline-ns": ("deadline_ns", float),
    "retries": ("retries", int),
    "backoff-ns": ("backoff_base_ns", float),
    "budget": ("retry_budget", float),
    "hedge": ("hedge_quantile", float),
    "breaker": ("breaker_factor", float),
    "breaker-alpha": ("breaker_alpha", float),
    "breaker-min": ("breaker_min_requests", int),
    "breaker-cooldown-ns": ("breaker_cooldown_ns", float),
    "shed": ("shed_inflight", int),
}


@dataclass(frozen=True)
class ResiliencePolicy:
    """One run's declarative request-lifecycle policy.

    Frozen and picklable — it travels into worker processes, result
    cache keys, and scenario documents unchanged, exactly like
    :class:`~repro.faults.FaultPlan`.  A zero value disables the
    corresponding policy; the all-zero policy is indistinguishable from
    no policy at all (:attr:`active` is False and the simulator takes
    the unperturbed fast path).
    """

    deadline_ns: float = 0.0           # 0 = no deadline
    retries: int = 0                   # extra attempts after the first
    backoff_base_ns: float = 2_000.0   # retry backoff base (doubles)
    retry_budget: float | None = None  # retries per admitted request;
    #                                    None = uncapped (storm mode)
    hedge_quantile: float = 0.0        # 0 = hedging off
    breaker_factor: float = 0.0        # 0 = breaker off; opens when
    #                                    EWMA > factor * reference
    breaker_alpha: float = 0.2         # EWMA smoothing weight
    breaker_min_requests: int = 32     # evidence before an open
    breaker_cooldown_ns: float = 400_000.0
    shed_inflight: int = 0             # 0 = shedding off; reject when
    #                                    busy + queued >= this

    def __post_init__(self) -> None:
        for name in _DURATION_FIELDS:
            if getattr(self, name) < 0.0:
                raise ClusterError(f"{name} must be non-negative")
        if self.retries < 0:
            raise ClusterError(
                f"retries must be non-negative: {self.retries}")
        if self.retries > 0 and self.deadline_ns <= 0.0:
            raise ClusterError(
                "retries need a deadline_ns to trigger on")
        if self.retry_budget is not None:
            if self.retry_budget <= 0.0:
                raise ClusterError(
                    f"retry_budget must be positive (or None for "
                    f"uncapped): {self.retry_budget}")
            if self.retries == 0:
                raise ClusterError(
                    "a retry_budget without retries caps nothing")
        if not 0.0 <= self.hedge_quantile < 1.0:
            raise ClusterError(
                f"hedge_quantile must be in [0, 1): "
                f"{self.hedge_quantile}")
        if self.breaker_factor < 0.0:
            raise ClusterError(
                f"breaker_factor must be non-negative: "
                f"{self.breaker_factor}")
        if not 0.0 < self.breaker_alpha <= 1.0:
            raise ClusterError(
                f"breaker_alpha must be in (0, 1]: {self.breaker_alpha}")
        if self.breaker_min_requests < 1:
            raise ClusterError("breaker_min_requests must be >= 1")
        if self.shed_inflight < 0:
            raise ClusterError(
                f"shed_inflight must be non-negative: "
                f"{self.shed_inflight}")

    # -- derived -----------------------------------------------------------

    @property
    def active(self) -> bool:
        """True when this policy can change a run at all.

        The inactive policy keeps the simulator on its unperturbed
        path, so a no-op policy run is byte-identical to a policy-free
        one (mirrors :attr:`~repro.faults.FaultPlan.active`).
        """
        return (self.deadline_ns > 0.0 or self.hedge_quantile > 0.0
                or self.breaker_factor > 0.0 or self.shed_inflight > 0)

    @property
    def hedging(self) -> bool:
        return self.hedge_quantile > 0.0

    @property
    def breaking(self) -> bool:
        return self.breaker_factor > 0.0

    @property
    def shedding(self) -> bool:
        return self.shed_inflight > 0

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-compatible form (cache-key and scenario material)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ResiliencePolicy":
        unknown = set(data) - {f for f, _ in _PARSE_KEYS.values()}
        if unknown:
            raise ClusterError(
                f"unknown ResiliencePolicy field(s): {sorted(unknown)}")
        return cls(**data)

    @classmethod
    def parse(cls, spec: str) -> "ResiliencePolicy":
        """Build a policy from a CLI spec like
        ``deadline-ns=60000,retries=2,budget=0.1``.

        Keys: ``deadline-ns retries backoff-ns budget hedge breaker
        breaker-alpha breaker-min breaker-cooldown-ns shed``.
        """
        fields: dict = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ClusterError(
                    f"resilience spec entries are key=value, "
                    f"got {part!r}")
            key, _, raw = part.partition("=")
            key = key.strip()
            if key not in _PARSE_KEYS:
                raise ClusterError(
                    f"unknown resilience knob {key!r}; available: "
                    f"{' '.join(sorted(_PARSE_KEYS))}")
            field, convert = _PARSE_KEYS[key]
            try:
                fields[field] = convert(raw.strip())
            except ValueError as exc:
                raise ClusterError(
                    f"bad value for {key!r}: {raw.strip()!r}") from exc
        return cls(**fields)


ZERO_POLICY = ResiliencePolicy()
"""The inactive policy: changes nothing, costs nothing."""

PRESETS: dict[str, ResiliencePolicy] = {
    "none": ZERO_POLICY,
    "deadline": ResiliencePolicy(deadline_ns=120_000.0),
    "hedged": ResiliencePolicy(hedge_quantile=0.95,
                               breaker_factor=4.0),
    "guarded": ResiliencePolicy(deadline_ns=120_000.0, retries=2,
                                retry_budget=0.1, shed_inflight=16),
    "unbudgeted": ResiliencePolicy(deadline_ns=120_000.0, retries=3),
}
"""Named policy bundles the CLI and scenario docs can reference."""


def make_policy(name: str) -> ResiliencePolicy:
    """Look up a preset policy by name (mirrors ``make_router``)."""
    if name not in PRESETS:
        raise ClusterError(
            unknown_option("resilience policy", name, PRESETS))
    return PRESETS[name]


def parse_policy(spec: str) -> ResiliencePolicy:
    """A preset name or a ``key=value,...`` spec → policy.

    The ``--resilience`` CLI entry point: ``hedged`` resolves the
    preset, ``deadline-ns=60000,retries=2`` builds a custom policy,
    anything else raises the uniform unknown-option error.
    """
    if "=" in spec:
        return ResiliencePolicy.parse(spec)
    return make_policy(spec)


# --------------------------------------------------------------------------
# Runtime state machines (one instance per simulation run)
# --------------------------------------------------------------------------

class RetryBudget:
    """Fleet-wide retry token accounting.

    A retry is allowed while the total issued so far stays under
    ``ratio`` x the number of admitted requests; ``ratio=None`` is the
    uncapped storm configuration.  State evolves with the (fully
    deterministic) event order of one DES run, so serial and sharded
    sweeps agree.
    """

    def __init__(self, ratio: float | None) -> None:
        self.ratio = ratio
        self.admitted = 0
        self.issued = 0
        self.suppressed = 0

    def note_admitted(self) -> None:
        self.admitted += 1

    def allow(self) -> bool:
        if self.ratio is not None \
                and self.issued >= self.ratio * self.admitted:
            self.suppressed += 1
            return False
        self.issued += 1
        return True


class CircuitBreaker:
    """Per-host EWMA-latency breaker over attempt sojourn times.

    Observes every attempt's issue-to-completion latency (queue wait
    included — that *is* the sickness signal) and opens a host for
    ``cooldown_ns`` once its EWMA exceeds ``factor`` x the unloaded
    reference service time with at least ``min_requests`` of evidence.
    Opening resets the host's EWMA so a re-open needs fresh
    post-cooldown evidence.

    :meth:`filter_views` marks open hosts down for routing — but never
    the last healthy host: a breaker that can empty the fleet converts
    a slow host into a total outage, which is strictly worse.
    """

    def __init__(self, policy: ResiliencePolicy, num_hosts: int, *,
                 reference_ns: float) -> None:
        self.factor = policy.breaker_factor
        self.alpha = policy.breaker_alpha
        self.min_requests = policy.breaker_min_requests
        self.cooldown_ns = policy.breaker_cooldown_ns
        self.reference_ns = reference_ns
        self.ewma = [0.0] * num_hosts
        self.count = [0] * num_hosts
        self.open_until = [0.0] * num_hosts
        self.opens = 0

    def observe(self, host: int, latency_ns: float,
                now: float) -> None:
        if self.count[host] == 0:
            self.ewma[host] = latency_ns
        else:
            self.ewma[host] = self.alpha * latency_ns \
                + (1.0 - self.alpha) * self.ewma[host]
        self.count[host] += 1
        if (self.count[host] >= self.min_requests
                and self.ewma[host] > self.factor * self.reference_ns
                and now >= self.open_until[host]):
            self.open_until[host] = now + self.cooldown_ns
            self.opens += 1
            self.count[host] = 0
            self.ewma[host] = 0.0

    def is_open(self, host: int, now: float) -> bool:
        return now < self.open_until[host]

    def filter_views(self, views: list[HostView],
                     now: float) -> list[HostView]:
        """Routing views with open hosts marked down — unless that
        would leave zero healthy hosts."""
        ejectable = [view.index for view in views
                     if view.up and self.is_open(view.index, now)]
        if not ejectable:
            return views
        healthy = sum(1 for view in views if view.up)
        if healthy - len(ejectable) < 1:
            return views           # never eject the last healthy host
        ejected = set(ejectable)
        return [HostView(view.index,
                         up=view.up and view.index not in ejected,
                         in_flight=view.in_flight) for view in views]


def hedge_delay_ns(seed: int, quantile: float, *,
                   miss_ns: float) -> float:
    """The hedge launch delay: a quantile of the unloaded service model.

    Draws a fixed :data:`HEDGE_SAMPLES`-point sample of the kvstore
    service-time model (CPU work plus dependent misses at ``miss_ns``
    each) from the dedicated ``cluster/hedge`` substream and takes the
    requested percentile — a pure function of ``(seed, quantile,
    miss_ns)``, so every worker computes the identical delay.
    """
    rng = substream("cluster/hedge", seed)
    cpu = CPU_BASE_NS * rng.lognormal(0.0, CPU_JITTER_SIGMA,
                                      size=HEDGE_SAMPLES)
    misses = EFFECTIVE_MISSES_MEAN * rng.lognormal(
        0.0, MISS_JITTER_SIGMA, size=HEDGE_SAMPLES)
    return float(np.quantile(cpu + misses * miss_ns,
                             quantile))


@dataclass(frozen=True)
class ResilienceStats:
    """Fleet-wide request-outcome accounting of one policied run.

    ``ok + ok_retried + ok_hedged + deadline_exceeded + rejected``
    equals the run's request count — every request lands in exactly one
    outcome bucket.
    """

    ok: int = 0                        # first attempt won, unhedged win
    ok_retried: int = 0                # a retry attempt won
    ok_hedged: int = 0                 # the hedged secondary won
    deadline_exceeded: int = 0         # every attempt timed out
    rejected: int = 0                  # shed by admission control
    retries_issued: int = 0
    retries_suppressed: int = 0        # denied by the retry budget
    hedges_launched: int = 0
    hedge_wins: int = 0
    breaker_opens: int = 0
    wasted_ns: float = 0.0             # service burned by losing attempts

    @property
    def successes(self) -> int:
        return self.ok + self.ok_retried + self.ok_hedged

    @property
    def failures(self) -> int:
        return self.deadline_exceeded + self.rejected

    def to_dict(self) -> dict:
        return asdict(self)
