"""The :class:`PoolAllocator`: one shared CXL memory pool, carved up.

A disaggregated CXL pool exposes one large HDM range; every host that
joins the pool gets a contiguous *slice* of it (the CXL 2.0/3.0
multi-headed-device model that CXL-DMSim and CXLRAMSim study).  The
allocator here is deliberately small and exact:

* **bump carving** — slices are handed out in address order, never
  overlap, and release only reclaims bytes (addresses are not reused,
  mirroring how MLD capacity is fenced off per logical device);
* **capacity accounting** — a carve that would overcommit the pool
  raises :class:`~repro.errors.ClusterError` instead of silently
  thin-provisioning, and :meth:`utilization` is always the exact ratio
  of live bytes to pool bytes;
* **spill planning** — :func:`plan_spill` splits one host's working set
  between its local DRAM budget and the pool, which is how the cluster
  experiments turn a "pool share" axis into per-host HDM slices.

Everything is a plain value or a frozen dataclass, so pool layouts
travel into worker processes and result payloads unchanged (the same
picklability contract as :class:`~repro.faults.FaultPlan`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ClusterError


@dataclass(frozen=True)
class PoolSlice:
    """One host's HDM window into the shared pool."""

    host: str
    base: int                          # byte offset inside the pool HDM
    size: int                          # bytes

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ClusterError(f"slice base must be >= 0: {self.base}")
        if self.size <= 0:
            raise ClusterError(f"slice size must be positive: {self.size}")

    @property
    def end(self) -> int:
        return self.base + self.size

    def overlaps(self, other: "PoolSlice") -> bool:
        return self.base < other.end and other.base < self.end


@dataclass(frozen=True)
class SpillPlan:
    """How one host's bytes split across local DRAM and the pool."""

    local_bytes: int
    pool_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.local_bytes + self.pool_bytes

    @property
    def pool_fraction(self) -> float:
        """Fraction of the host's data living in the pool."""
        if self.total_bytes == 0:
            return 0.0
        return self.pool_bytes / self.total_bytes


def plan_spill(demand_bytes: int, local_capacity_bytes: int) -> SpillPlan:
    """Fill local DRAM first; whatever does not fit spills to the pool."""
    if demand_bytes < 0:
        raise ClusterError(f"demand must be >= 0: {demand_bytes}")
    if local_capacity_bytes < 0:
        raise ClusterError(
            f"local capacity must be >= 0: {local_capacity_bytes}")
    local = min(demand_bytes, local_capacity_bytes)
    return SpillPlan(local_bytes=local, pool_bytes=demand_bytes - local)


class PoolAllocator:
    """Carves a fixed-capacity CXL pool into per-host HDM slices."""

    def __init__(self, pool_bytes: int) -> None:
        if pool_bytes <= 0:
            raise ClusterError(f"pool must have capacity: {pool_bytes}")
        self.pool_bytes = pool_bytes
        self._cursor = 0               # next free address (bump pointer)
        self._live: dict[int, PoolSlice] = {}   # base -> slice
        self._freed_bytes = 0

    # -- carving -----------------------------------------------------------

    def carve(self, host: str, size: int) -> PoolSlice:
        """Hand ``host`` a fresh slice of ``size`` bytes.

        Carves are satisfied strictly in address order and never
        overlap; an allocation past the pool's end (accounting for
        bytes already released) is an error, not a shrink.
        """
        if size <= 0:
            raise ClusterError(
                f"carve size must be positive: {size} (host {host!r})")
        if self.allocated_bytes + size > self.pool_bytes:
            raise ClusterError(
                f"pool overcommit: {host!r} wants {size} bytes, only "
                f"{self.free_bytes} of {self.pool_bytes} free")
        piece = PoolSlice(host=host, base=self._cursor, size=size)
        self._cursor += size
        self._live[piece.base] = piece
        return piece

    def release(self, piece: PoolSlice) -> None:
        """Return a slice's bytes to the capacity budget (idempotent
        misuse is an error: a slice can only be released once)."""
        live = self._live.get(piece.base)
        if live != piece:
            raise ClusterError(
                f"release of unknown slice {piece.host!r}@{piece.base}")
        del self._live[piece.base]
        self._freed_bytes += piece.size

    # -- accounting --------------------------------------------------------

    @property
    def slices(self) -> list[PoolSlice]:
        """Live slices in address order."""
        return [self._live[base] for base in sorted(self._live)]

    @property
    def allocated_bytes(self) -> int:
        """Live bytes (carved minus released)."""
        return self._cursor - self._freed_bytes

    @property
    def free_bytes(self) -> int:
        return self.pool_bytes - self.allocated_bytes

    def utilization(self) -> float:
        """Live bytes as a fraction of pool capacity, in [0, 1]."""
        return self.allocated_bytes / self.pool_bytes

    def slice_of(self, host: str) -> PoolSlice | None:
        """The (single) live slice of ``host``, or ``None``."""
        for piece in self._live.values():
            if piece.host == host:
                return piece
        return None
