"""Open-loop zipfian client traffic for the cluster.

The generator models an aggregate fleet of clients pushing a fixed
offered load (QPS) at the cluster, independent of how fast the cluster
answers — the *open-loop* discipline the paper's tail-latency
methodology calls for (a closed loop would self-throttle exactly when
queues build, hiding the p99 knee).

All randomness is **pre-drawn** at construction from named substreams
(:func:`repro.sim.rng.substream`), indexed by request: arrival gaps,
key ranks, and write flags each come from their own stream.  Simulation
order can never perturb the draws, which is what makes serial and
``--jobs N`` cluster runs byte-identical and makes the trace a pure
function of ``(seed, stream, parameters)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ClusterError
from ..sim.rng import DEFAULT_SEED, substream
from ..workloads.distributions import ZipfianKeys


@dataclass(frozen=True)
class Request:
    """One client request, placed on the arrival timeline."""

    index: int
    arrival_ns: float
    key: int                           # global key in [0, keyspace)
    is_write: bool


class OpenLoopZipfian:
    """Poisson arrivals at a fixed QPS over a scrambled-Zipfian keyspace.

    ``qps`` is the *offered* cluster-wide rate: inter-arrival gaps are
    exponential with mean ``1e9 / qps`` nanoseconds.  Keys are drawn
    with Gray et al.'s rejection-free Zipfian (``theta`` = skew, YCSB's
    0.99 by default) and FNV-scrambled across the keyspace, so hot keys
    land uniformly over the cluster's shards.
    """

    def __init__(self, *, qps: float, num_requests: int, keyspace: int,
                 theta: float = 0.99, write_fraction: float = 0.05,
                 seed: int = DEFAULT_SEED, stream: str = "cluster") -> None:
        if qps <= 0:
            raise ClusterError(f"offered qps must be positive: {qps}")
        if num_requests <= 0:
            raise ClusterError(
                f"num_requests must be positive: {num_requests}")
        if not 0.0 <= write_fraction <= 1.0:
            raise ClusterError(
                f"write_fraction must be in [0, 1]: {write_fraction}")
        self.qps = qps
        self.num_requests = num_requests
        self.keyspace = keyspace
        self.theta = theta
        self.write_fraction = write_fraction
        self.seed = seed
        self.stream = stream

        gaps = substream(f"{stream}/arrivals", seed).exponential(
            1e9 / qps, size=num_requests)
        self.arrival_ns = np.cumsum(gaps)

        chooser = ZipfianKeys(keyspace, theta)
        key_rng = substream(f"{stream}/keys", seed)
        self.keys = np.fromiter(
            (chooser.next_key(key_rng) for _ in range(num_requests)),
            dtype=np.int64, count=num_requests)

        self.writes = substream(f"{stream}/writes", seed).random(
            num_requests) < write_fraction

    def requests(self) -> list[Request]:
        """The trace as arrival-ordered :class:`Request` records."""
        return [Request(index=i, arrival_ns=float(self.arrival_ns[i]),
                        key=int(self.keys[i]), is_write=bool(self.writes[i]))
                for i in range(self.num_requests)]

    @property
    def duration_ns(self) -> float:
        """Timeline span from t=0 to the last arrival."""
        return float(self.arrival_ns[-1])

    def offered_qps(self) -> float:
        """Realized arrival rate of the drawn trace (≈ ``qps``)."""
        return self.num_requests / (self.duration_ns / 1e9)
