"""Pluggable request routing for the cluster load balancer.

Two policies cover the regimes the cluster experiments need:

* :class:`HashShardRouter` — classic key-affinity routing: every key
  has one home shard (its partition owner) and requests go there.
  Deterministic, cache-friendly, and the baseline real KV fleets run.
* :class:`LeastLoadedRouter` — pool-aware routing: because the CXL
  pool is shared, *any* host can serve a pool-resident record over its
  own CXL link, so the balancer may send a request to the least-loaded
  host instead of the owner.  Only pool-resident requests are routed at
  all — a local-DRAM-resident record exists solely in its owner's
  address space, so the simulator pins those to the owner.

Routers never see simulation internals — they pick from a list of
:class:`HostView` snapshots (up/down, in-flight depth), which keeps
them unit-testable and keeps routing decisions deterministic for a
fixed arrival order.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ClusterError, unknown_option
from ..workloads.distributions import fnv1a_64


@dataclass
class HostView:
    """What a router may observe about one host."""

    index: int
    up: bool = True                    # CXL link (and host) healthy
    in_flight: int = 0                 # busy slots + queued requests


class Router:
    """Base class: picks a host index for a keyed request."""

    name = "router"

    def route(self, key: int, owner: int,
              hosts: list[HostView]) -> int:
        raise NotImplementedError

    @staticmethod
    def survivors(hosts: list[HostView]) -> list[HostView]:
        alive = [host for host in hosts if host.up]
        if not alive:
            raise ClusterError("no surviving hosts to route to")
        return alive


class HashShardRouter(Router):
    """Key-affinity routing with deterministic failover probing.

    The owner shard serves its keys; when the owner is marked down the
    request probes forward (owner+1, owner+2, …) to the first healthy
    host — the same deterministic rehash every replica would compute,
    so parallel and serial runs agree without coordination.
    """

    name = "hash-shard"

    def route(self, key: int, owner: int,
              hosts: list[HostView]) -> int:
        total = len(hosts)
        for probe in range(total):
            candidate = (owner + probe) % total
            if hosts[candidate].up:
                return candidate
        raise ClusterError("no surviving hosts to route to")


class LeastLoadedRouter(Router):
    """Route to the healthy host with the fewest requests in flight.

    Ties break toward the owner (affinity is free when load is equal),
    then toward the lowest index — a total order, so the same arrival
    sequence always routes identically.
    """

    name = "least-loaded"

    def route(self, key: int, owner: int,
              hosts: list[HostView]) -> int:
        alive = self.survivors(hosts)
        return min(alive,
                   key=lambda host: (host.in_flight,
                                     host.index != owner,
                                     host.index)).index


ROUTERS: dict[str, type[Router]] = {
    HashShardRouter.name: HashShardRouter,
    LeastLoadedRouter.name: LeastLoadedRouter,
}


def make_router(name: str) -> Router:
    """Instantiate a registered routing policy by name."""
    if name not in ROUTERS:
        raise ClusterError(unknown_option("router", name, ROUTERS))
    return ROUTERS[name]()


def scramble(key: int) -> int:
    """The key-to-hashspace scrambler routing and residency share."""
    return fnv1a_64(key)
