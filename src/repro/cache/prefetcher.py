"""A stream prefetcher model.

MEMO "optionally enable[s] or disable[s] prefetching within the cores"
(§4.1) and disables it for every latency test (Fig. 2 caption).  The
model tracks per-stream stride detection and reports the fraction of a
given access pattern it would cover — the perfmodel uses that coverage to
hide memory latency on sequential bandwidth runs.
"""

from __future__ import annotations

from ..units import CACHELINE


class StreamPrefetcher:
    """Detects constant-stride streams and prefetches ahead of them."""

    def __init__(self, *, enabled: bool = True, streams: int = 16,
                 distance_lines: int = 16,
                 confirmations_needed: int = 2) -> None:
        if streams <= 0 or distance_lines <= 0 or confirmations_needed <= 0:
            raise ValueError("prefetcher parameters must be positive")
        self.enabled = enabled
        self.max_streams = streams
        self.distance_lines = distance_lines
        self.confirmations_needed = confirmations_needed
        # stream id -> (last line, stride in lines, confirmations)
        self._streams: dict[int, tuple[int, int, int]] = {}
        self.issued = 0
        self.useful_window: set[int] = set()

    def observe(self, address: int) -> list[int]:
        """Feed one demand access; returns line addresses to prefetch."""
        if not self.enabled:
            return []
        line = address // CACHELINE
        # 4 KiB page-based stream binning, like real L2 prefetchers.
        stream_id = line // 64
        prefetches: list[int] = []
        state = self._streams.get(stream_id)
        if state is None:
            if len(self._streams) >= self.max_streams:
                self._streams.pop(next(iter(self._streams)))
            self._streams[stream_id] = (line, 0, 0)
            return []
        last, stride, confirmations = state
        new_stride = line - last
        if new_stride != 0 and new_stride == stride:
            confirmations += 1
        elif new_stride != 0:
            stride, confirmations = new_stride, 1
        if confirmations >= self.confirmations_needed and stride != 0:
            ahead = range(1, self.distance_lines + 1)
            prefetches = [(line + stride * k) * CACHELINE for k in ahead
                          if line + stride * k >= 0]
            self.issued += len(prefetches)
        self._streams[stream_id] = (line, stride, confirmations)
        return prefetches

    def coverage(self, *, sequential: bool) -> float:
        """Fraction of demand misses a warmed-up prefetcher hides.

        Sequential streams are almost fully covered (the value real L2
        stream prefetchers reach); anything else gets nothing — stride
        detection cannot lock onto random or dependent chains.
        """
        if not self.enabled:
            return 0.0
        return 0.85 if sequential else 0.0
