"""The MESI state machine, with RFO made explicit.

Transitions are pure functions returning ``(new_state, bus_actions)``,
where bus actions name the memory traffic implied:

* ``"fill"`` — read the line from the level below (a MemRd on CXL);
* ``"rfo"`` — read-for-ownership: fetch with intent to modify;
* ``"writeback"`` — push dirty data down (a MemWr on CXL);
* ``"invalidate"`` — drop other caches' copies.

The paper leans on exactly this accounting: "RFO requires extra core
resources and additional flit round trips for both loading and evicting a
cache line compared to non-temporal stores" (§4.3.1).
"""

from __future__ import annotations

from ..errors import CacheError
from .cacheline import MesiState

BusActions = tuple[str, ...]


class MesiCoherence:
    """MESI transitions for a single cache holding one copy of a line."""

    @staticmethod
    def on_load(state: MesiState) -> tuple[MesiState, BusActions]:
        """CPU load.  Misses fill from below; hits keep their state."""
        if state is MesiState.INVALID:
            # Single-socket model: fills arrive Exclusive (no sharer).
            return MesiState.EXCLUSIVE, ("fill",)
        return state, ()

    @staticmethod
    def on_store(state: MesiState) -> tuple[MesiState, BusActions]:
        """CPU temporal store: write-allocate with RFO."""
        if state is MesiState.INVALID:
            return MesiState.MODIFIED, ("rfo",)
        if state is MesiState.SHARED:
            return MesiState.MODIFIED, ("invalidate",)
        return MesiState.MODIFIED, ()

    @staticmethod
    def on_nt_store(state: MesiState) -> tuple[MesiState, BusActions]:
        """Non-temporal store: write around the cache.

        Any resident copy must be dropped (written back first if dirty)
        so the cache never holds stale data; the store itself goes
        straight to memory.
        """
        if state is MesiState.MODIFIED:
            return MesiState.INVALID, ("writeback", "nt-write")
        if state.is_valid:
            return MesiState.INVALID, ("nt-write",)
        return MesiState.INVALID, ("nt-write",)

    @staticmethod
    def on_clflush(state: MesiState) -> tuple[MesiState, BusActions]:
        """clflush: invalidate, writing back first if dirty."""
        if state is MesiState.MODIFIED:
            return MesiState.INVALID, ("writeback",)
        return MesiState.INVALID, ()

    @staticmethod
    def on_clwb(state: MesiState) -> tuple[MesiState, BusActions]:
        """clwb: write back dirty data but *keep* the line (unlike clflush)."""
        if state is MesiState.MODIFIED:
            # Retained clean: E in this single-cache model.
            return MesiState.EXCLUSIVE, ("writeback",)
        return state, ()

    @staticmethod
    def on_eviction(state: MesiState) -> tuple[MesiState, BusActions]:
        """Capacity eviction: dirty lines write back, clean ones drop."""
        if state is MesiState.INVALID:
            raise CacheError("evicting an invalid line")
        if state is MesiState.MODIFIED:
            return MesiState.INVALID, ("writeback",)
        return MesiState.INVALID, ()

    @classmethod
    def validate_transition(cls, before: MesiState, event: str,
                            after: MesiState) -> None:
        """Assert that ``before --event--> after`` is a legal transition."""
        handlers = {
            "load": cls.on_load,
            "store": cls.on_store,
            "nt_store": cls.on_nt_store,
            "clflush": cls.on_clflush,
            "clwb": cls.on_clwb,
            "eviction": cls.on_eviction,
        }
        if event not in handlers:
            raise CacheError(f"unknown coherence event: {event}")
        expected, _ = handlers[event](before)
        if expected is not after:
            raise CacheError(
                f"illegal MESI transition {before.value} --{event}--> "
                f"{after.value} (expected {expected.value})")
