"""CPU cache hierarchy with MESI coherence.

The cache model serves three roles in the reproduction:

* **RFO accounting** — temporal stores read-for-ownership before writing,
  doubling bus traffic versus non-temporal stores (§4.2); the MESI state
  machine in :mod:`~repro.cache.coherence` makes that explicit.
* **Flush semantics** — MEMO's latency probe flushes a line
  (``clflush`` + ``mfence``) before timing the access (§4.2);
  :class:`~repro.cache.hierarchy.CacheHierarchy` implements ``clflush`` /
  ``clwb`` with inclusive levels.
* **WSS staircase** — pointer chasing latency versus working-set size
  crosses L1/L2/LLC capacities (Fig. 2 right);
  :meth:`~repro.cache.hierarchy.CacheHierarchy.hit_fractions` provides
  the analytic hit distribution behind that curve.
"""

from .cacheline import CacheLine, MesiState
from .coherence import MesiCoherence
from .cache import SetAssociativeCache
from .hierarchy import AccessResult, CacheHierarchy
from .prefetcher import StreamPrefetcher

__all__ = [
    "MesiState",
    "CacheLine",
    "MesiCoherence",
    "SetAssociativeCache",
    "CacheHierarchy",
    "AccessResult",
    "StreamPrefetcher",
]
