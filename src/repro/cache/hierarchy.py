"""The three-level hierarchy: functional simulation + analytic hit model.

Two complementary interfaces:

* **Functional** — :meth:`CacheHierarchy.load` / :meth:`store` /
  :meth:`nt_store` / :meth:`clflush` / :meth:`clwb` simulate real line
  movement and report which level hit and what memory traffic resulted.
  MEMO's latency probes run on this.
* **Analytic** — :meth:`hit_fractions` estimates, for a working set
  chased uniformly, what fraction of accesses each level serves.  The
  pointer-chase-vs-WSS staircase (Fig. 2 right) is computed from this
  rather than simulating millions of accesses.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import CacheConfig
from ..errors import CacheError
from ..telemetry import NULL_TELEMETRY, Telemetry
from .cache import SetAssociativeCache
from .cacheline import MesiState, line_address


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one functional access."""

    level: str                  # "L1d", "L2", "LLC", or "memory"
    hit: bool                   # False when served by memory
    latency_ns: float           # hierarchy traversal time (no memory time)
    memory_reads: int = 0       # 64 B fills/RFOs sent below the LLC
    memory_writes: int = 0      # 64 B writebacks / nt-stores sent below


class CacheHierarchy:
    """L1d + L2 + inclusive LLC of one core's view of one socket."""

    def __init__(self, config: CacheConfig, *,
                 telemetry: Telemetry | None = None) -> None:
        self.config = config
        self.telemetry = telemetry if telemetry is not None \
            else NULL_TELEMETRY
        self._registry = self.telemetry.registry
        self.l1 = SetAssociativeCache(config.l1)
        self.l2 = SetAssociativeCache(config.l2)
        self.llc = SetAssociativeCache(config.llc)
        self.levels = [self.l1, self.l2, self.llc]
        # Dirty evictions cascade down; only the LLC's reach memory.
        self.memory_writebacks = 0
        self.l1.eviction_sink = lambda addr: self._absorb_dirty(
            self.l2, addr)
        self.l2.eviction_sink = lambda addr: self._absorb_dirty(
            self.llc, addr)
        self.llc.eviction_sink = self._count_memory_writeback

    def _absorb_dirty(self, cache: SetAssociativeCache,
                      address: int) -> None:
        """A dirty line evicted above lands MODIFIED in ``cache``."""
        cache.install(address, MesiState.MODIFIED)

    def _count_memory_writeback(self, address: int) -> None:
        del address
        self.memory_writebacks += 1
        self._registry.counter("cache.memory_writebacks").inc()

    def _count(self, result: AccessResult) -> AccessResult:
        """Mirror one functional access into the telemetry registry."""
        registry = self._registry
        level = result.level.lower()
        registry.counter(f"cache.{level}.serviced").inc()
        if result.memory_reads:
            registry.counter("cache.memory_reads").inc(
                result.memory_reads)
        if result.memory_writes:
            registry.counter("cache.memory_writes").inc(
                result.memory_writes)
        return result

    # -- functional interface ---------------------------------------------

    def load(self, address: int) -> AccessResult:
        """A demand load; fills all levels on the way back (inclusive)."""
        aligned = line_address(address)
        latency = 0.0
        for cache in self.levels:
            latency += cache.config.latency_ns
            if cache.contains(aligned):
                cache.access(aligned, write=False)
                self._fill_above(cache, aligned, MesiState.EXCLUSIVE)
                return self._count(AccessResult(cache.name, True, latency))
        for cache in self.levels:
            cache.install(aligned, MesiState.EXCLUSIVE)
        return self._count(
            AccessResult("memory", False, latency, memory_reads=1))

    def store(self, address: int) -> AccessResult:
        """A temporal store: write-allocate with RFO on miss.

        The dirty copy lives in L1 only; lower levels hold the line
        clean (Exclusive).  Dirty data reaches them through eviction
        cascades, and reaches memory only from the LLC — which is what
        makes bus-traffic accounting honest (one writeback per line).
        """
        aligned = line_address(address)
        latency = 0.0
        hit_cache = None
        for cache in self.levels:
            latency += cache.config.latency_ns
            if cache.contains(aligned):
                hit_cache = cache
                break
        if hit_cache is self.l1:
            self.l1.access(aligned, write=True)
            return self._count(AccessResult(self.l1.name, True, latency))
        for cache in self.levels:
            if cache is hit_cache:
                break
            state = MesiState.MODIFIED if cache is self.l1 \
                else MesiState.EXCLUSIVE
            cache.install(aligned, state)
        if hit_cache is not None:
            return self._count(
                AccessResult(hit_cache.name, True, latency))
        # Miss everywhere: the RFO reads the line from memory.
        return self._count(
            AccessResult("memory", False, latency, memory_reads=1))

    def nt_store(self, address: int) -> AccessResult:
        """A non-temporal store: bypasses the hierarchy entirely.

        Any resident copy is dropped (dirty copies write back first) to
        preserve coherence, then one 64 B write goes straight to memory —
        no RFO, no allocation (§4.2).
        """
        aligned = line_address(address)
        extra_writebacks = sum(
            1 for cache in self.levels if cache.flush(aligned))
        return self._count(
            AccessResult("memory", False, 0.0,
                         memory_writes=1 + extra_writebacks))

    def clflush(self, address: int) -> int:
        """Flush a line from every level; returns writebacks performed."""
        aligned = line_address(address)
        return sum(1 for cache in self.levels if cache.flush(aligned))

    def clwb(self, address: int) -> int:
        """Write back dirty copies, keeping lines resident."""
        aligned = line_address(address)
        return sum(1 for cache in self.levels if cache.writeback(aligned))

    def _fill_above(self, hit_cache: SetAssociativeCache, aligned: int,
                    state: MesiState) -> None:
        for cache in self.levels:
            if cache is hit_cache:
                break
            cache.install(aligned, state)

    def check_inclusion(self) -> None:
        """Inclusive-LLC invariant: every L1/L2 line is also in the LLC."""
        for upper in (self.l1, self.l2):
            for upper_set in upper._sets:
                for aligned in upper_set:
                    if not self.llc.contains(aligned):
                        raise CacheError(
                            f"{upper.name} line {aligned:#x} missing from "
                            "inclusive LLC")

    # -- analytic interface ----------------------------------------------

    def hit_fractions(self, working_set_bytes: int) -> dict[str, float]:
        """Steady-state hit distribution for a uniform chase over a WSS.

        Each level of capacity ``C`` captures ``min(1, C/WSS)`` of
        accesses not already captured above it — the standard stacked-
        capacity approximation.  Returns fractions for "L1d"/"L2"/"LLC"/
        "memory" summing to 1.
        """
        if working_set_bytes <= 0:
            raise CacheError(
                f"working set must be positive: {working_set_bytes}")
        remaining = 1.0
        fractions: dict[str, float] = {}
        for cache in self.levels:
            capture = min(1.0, cache.config.capacity_bytes
                          / working_set_bytes)
            fractions[cache.name] = remaining * capture
            remaining *= 1.0 - capture
        fractions["memory"] = remaining
        return fractions

    def expected_latency_ns(self, working_set_bytes: int,
                            memory_latency_ns: float) -> float:
        """Average dependent-access latency for a WSS (the Fig-2 staircase).

        A hit at level i pays the traversal up to that level; a miss pays
        the full hierarchy traversal plus ``memory_latency_ns``.
        """
        fractions = self.hit_fractions(working_set_bytes)
        total = 0.0
        traversal = 0.0
        for cache in self.levels:
            traversal += cache.config.latency_ns
            total += fractions[cache.name] * traversal
        total += fractions["memory"] * (traversal + memory_latency_ns)
        return total
