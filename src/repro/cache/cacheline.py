"""Cachelines and their MESI states."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..units import CACHELINE


class MesiState(enum.Enum):
    """The four MESI coherence states (§4.2 mentions CXL's MESI protocol)."""

    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"

    @property
    def is_valid(self) -> bool:
        return self is not MesiState.INVALID

    @property
    def is_dirty(self) -> bool:
        """Only M holds data the memory below does not."""
        return self is MesiState.MODIFIED

    @property
    def can_write_silently(self) -> bool:
        """States allowing a store without a bus transaction."""
        return self in (MesiState.MODIFIED, MesiState.EXCLUSIVE)


@dataclass
class CacheLine:
    """One resident line: an aligned address plus its coherence state."""

    address: int
    state: MesiState = MesiState.INVALID
    last_touch: int = 0     # LRU timestamp maintained by the owning set

    def __post_init__(self) -> None:
        if self.address % CACHELINE:
            raise ValueError(
                f"line address {self.address:#x} not {CACHELINE}-byte aligned")

    @property
    def tag(self) -> int:
        return self.address // CACHELINE


def line_address(byte_address: int) -> int:
    """The aligned line address containing ``byte_address``."""
    if byte_address < 0:
        raise ValueError(f"negative address: {byte_address}")
    return byte_address - byte_address % CACHELINE
