"""A set-associative cache level with LRU replacement."""

from __future__ import annotations

from dataclasses import dataclass

from ..config import CacheLevelConfig
from ..errors import CacheError
from .cacheline import CacheLine, MesiState, line_address
from .coherence import MesiCoherence


@dataclass
class CacheStats:
    """Hit/miss/traffic counters for one level."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if not self.accesses:
            raise CacheError("hit rate of an untouched cache")
        return self.hits / self.accesses


class SetAssociativeCache:
    """One cache level: ``num_sets`` x ``ways`` of 64 B lines, LRU."""

    def __init__(self, config: CacheLevelConfig) -> None:
        self.config = config
        self.stats = CacheStats()
        self._sets: list[dict[int, CacheLine]] = [
            {} for _ in range(config.num_sets)]
        self._clock = 0
        # Where dirty evictions land: the next level installs the line
        # MODIFIED; the LLC's sink counts a memory writeback.  None means
        # "standalone cache" (dirty evictions counted locally only).
        self.eviction_sink = None

    @property
    def name(self) -> str:
        return self.config.name

    def _set_index(self, address: int) -> int:
        return (address // self.config.line_bytes) % self.config.num_sets

    def _touch(self, line: CacheLine) -> None:
        self._clock += 1
        line.last_touch = self._clock

    # -- queries ---------------------------------------------------------

    def lookup(self, address: int) -> CacheLine | None:
        """The resident line containing ``address``, or None (no side effects)."""
        aligned = line_address(address)
        return self._sets[self._set_index(aligned)].get(aligned)

    def contains(self, address: int) -> bool:
        line = self.lookup(address)
        return line is not None and line.state.is_valid

    def resident_lines(self) -> int:
        """Total valid lines (for occupancy assertions in tests)."""
        return sum(len(s) for s in self._sets)

    # -- operations ------------------------------------------------------

    def access(self, address: int, *, write: bool) -> bool:
        """Load or temporal-store access.  Returns True on hit.

        On a miss the line is installed (write-allocate), evicting the
        LRU way if the set is full.  Coherence side effects follow
        :class:`MesiCoherence`.
        """
        aligned = line_address(address)
        line = self.lookup(aligned)
        if line is not None and line.state.is_valid:
            self.stats.hits += 1
            transition = (MesiCoherence.on_store if write
                          else MesiCoherence.on_load)
            line.state, _ = transition(line.state)
            self._touch(line)
            return True

        self.stats.misses += 1
        new_state = MesiState.MODIFIED if write else MesiState.EXCLUSIVE
        self._install(aligned, new_state)
        return False

    def install(self, address: int, state: MesiState) -> None:
        """Install a line in a given state (used by fills from below)."""
        if not state.is_valid:
            raise CacheError("cannot install an invalid line")
        self._install(line_address(address), state)

    def _install(self, aligned: int, state: MesiState) -> None:
        target_set = self._sets[self._set_index(aligned)]
        if aligned not in target_set and len(target_set) >= self.config.ways:
            victim = min(target_set.values(), key=lambda l: l.last_touch)
            self._evict(victim)
        line = target_set.get(aligned)
        if line is None:
            line = CacheLine(aligned, state)
            target_set[aligned] = line
        else:
            line.state = state
        self._touch(line)

    def _evict(self, victim: CacheLine) -> None:
        _, actions = MesiCoherence.on_eviction(victim.state)
        self.stats.evictions += 1
        del self._sets[self._set_index(victim.address)][victim.address]
        if "writeback" in actions:
            self.stats.writebacks += 1
            if self.eviction_sink is not None:
                self.eviction_sink(victim.address)

    def flush(self, address: int) -> bool:
        """clflush one line.  Returns True if a dirty copy was written back."""
        aligned = line_address(address)
        line = self.lookup(aligned)
        if line is None or not line.state.is_valid:
            return False
        _, actions = MesiCoherence.on_clflush(line.state)
        dirty = "writeback" in actions
        if dirty:
            self.stats.writebacks += 1
        del self._sets[self._set_index(aligned)][aligned]
        return dirty

    def writeback(self, address: int) -> bool:
        """clwb one line: push dirty data down, keep the line resident."""
        aligned = line_address(address)
        line = self.lookup(aligned)
        if line is None or not line.state.is_valid:
            return False
        state, actions = MesiCoherence.on_clwb(line.state)
        line.state = state
        dirty = "writeback" in actions
        if dirty:
            self.stats.writebacks += 1
        return dirty

    def invalidate(self, address: int) -> None:
        """Drop a line without writeback (nt-store / external invalidate)."""
        aligned = line_address(address)
        target_set = self._sets[self._set_index(aligned)]
        target_set.pop(aligned, None)

    def check_invariants(self) -> None:
        """Structural invariants; cheap enough for property tests."""
        for index, target_set in enumerate(self._sets):
            if len(target_set) > self.config.ways:
                raise CacheError(
                    f"{self.name} set {index} holds {len(target_set)} lines "
                    f"> {self.config.ways} ways")
            for aligned, line in target_set.items():
                if line.address != aligned:
                    raise CacheError("set key does not match line address")
                if self._set_index(aligned) != index:
                    raise CacheError("line stored in the wrong set")
                if not line.state.is_valid:
                    raise CacheError("invalid line left resident")
