"""Leveled, machine-parseable run events on stderr.

Every line a :class:`RunLog` emits has the same shape::

    <tool> <level> <event> key=value key="quoted value" ...

— one event per line, fields in call order, values quoted only when
they contain whitespace or quotes.  The format is grep-able by humans
and splittable by machines (:meth:`RunLog.parse_line` round-trips it),
which is what lets the live-progress plain-log fallback double as a
structured record of a sweep.

Events go to **stderr only**; stdout belongs to the figures, so serial
and ``--jobs N`` runs stay byte-identical on stdout with logging
enabled (the acceptance bar pinned in ``tests/obs``).

The module also owns the CLI exit-code contract shared by
``repro-experiments``, ``memo``, and ``repro-report``:

* :data:`EXIT_OK` (0) — ran, everything passed;
* :data:`EXIT_FAILED_CHECKS` (1) — ran, but a shape check / validation
  / baseline comparison failed, **or** a supervised unit was poisoned
  (timeout / crash after retries — docs/RESILIENCE.md);
* :data:`EXIT_BAD_ARGS` (2) — refused to run (bad flag, unknown id,
  malformed spec);
* :data:`EXIT_INTERRUPTED` (130) — SIGINT/SIGTERM drained the sweep;
  completed units are journaled and ``--resume`` picks them back up.
"""

from __future__ import annotations

import os
import shlex
import sys
from typing import TextIO

from ..errors import ReproError

EXIT_OK = 0
EXIT_FAILED_CHECKS = 1
EXIT_BAD_ARGS = 2
EXIT_INTERRUPTED = 130                 # 128 + SIGINT, the shell idiom

LEVELS = {"debug": 10, "info": 20, "warn": 30, "error": 40}

LOG_LEVEL_ENV = "REPRO_LOG_LEVEL"
"""Environment override for the default level (e.g. ``error`` in CI
jobs that only want failures)."""


def _format_value(value) -> str:
    """One field value as a logfmt token (quoted only when needed)."""
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        text = format(value, ".6g")
    else:
        text = str(value)
    if text == "" or any(ch in text for ch in ' \t"='):
        return '"' + text.replace("\\", "\\\\").replace('"', '\\"') + '"'
    return text


class RunLog:
    """Emit leveled ``<tool> <level> <event> k=v`` lines to stderr."""

    def __init__(self, tool: str, *, level: str | None = None,
                 stream: TextIO | None = None) -> None:
        if not tool or any(ch.isspace() for ch in tool):
            raise ReproError(f"bad runlog tool name {tool!r}")
        if level is None:
            level = os.environ.get(LOG_LEVEL_ENV, "info")
        if level not in LEVELS:
            raise ReproError(
                f"bad log level {level!r}; choose from {sorted(LEVELS)}")
        self.tool = tool
        self.level = level
        self._stream = stream

    @property
    def stream(self) -> TextIO:
        # Resolved per call so pytest's capsys (which swaps sys.stderr)
        # and late redirections both see the events.
        return self._stream if self._stream is not None else sys.stderr

    def enabled_for(self, level: str) -> bool:
        return LEVELS[level] >= LEVELS[self.level]

    def event(self, level: str, event: str, **fields) -> None:
        """One structured event line (dropped when below the level)."""
        if level not in LEVELS:
            raise ReproError(f"bad event level {level!r}")
        if not self.enabled_for(level):
            return
        parts = [self.tool, level, event]
        parts += [f"{key}={_format_value(value)}"
                  for key, value in fields.items()]
        print(" ".join(parts), file=self.stream, flush=True)

    def debug(self, event: str, **fields) -> None:
        self.event("debug", event, **fields)

    def info(self, event: str, **fields) -> None:
        self.event("info", event, **fields)

    def warn(self, event: str, **fields) -> None:
        self.event("warn", event, **fields)

    def error(self, message: str, *, code: int = EXIT_BAD_ARGS,
              **fields) -> int:
        """Emit an error event and hand back the exit code.

        The consolidated CLI error path: ``return runlog.error(...)``
        replaces the ad-hoc ``print(..., file=sys.stderr)`` scattering,
        and the returned code pins the bad-args-vs-failed-checks
        distinction in one place.
        """
        self.event("error", "error", msg=message, **fields)
        return code

    @staticmethod
    def parse_line(line: str) -> tuple[str, str, str, dict]:
        """``(tool, level, event, fields)`` of one emitted line.

        The machine-parseable half of the contract; tests use it to
        assert on progress streams without string-matching formatting.
        """
        tokens = shlex.split(line)
        if len(tokens) < 3 or tokens[1] not in LEVELS:
            raise ReproError(f"not a runlog line: {line!r}")
        fields: dict = {}
        for token in tokens[3:]:
            if "=" not in token:
                raise ReproError(
                    f"bad field {token!r} in runlog line: {line!r}")
            key, value = token.split("=", 1)
            fields[key] = value
        return tokens[0], tokens[1], tokens[2], fields
