"""Live progress for sweeps: single-line TTY updates, plain-log fallback.

``--jobs N`` runs used to be silent until the whole suite finished.
:class:`ProgressReporter` renders worker completions as they land:

* stderr **is** a TTY — one carriage-return-rewritten status line
  (``[3/14] fig6 2.1s | cache 2h/1m | eta 4.2s``), erased cleanly on
  :meth:`close`.  Repaints are throttled to one per
  :data:`MIN_RENDER_INTERVAL_S` so a sweep of sub-millisecond units
  (fine-grained shards, cache-hit storms) doesn't spend its wall time
  writing to the terminal — retries, failures, and the final
  completion always render regardless;
* stderr is **not** a TTY (CI, redirection, pytest capture) — one
  :class:`~repro.obs.runlog.RunLog` event per completion, so logs stay
  line-oriented and machine-parseable.

Either way nothing is ever written to stdout, which is what keeps
serial and parallel CLI output byte-identical with progress enabled.

:class:`RunHooks` is the glue between the experiment scheduler and the
reporter: the scheduler reports cache hits/misses and unit
start/finish, the hooks collect what the run ledger needs (per-unit
wall seconds, hit/miss lists) and forward display updates.
"""

from __future__ import annotations

import sys
import time
from typing import TextIO

from ..errors import ReproError
from .runlog import RunLog

MIN_RENDER_INTERVAL_S = 0.1
"""Floor between consecutive TTY repaints (seconds)."""


class ProgressReporter:
    """Render ``done/total`` unit progress on stderr with an ETA."""

    def __init__(self, total: int, *, label: str = "experiments",
                 runlog: RunLog | None = None,
                 stream: TextIO | None = None,
                 tty: bool | None = None,
                 clock=time.monotonic,
                 min_render_interval_s: float = MIN_RENDER_INTERVAL_S
                 ) -> None:
        if total < 0:
            raise ReproError(f"total must be >= 0, got {total}")
        self.total = total
        self.label = label
        self.runlog = runlog if runlog is not None else RunLog("progress")
        self._stream = stream
        self._tty = tty
        self.clock = clock
        self.done = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.min_render_interval_s = min_render_interval_s
        self._started = clock()
        self._line_width = 0
        self._last_render: float | None = None
        self._closed = False

    @property
    def stream(self) -> TextIO:
        return self._stream if self._stream is not None else sys.stderr

    @property
    def is_tty(self) -> bool:
        if self._tty is not None:
            return self._tty
        return bool(getattr(self.stream, "isatty", lambda: False)())

    def eta_s(self) -> float | None:
        """Remaining seconds, from the mean pace of finished units."""
        if self.done == 0 or self.done >= self.total:
            return None
        elapsed = self.clock() - self._started
        return elapsed / self.done * (self.total - self.done)

    def unit_started(self, name: str) -> None:
        if self.is_tty:
            self._render(f"{name} …")
        else:
            self.runlog.debug("unit-started", id=name,
                              done=self.done, total=self.total)

    def unit_finished(self, name: str, *, wall_s: float | None = None,
                      cached: bool = False,
                      resumed: bool = False) -> None:
        self.done += 1
        if cached:
            self.cache_hits += 1
        if self.is_tty:
            took = f" {wall_s:.1f}s" if wall_s is not None else ""
            took = " cache" if cached else took
            took = " resumed" if resumed else took
            self._render(f"{name}{took}", force=self.done >= self.total)
        else:
            self.runlog.info("unit-finished", id=name, done=self.done,
                             total=self.total, cached=cached,
                             resumed=resumed,
                             wall_s=wall_s, eta_s=self.eta_s())

    def unit_retry(self, name: str, *, attempt: int,
                   kind: str) -> None:
        """One failed attempt being respawned (does not advance done)."""
        if self.is_tty:
            self._render(f"{name} retry #{attempt} ({kind})", force=True)
        else:
            self.runlog.warn("unit-retry", id=name, attempt=attempt,
                             kind=kind, done=self.done,
                             total=self.total)

    def unit_failed(self, name: str, *, kind: str,
                    attempts: int) -> None:
        """A poisoned unit: retries exhausted, sweep continues."""
        self.done += 1
        if self.is_tty:
            self._render(f"{name} FAILED ({kind})", force=True)
        else:
            self.runlog.warn("unit-failed", id=name, kind=kind,
                             attempts=attempts, done=self.done,
                             total=self.total)

    def cache_miss(self, name: str) -> None:
        self.cache_misses += 1

    def note(self, text: str) -> None:
        """Persist one advisory line above the live status.

        On a TTY the current status line is replaced by the note (which
        scrolls away instead of being overwritten) and then repainted;
        off-TTY the note lands as a structured warn event.  Used for
        run-level advisories like ``--jobs`` oversubscription.
        """
        if self.is_tty:
            if self._line_width:
                self.stream.write("\r" + " " * self._line_width + "\r")
                self._line_width = 0
            self.stream.write(text + "\n")
            self.stream.flush()
        else:
            self.runlog.warn("note", text=text)

    def _render(self, tail: str, *, force: bool = False) -> None:
        # Repaint throttle: fine-grained shards can finish every few
        # hundred microseconds, and an unthrottled reporter turns that
        # into a TTY write per unit.  Counters above stay exact — only
        # the repaint is skipped — and retries, failures, and the final
        # unit force their way through.
        now = self.clock()
        if (not force and self._last_render is not None
                and now - self._last_render < self.min_render_interval_s):
            return
        self._last_render = now
        eta = self.eta_s()
        eta_text = f" | eta {eta:.1f}s" if eta is not None else ""
        cache_text = (f" | cache {self.cache_hits}h/"
                      f"{self.cache_misses}m"
                      if self.cache_hits or self.cache_misses else "")
        line = (f"[{self.done}/{self.total}] {self.label}: "
                f"{tail}{cache_text}{eta_text}")
        pad = max(self._line_width - len(line), 0)
        self._line_width = len(line)
        self.stream.write("\r" + line + " " * pad)
        self.stream.flush()

    def close(self) -> None:
        """Erase the TTY status line (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self.is_tty and self._line_width:
            self.stream.write("\r" + " " * self._line_width + "\r")
            self.stream.flush()


class RunHooks:
    """Scheduler-side collection point feeding reporter and ledger.

    The experiment scheduler calls these as units resolve; afterwards
    ``cache_hits`` / ``cache_misses`` / ``unit_wall`` hold exactly what
    :func:`repro.obs.ledger.run_record` wants.  A default-constructed
    instance (no reporter) is a pure collector — the disabled-progress
    path shares the same call sites.
    """

    def __init__(self, reporter: ProgressReporter | None = None,
                 clock=time.perf_counter,
                 runlog: RunLog | None = None) -> None:
        self.reporter = reporter
        self.clock = clock
        self.runlog = runlog
        self.cache_hits: list[str] = []
        self.cache_misses: list[str] = []
        self.unit_wall: dict[str, float] = {}
        self.retries: dict[str, int] = {}
        self.failures: dict[str, dict] = {}
        self.resumed: list[str] = []
        self.quarantined: list[dict] = []
        self._running: dict[str, float] = {}

    def cache_hit(self, name: str) -> None:
        self.cache_hits.append(name)
        if self.reporter is not None:
            self.reporter.unit_finished(name, cached=True)

    def cache_miss(self, name: str) -> None:
        self.cache_misses.append(name)
        if self.reporter is not None:
            self.reporter.cache_miss(name)

    def unit_started(self, name: str) -> None:
        self._running[name] = self.clock()
        if self.reporter is not None:
            self.reporter.unit_started(name)

    def unit_finished(self, name: str,
                      wall_s: float | None = None) -> None:
        started = self._running.pop(name, None)
        if wall_s is None and started is not None:
            wall_s = self.clock() - started
        if wall_s is not None:
            self.unit_wall[name] = wall_s
        if self.reporter is not None:
            self.reporter.unit_finished(name, wall_s=wall_s)

    def unit_retry(self, name: str, *, attempt: int, kind: str) -> None:
        """A supervised attempt failed and is being respawned."""
        self.retries[name] = self.retries.get(name, 0) + 1
        if self.reporter is not None:
            self.reporter.unit_retry(name, attempt=attempt, kind=kind)

    def unit_failed(self, name: str, failure, *,
                    notify: bool = True) -> None:
        """A unit exhausted its retries — structured, never raising.

        ``failure`` is a :class:`repro.resilience.UnitFailure` (or
        anything with a ``to_dict``); the dict lands in the ledger's
        ``resilience.failures`` map.  ``notify=False`` records without
        re-driving the reporter (for callers that already streamed the
        failure live and are folding in the structured record after).
        """
        self._running.pop(name, None)
        self.failures[name] = failure.to_dict() \
            if hasattr(failure, "to_dict") else dict(failure)
        if notify and self.reporter is not None:
            self.reporter.unit_failed(
                name, kind=self.failures[name].get("kind", "exception"),
                attempts=self.failures[name].get("attempts", 1))

    def unit_resumed(self, name: str) -> None:
        """A unit replayed from the checkpoint journal (``--resume``)."""
        self.resumed.append(name)
        if self.reporter is not None:
            self.reporter.unit_finished(name, resumed=True)

    def cache_quarantined(self, key: str, path: str,
                          reason: str) -> None:
        """A corrupt cache entry was moved aside (and will recompute)."""
        self.quarantined.append({"key": key, "path": path,
                                 "reason": reason})
        if self.runlog is not None:
            self.runlog.warn("cache-quarantined", key=key,
                             reason=reason, path=path)

    def resilience_record(self, *, interrupted: bool = False) -> dict | None:
        """The ledger's ``resilience`` field; ``None`` when untouched.

        A healthy, un-resumed, un-quarantined run records nothing — the
        field only appears when the supervision layer actually acted,
        so existing ledger consumers see unchanged records for normal
        runs.
        """
        if not (self.retries or self.failures or self.resumed
                or self.quarantined or interrupted):
            return None
        return {
            "retries": dict(sorted(self.retries.items())),
            "failures": dict(sorted(self.failures.items())),
            "resumed": sorted(self.resumed),
            "quarantined": sorted(
                (q["key"] for q in self.quarantined)),
            "interrupted": interrupted,
        }

    def verdicts(self, results) -> dict:
        """Ledger ``verdicts`` from ``[(id, ExperimentResult), ...]``.

        Failed units (no result object) report ``passed: false`` plus
        their failure kind, so the per-run history distinguishes "shape
        check failed" from "never produced a result".
        """
        out: dict = {}
        for eid, result in results:
            wall = self.unit_wall.get(eid)
            out[eid] = {
                "passed": getattr(result, "passed", None),
                "wall_s": round(wall, 4) if wall is not None else None,
                "cached": eid in self.cache_hits,
            }
        for eid, failure in self.failures.items():
            out[eid] = {
                "passed": False,
                "wall_s": None,
                "cached": False,
                "failed": failure.get("kind", "exception"),
            }
        return out

    def close(self) -> None:
        if self.reporter is not None:
            self.reporter.close()
