"""Live progress for sweeps: single-line TTY updates, plain-log fallback.

``--jobs N`` runs used to be silent until the whole suite finished.
:class:`ProgressReporter` renders worker completions as they land:

* stderr **is** a TTY — one carriage-return-rewritten status line
  (``[3/14] fig6 2.1s | cache 2h/1m | eta 4.2s``), erased cleanly on
  :meth:`close`;
* stderr is **not** a TTY (CI, redirection, pytest capture) — one
  :class:`~repro.obs.runlog.RunLog` event per completion, so logs stay
  line-oriented and machine-parseable.

Either way nothing is ever written to stdout, which is what keeps
serial and parallel CLI output byte-identical with progress enabled.

:class:`RunHooks` is the glue between the experiment scheduler and the
reporter: the scheduler reports cache hits/misses and unit
start/finish, the hooks collect what the run ledger needs (per-unit
wall seconds, hit/miss lists) and forward display updates.
"""

from __future__ import annotations

import sys
import time
from typing import TextIO

from ..errors import ReproError
from .runlog import RunLog


class ProgressReporter:
    """Render ``done/total`` unit progress on stderr with an ETA."""

    def __init__(self, total: int, *, label: str = "experiments",
                 runlog: RunLog | None = None,
                 stream: TextIO | None = None,
                 tty: bool | None = None,
                 clock=time.monotonic) -> None:
        if total < 0:
            raise ReproError(f"total must be >= 0, got {total}")
        self.total = total
        self.label = label
        self.runlog = runlog if runlog is not None else RunLog("progress")
        self._stream = stream
        self._tty = tty
        self.clock = clock
        self.done = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self._started = clock()
        self._line_width = 0
        self._closed = False

    @property
    def stream(self) -> TextIO:
        return self._stream if self._stream is not None else sys.stderr

    @property
    def is_tty(self) -> bool:
        if self._tty is not None:
            return self._tty
        return bool(getattr(self.stream, "isatty", lambda: False)())

    def eta_s(self) -> float | None:
        """Remaining seconds, from the mean pace of finished units."""
        if self.done == 0 or self.done >= self.total:
            return None
        elapsed = self.clock() - self._started
        return elapsed / self.done * (self.total - self.done)

    def unit_started(self, name: str) -> None:
        if self.is_tty:
            self._render(f"{name} …")
        else:
            self.runlog.debug("unit-started", id=name,
                              done=self.done, total=self.total)

    def unit_finished(self, name: str, *, wall_s: float | None = None,
                      cached: bool = False) -> None:
        self.done += 1
        if cached:
            self.cache_hits += 1
        if self.is_tty:
            took = f" {wall_s:.1f}s" if wall_s is not None else ""
            took = " cache" if cached else took
            self._render(f"{name}{took}")
        else:
            self.runlog.info("unit-finished", id=name, done=self.done,
                             total=self.total, cached=cached,
                             wall_s=wall_s, eta_s=self.eta_s())

    def cache_miss(self, name: str) -> None:
        self.cache_misses += 1

    def _render(self, tail: str) -> None:
        eta = self.eta_s()
        eta_text = f" | eta {eta:.1f}s" if eta is not None else ""
        cache_text = (f" | cache {self.cache_hits}h/"
                      f"{self.cache_misses}m"
                      if self.cache_hits or self.cache_misses else "")
        line = (f"[{self.done}/{self.total}] {self.label}: "
                f"{tail}{cache_text}{eta_text}")
        pad = max(self._line_width - len(line), 0)
        self._line_width = len(line)
        self.stream.write("\r" + line + " " * pad)
        self.stream.flush()

    def close(self) -> None:
        """Erase the TTY status line (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self.is_tty and self._line_width:
            self.stream.write("\r" + " " * self._line_width + "\r")
            self.stream.flush()


class RunHooks:
    """Scheduler-side collection point feeding reporter and ledger.

    The experiment scheduler calls these as units resolve; afterwards
    ``cache_hits`` / ``cache_misses`` / ``unit_wall`` hold exactly what
    :func:`repro.obs.ledger.run_record` wants.  A default-constructed
    instance (no reporter) is a pure collector — the disabled-progress
    path shares the same call sites.
    """

    def __init__(self, reporter: ProgressReporter | None = None,
                 clock=time.perf_counter) -> None:
        self.reporter = reporter
        self.clock = clock
        self.cache_hits: list[str] = []
        self.cache_misses: list[str] = []
        self.unit_wall: dict[str, float] = {}
        self._running: dict[str, float] = {}

    def cache_hit(self, name: str) -> None:
        self.cache_hits.append(name)
        if self.reporter is not None:
            self.reporter.unit_finished(name, cached=True)

    def cache_miss(self, name: str) -> None:
        self.cache_misses.append(name)
        if self.reporter is not None:
            self.reporter.cache_miss(name)

    def unit_started(self, name: str) -> None:
        self._running[name] = self.clock()
        if self.reporter is not None:
            self.reporter.unit_started(name)

    def unit_finished(self, name: str,
                      wall_s: float | None = None) -> None:
        started = self._running.pop(name, None)
        if wall_s is None and started is not None:
            wall_s = self.clock() - started
        if wall_s is not None:
            self.unit_wall[name] = wall_s
        if self.reporter is not None:
            self.reporter.unit_finished(name, wall_s=wall_s)

    def verdicts(self, results) -> dict:
        """Ledger ``verdicts`` from ``[(id, ExperimentResult), ...]``."""
        out: dict = {}
        for eid, result in results:
            wall = self.unit_wall.get(eid)
            out[eid] = {
                "passed": getattr(result, "passed", None),
                "wall_s": round(wall, 4) if wall is not None else None,
                "cached": eid in self.cache_hits,
            }
        return out

    def close(self) -> None:
        if self.reporter is not None:
            self.reporter.close()
