"""Wall-clock component profiling with deterministic output shape.

The telemetry tracer answers "where did *simulated* time go"; this
profiler answers "where did *wall-clock* time go" — per phase, per
experiment — so perf PRs can attribute host seconds alongside the
simulated-time tracks (docs/TELEMETRY.md) instead of eyeballing suite
totals.

Output is deterministic in *shape*: phases appear in first-seen order,
keys are fixed, floats are rounded — only the measured seconds vary
between runs (tests pin the exact bytes by injecting a fake clock).
``cprofile_top > 0`` additionally collects a cProfile top-N table by
cumulative time, with file paths reduced to basenames so the table is
checkout-location independent.

Disabled profilers (``Profiler(enabled=False)``) accept the same calls
and record nothing, which keeps the instrumented call sites unconditional
— the same null-object pattern :data:`repro.telemetry.NULL_TELEMETRY`
uses.
"""

from __future__ import annotations

import cProfile
import json
import pstats
import time
from contextlib import contextmanager
from pathlib import Path

from ..errors import ReproError

PROFILE_SCHEMA_VERSION = 1


class Profiler:
    """Accumulate named wall-clock phases; export as ``*.profile.json``."""

    def __init__(self, *, enabled: bool = True, clock=time.perf_counter,
                 cprofile_top: int = 0) -> None:
        if cprofile_top < 0:
            raise ReproError(
                f"cprofile_top must be >= 0, got {cprofile_top}")
        self.enabled = enabled
        self.clock = clock
        self.cprofile_top = cprofile_top
        self._phases: dict[str, dict] = {}    # name -> {wall_s, calls}
        self._cprofile: cProfile.Profile | None = None
        self._depth = 0

    @contextmanager
    def phase(self, name: str):
        """Time one ``with`` block under ``name`` (repeats accumulate)."""
        if not self.enabled:
            yield
            return
        start = self.clock()
        try:
            yield
        finally:
            elapsed = self.clock() - start
            slot = self._phases.setdefault(
                name, {"wall_s": 0.0, "calls": 0})
            slot["wall_s"] += elapsed
            slot["calls"] += 1

    @contextmanager
    def collecting(self):
        """Enable the optional cProfile collection around a run.

        Reentrant-safe (nested ``collecting`` blocks no-op) because the
        experiment runner wraps both the suite and, via
        :func:`repro.parallel.sweeps.run_experiment`, individual
        experiments.
        """
        if not self.enabled or not self.cprofile_top:
            yield
            return
        self._depth += 1
        if self._depth == 1:
            self._cprofile = cProfile.Profile()
            self._cprofile.enable()
        try:
            yield
        finally:
            self._depth -= 1
            if self._depth == 0 and self._cprofile is not None:
                self._cprofile.disable()

    def phase_seconds(self, name: str) -> float:
        if name not in self._phases:
            raise ReproError(f"no profiled phase {name!r}; "
                             f"recorded: {list(self._phases)}")
        return self._phases[name]["wall_s"]

    def _cprofile_table(self) -> list[dict]:
        """Top-N functions by cumulative seconds, deterministic order."""
        if self._cprofile is None:
            return []
        stats = pstats.Stats(self._cprofile)
        rows = []
        for (filename, lineno, funcname), \
                (_, ncalls, _, cumtime, _) in stats.stats.items():
            where = Path(filename).name if filename not in (
                "~", "") else "builtin"
            rows.append({"function": f"{where}:{funcname}",
                         "calls": ncalls,
                         "cumtime_s": round(cumtime, 4)})
        rows.sort(key=lambda row: (-row["cumtime_s"], row["function"]))
        return rows[: self.cprofile_top]

    def to_dict(self, *, extra: dict | None = None) -> dict:
        """The profile as JSON-ready data (stable key / phase order)."""
        phases = [{"name": name,
                   "wall_s": round(slot["wall_s"], 6),
                   "calls": slot["calls"]}
                  for name, slot in self._phases.items()]
        data: dict = {
            "schema": PROFILE_SCHEMA_VERSION,
            "phases": phases,
            "total_s": round(sum(slot["wall_s"]
                                 for slot in self._phases.values()), 6),
        }
        table = self._cprofile_table()
        if table:
            data["cprofile_top"] = table
        if extra:
            data.update(extra)
        return data

    def write(self, path, *, extra: dict | None = None) -> Path:
        """Write :meth:`to_dict` as pretty sorted JSON; returns path."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.to_dict(extra=extra), indent=2,
                                     sort_keys=True) + "\n")
        return target


def write_experiment_profile(directory, experiment_id: str, *,
                             wall_s: float | None, cached: bool,
                             passed: bool | None = None) -> Path:
    """One experiment's ``<id>.profile.json`` (per-experiment slice).

    The suite-level phase breakdown lands in ``suite.profile.json`` via
    :meth:`Profiler.write`; this writes the per-experiment attribution
    next to it so dashboards can join on experiment id.
    """
    target = Path(directory) / f"{experiment_id}.profile.json"
    target.parent.mkdir(parents=True, exist_ok=True)
    data = {
        "schema": PROFILE_SCHEMA_VERSION,
        "experiment": experiment_id,
        "wall_s": round(wall_s, 6) if wall_s is not None else None,
        "cached": cached,
        "passed": passed,
    }
    target.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return target
