"""The run ledger: one JSONL record per CLI invocation.

``repro-experiments`` and ``memo`` append a structured record to
``results/runs.jsonl`` after every run, so the repo accumulates a
queryable history of *what was run, against which code, and how it
went* — the substrate ``repro-report`` aggregates into trend lines.

Record schema (``schema: 1``; every record is one JSON line with
sorted keys)::

    {"schema": 1,
     "tool": "repro-experiments" | "memo" | ...,
     "argv": [...],                  # the CLI args as given
     "ids": [...],                   # experiment / bench ids covered
     "started_at": "2026-08-06T03:12:02Z",
     "wall_s": 1.234,                # whole-invocation wall clock
     "git_rev": "abc1234" | null,
     "config_hash": "0f3a…12hex",    # canonical-JSON hash of the config
     "fault_plan_hash": "…" | null,
     "seed": 7 | null,               # fault-plan seed when present
     "cache": {"hits": [...], "misses": [...]},
     "verdicts": {id: {"passed": true|false|null,
                       "wall_s": 0.12 | null,
                       "cached": false}},
     "metrics_digest": "…12hex" | null,
     "resilience": null | {"retries": {id: n}, "failures": {id: {...}},
                           "resumed": [...], "quarantined": [...],
                           "interrupted": false},
     "exit_code": 0}

``resilience`` is ``null`` for any run the supervision layer never
touched (no retries, failures, resumes, quarantines, or interrupts) —
docs/RESILIENCE.md specifies the populated shape.

Timestamps are recorded **here and only here** — ``repro-report``
renders ledger timestamps, never its own clock, which is what keeps
report output byte-identical across re-renders of the same inputs.

The path defaults to ``results/runs.jsonl`` under the working
directory; ``REPRO_LEDGER_PATH`` overrides it (tests and CI isolate
runs exactly like ``REPRO_CACHE_DIR`` does for the result cache).
"""

from __future__ import annotations

import hashlib
import json
import subprocess
from pathlib import Path

from ..errors import ReproError

SCHEMA_VERSION = 1
DEFAULT_LEDGER_PATH = Path("results") / "runs.jsonl"
LEDGER_PATH_ENV = "REPRO_LEDGER_PATH"


def ledger_path(path=None) -> Path:
    """Resolve the ledger location (arg > env var > default)."""
    import os

    if path is not None:
        return Path(path)
    override = os.environ.get(LEDGER_PATH_ENV)
    return Path(override) if override else DEFAULT_LEDGER_PATH


def config_hash(config: dict | None) -> str | None:
    """12-hex digest of a config dict's canonical JSON (None for None)."""
    if config is None:
        return None
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:12]


def git_rev() -> str | None:
    """The checkout's short commit hash, or ``None`` outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=5)
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def run_record(*, tool: str, argv: list[str], ids: list[str],
               started_at: str, wall_s: float,
               config: dict | None = None,
               fault_plan_config: dict | None = None,
               seed: int | None = None,
               cache_hits: list[str] | None = None,
               cache_misses: list[str] | None = None,
               verdicts: dict | None = None,
               metrics_digest: str | None = None,
               resilience: dict | None = None,
               spans: dict | None = None,
               exit_code: int = 0,
               rev: str | None = None) -> dict:
    """Build one schema-1 ledger record (pure data, no I/O).

    ``rev`` defaults to :func:`git_rev` — pass it explicitly in tests
    to keep records deterministic.  ``spans`` is the span-output digest
    (``{"exemplars": N, "digest": 12-hex}`` from
    :func:`repro.telemetry.spans.spans_digest`) of a spanned run, so
    tail-attribution output is auditable the same way metrics are.
    """
    if not tool:
        raise ReproError("ledger record needs a tool name")
    return {
        "schema": SCHEMA_VERSION,
        "tool": tool,
        "argv": list(argv),
        "ids": list(ids),
        "started_at": started_at,
        "wall_s": round(float(wall_s), 4),
        "git_rev": rev if rev is not None else git_rev(),
        "config_hash": config_hash(config),
        "fault_plan_hash": config_hash(fault_plan_config),
        "seed": seed,
        "cache": {"hits": sorted(cache_hits or []),
                  "misses": sorted(cache_misses or [])},
        "verdicts": verdicts or {},
        "metrics_digest": metrics_digest,
        "resilience": resilience,
        "spans": spans,
        "exit_code": exit_code,
    }


def append_record(record: dict, path=None) -> Path:
    """Append ``record`` as one JSON line; returns the ledger path."""
    if record.get("schema") != SCHEMA_VERSION:
        raise ReproError(
            f"refusing to append non-schema-{SCHEMA_VERSION} record: "
            f"{record.get('schema')!r}")
    target = ledger_path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(record, sort_keys=True, separators=(",", ":"))
    with target.open("a") as handle:
        handle.write(line + "\n")
    return target


def describe_append_failure(exc: OSError, path=None) -> dict:
    """Structured fields for a ``ledger-append-failed`` warning.

    A bare ``str(exc)`` can hide *which* path refused the write and
    *why* (EACCES vs. ENOSPC vs. EROFS read very differently when
    debugging CI), so the CLIs log these fields instead.
    """
    import errno as errno_module

    code = getattr(exc, "errno", None)
    return {
        "error": str(exc),
        "errno": errno_module.errorcode.get(code, str(code))
        if code is not None else None,
        "path": str(getattr(exc, "filename", None)
                    or ledger_path(path)),
    }


def read_ledger(path=None) -> list[dict]:
    """All parseable records in append order (corrupt lines skipped).

    A half-written tail line (interrupted run) must not take the whole
    history down, so decode errors drop that line only.
    """
    target = ledger_path(path)
    records: list[dict] = []
    try:
        text = target.read_text()
    except FileNotFoundError:
        return records
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict) and record.get("schema") \
                == SCHEMA_VERSION:
            records.append(record)
    return records


def figure_wall_history(records: list[dict],
                        experiment_id: str) -> list[float]:
    """Per-run wall seconds of one experiment, in ledger order.

    The trend-line input for ``repro-report``: every record whose
    verdicts cover ``experiment_id`` with a measured (non-null,
    non-cached) wall time contributes one point.
    """
    history: list[float] = []
    for record in records:
        verdict = record.get("verdicts", {}).get(experiment_id)
        if not isinstance(verdict, dict):
            continue
        wall = verdict.get("wall_s")
        if wall is not None and not verdict.get("cached"):
            history.append(float(wall))
    return history
