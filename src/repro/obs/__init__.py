"""Run-level observability: ledger, logging, profiling, progress, reports.

:mod:`repro.telemetry` makes a single *simulation* observable (metrics
and simulated-time timelines); this package makes *runs* observable —
the layer a training/inference stack covers with run ledgers, wall-clock
profilers, and regression dashboards:

* :mod:`repro.obs.runlog` — :class:`RunLog`, leveled machine-parseable
  progress/error events on stderr, plus the shared CLI exit codes
  (bad args = 2, failed checks = 1);
* :mod:`repro.obs.ledger` — every ``repro-experiments`` and ``memo``
  invocation appends one structured JSONL record to
  ``results/runs.jsonl`` (command, config/fault hashes, cache
  hits/misses, git rev, per-experiment verdicts, wall seconds, metrics
  digest);
* :mod:`repro.obs.profiler` — ``--profile`` wraps a run in a
  deterministic-output wall-clock component profiler (per-phase /
  per-experiment seconds, optional cProfile top-N) written as
  ``<id>.profile.json``;
* :mod:`repro.obs.progress` — live single-line stderr progress for
  ``--jobs`` sweeps (plain leveled logs when stderr is not a TTY);
  stdout stays byte-identical either way;
* :mod:`repro.obs.report` — the ``repro-report`` CLI: one deterministic
  Markdown/HTML dashboard over ``--save`` JSON, metrics snapshots, the
  run ledger, and ``BENCH_*.json`` trajectories, with ``--baseline``
  regression detection.

See docs/OBSERVABILITY.md.
"""

from __future__ import annotations

from .ledger import (
    DEFAULT_LEDGER_PATH,
    LEDGER_PATH_ENV,
    append_record,
    config_hash,
    describe_append_failure,
    figure_wall_history,
    git_rev,
    ledger_path,
    read_ledger,
    run_record,
)
from .profiler import Profiler
from .progress import ProgressReporter, RunHooks
from .runlog import (
    EXIT_BAD_ARGS,
    EXIT_FAILED_CHECKS,
    EXIT_INTERRUPTED,
    EXIT_OK,
    RunLog,
)

__all__ = [
    "DEFAULT_LEDGER_PATH",
    "EXIT_BAD_ARGS",
    "EXIT_FAILED_CHECKS",
    "EXIT_INTERRUPTED",
    "EXIT_OK",
    "LEDGER_PATH_ENV",
    "ProgressReporter",
    "Profiler",
    "RunHooks",
    "RunLog",
    "append_record",
    "config_hash",
    "describe_append_failure",
    "figure_wall_history",
    "git_rev",
    "ledger_path",
    "read_ledger",
    "run_record",
]
