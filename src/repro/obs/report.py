"""The ``repro-report`` CLI: one dashboard over everything a run leaves.

Aggregates four result streams into a single deterministic Markdown
(and optionally HTML) report:

* ``repro-experiments --save DIR`` JSON (``<id>.json`` verdict files);
* telemetry metrics snapshots (``*.metrics.json``);
* span payloads from ``--spans`` runs (``<id>.spans.json``) — the
  "Tail attribution" section: critical-path breakdown bars plus the
  slowest-request waterfalls (docs/TELEMETRY.md);
* the run ledger (``results/runs.jsonl``, docs/OBSERVABILITY.md) —
  per-figure wall-clock trend lines;
* ``BENCH_*.json`` wall-clock trajectories (``bench_to_json.py``,
  history-aware via ``--append``).

Determinism contract: the same inputs render byte-identical output.
Every timestamp in the report comes from the ledger records; the
report itself never reads a clock.  Tables iterate sorted keys only.

``--baseline baseline.json`` (written by ``--write-baseline``) turns
the report into a regression gate: the process exits non-zero when a
previously-passing shape check flips to failing or a bench metric
regresses beyond ``--threshold`` percent (seconds-like metrics are
lower-is-better; ``speedup`` is higher-is-better).  A ``suite.speedup``
below 1.0 is reported as a non-failing *advisory* — parallel slower
than serial means the run was oversubscribed (``--jobs`` above the
available CPUs), not that the code regressed.

Examples::

    repro-experiments fig3 fig5 --save out
    repro-report --results out --bench . --out report.md --html report.html
    repro-report --results out --write-baseline baseline.json
    repro-report --results out --baseline baseline.json   # gate: exit 1
"""

from __future__ import annotations

import argparse
import html
import json
import sys
from pathlib import Path

from ..analysis.sparkline import trend
from .ledger import figure_wall_history, read_ledger
from .runlog import EXIT_FAILED_CHECKS, EXIT_OK, RunLog

BASELINE_SCHEMA_VERSION = 1

HIGHER_IS_BETTER_METRICS = ("speedup",)
"""Flattened bench metric leaf names where bigger means faster."""


# --------------------------------------------------------------------------
# input loading

def load_experiments(results_dir: Path) -> dict[str, dict]:
    """``{experiment_id: saved-json}`` from a ``--save`` directory.

    Only files that parse as experiment verdict JSON count; metrics
    snapshots, profiles, the ledger, and the result cache are skipped.
    """
    experiments: dict[str, dict] = {}
    if not results_dir.is_dir():
        return experiments
    for path in sorted(results_dir.glob("*.json")):
        if path.name.endswith((".metrics.json", ".profile.json",
                               ".spans.json", ".trace.json")):
            continue
        try:
            data = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            continue
        if isinstance(data, dict) and "experiment_id" in data \
                and "checks" in data:
            experiments[data["experiment_id"]] = data
    return experiments


def load_spans(results_dir: Path) -> dict[str, dict]:
    """``{experiment_id: span payload}`` from ``<id>.spans.json`` files.

    These are written by ``repro-experiments --spans --save DIR``
    (docs/TELEMETRY.md); the Perfetto companions
    (``<id>.spans.trace.json``) are viewer food, not report input.
    """
    spans: dict[str, dict] = {}
    if not results_dir.is_dir():
        return spans
    for path in sorted(results_dir.glob("*.spans.json")):
        try:
            data = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            continue
        if isinstance(data, dict) and isinstance(data.get("points"),
                                                 dict):
            spans[path.name[: -len(".spans.json")]] = data
    return spans


def load_metrics_snapshots(results_dir: Path) -> dict[str, dict]:
    """``{stem: snapshot}`` for every ``*.metrics.json`` in the dir."""
    snapshots: dict[str, dict] = {}
    if not results_dir.is_dir():
        return snapshots
    for path in sorted(results_dir.glob("*.metrics.json")):
        try:
            data = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            continue
        if isinstance(data, dict):
            snapshots[path.name[: -len(".metrics.json")]] = data
    return snapshots


def bench_entries(obj: dict) -> list[dict]:
    """History entries of one ``BENCH_*.json`` (both file shapes).

    ``--append`` files hold ``{"label": ..., "history": [entry, ...]}``;
    legacy files *are* the single entry.
    """
    if isinstance(obj.get("history"), list):
        return [entry for entry in obj["history"]
                if isinstance(entry, dict)]
    return [obj]


def load_bench_histories(bench_dir: Path) -> dict[str, list[dict]]:
    """``{label: [entry, ...]}`` for every ``BENCH_<label>.json``."""
    histories: dict[str, list[dict]] = {}
    if not bench_dir.is_dir():
        return histories
    for path in sorted(bench_dir.glob("BENCH_*.json")):
        try:
            obj = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            continue
        if isinstance(obj, dict):
            label = path.stem[len("BENCH_"):]
            histories[label] = bench_entries(obj)
    return histories


def bench_metric_trends(histories: dict[str, list[dict]]) \
        -> dict[str, list[float]]:
    """Flatten histories to ``{label.group.metric: [values...]}``.

    Covers the numeric leaves under ``figures`` (per-figure serial
    seconds), ``suite``, and ``engine`` — the comparable, trend-able
    wall-clock metrics; host metadata (cpus, python, …) is excluded.
    """
    trends: dict[str, list[float]] = {}

    def add(metric: str, entry_values: float) -> None:
        trends.setdefault(metric, []).append(float(entry_values))

    for label in sorted(histories):
        for entry in histories[label]:
            for fig in sorted(entry.get("figures", {})):
                for key, value in sorted(
                        entry["figures"][fig].items()):
                    if isinstance(value, (int, float)):
                        add(f"{label}.figures.{fig}.{key}", value)
            for group in ("suite", "engine"):
                for key, value in sorted(entry.get(group, {}).items()):
                    if isinstance(value, (int, float)):
                        add(f"{label}.{group}.{key}", value)
    return trends


# --------------------------------------------------------------------------
# baseline

def build_baseline(experiments: dict[str, dict],
                   bench_trends: dict[str, list[float]]) -> dict:
    """Current state as a committed-baseline JSON object."""
    return {
        "schema": BASELINE_SCHEMA_VERSION,
        "experiments": {
            eid: {"passed": bool(data.get("passed")),
                  "checks": {check["claim"]: bool(check["passed"])
                             for check in data.get("checks", [])}}
            for eid, data in sorted(experiments.items())
        },
        "bench": {metric: values[-1]
                  for metric, values in sorted(bench_trends.items())
                  if values},
    }


def _is_higher_better(metric: str) -> bool:
    return metric.rsplit(".", 1)[-1] in HIGHER_IS_BETTER_METRICS


def find_regressions(experiments: dict[str, dict],
                     bench_trends: dict[str, list[float]],
                     baseline: dict, *,
                     threshold_pct: float,
                     advisories: list[str] | None = None) -> list[str]:
    """Deterministic list of regression descriptions (empty = clean).

    Only inputs present on *both* sides are compared: a baseline
    experiment or metric missing from the current inputs is skipped
    (CI sweeps cover a subset of the full suite), and anything new has
    no baseline to regress against.

    When ``advisories`` is passed (the CLI path), a ``suite.speedup``
    drop *below 1.0* is appended there instead of to the returned
    regressions: parallel-slower-than-serial is the signature of an
    oversubscribed ``--jobs`` run (more workers than
    :func:`repro.parallel.effective_cpu_count` CPUs), an environment
    problem the gate should flag without failing the build over.
    """
    regressions: list[str] = []
    for eid in sorted(baseline.get("experiments", {})):
        base = baseline["experiments"][eid]
        current = experiments.get(eid)
        if current is None:
            continue
        if base.get("passed") and not current.get("passed"):
            regressions.append(f"experiment {eid}: verdict flipped "
                               f"PASS -> FAIL")
        current_checks = {check["claim"]: bool(check["passed"])
                          for check in current.get("checks", [])}
        for claim in sorted(base.get("checks", {})):
            if base["checks"][claim] \
                    and current_checks.get(claim) is False:
                regressions.append(
                    f"experiment {eid}: check flipped to FAIL: {claim}")
    factor = threshold_pct / 100.0
    for metric in sorted(baseline.get("bench", {})):
        values = bench_trends.get(metric)
        if not values:
            continue
        base_value, value = float(baseline["bench"][metric]), values[-1]
        if base_value <= 0:
            continue
        change = (value - base_value) / base_value
        regressed = change < -factor if _is_higher_better(metric) \
            else change > factor
        if not regressed:
            continue
        if advisories is not None \
                and metric.endswith(".suite.speedup") and value < 1.0:
            advisories.append(
                f"bench {metric}: {value:g} < 1 — the parallel suite "
                f"ran slower than serial, the signature of an "
                f"oversubscribed --jobs run (more workers than "
                f"available CPUs), not a code regression")
            continue
        regressions.append(
            f"bench {metric}: {base_value:g} -> {value:g} "
            f"({change * 100.0:+.1f}% past {threshold_pct:g}% "
            f"threshold)")
    return regressions


# --------------------------------------------------------------------------
# rendering

def _md_table(headers: list[str], rows: list[list[str]]) -> list[str]:
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    lines += ["| " + " | ".join(row) + " |" for row in rows]
    return lines


def build_report(*, experiments: dict[str, dict],
                 metrics: dict[str, dict],
                 ledger: list[dict],
                 bench_trends: dict[str, list[float]],
                 regressions: list[str] | None = None,
                 baseline_name: str | None = None,
                 last: int = 10,
                 spans: dict[str, dict] | None = None,
                 advisories: list[str] | None = None,
                 waterfalls: int = 2) -> str:
    """The full Markdown dashboard (pure function of its inputs)."""
    lines: list[str] = ["# repro observability report", ""]

    lines += ["## Experiments", ""]
    if experiments:
        rows = []
        failing: list[str] = []
        for eid in sorted(experiments):
            data = experiments[eid]
            checks = data.get("checks", [])
            passed = sum(1 for check in checks if check["passed"])
            wall = figure_wall_history(ledger, eid)
            rows.append([
                eid,
                "PASS" if data.get("passed") else "FAIL",
                f"{passed}/{len(checks)}",
                f"`{trend(wall)}`" + (f" {wall[-1]:.3f}s" if wall
                                      else ""),
            ])
            failing += [f"- `{eid}`: {check['claim']} "
                        f"(measured {check['measured']})"
                        for check in checks if not check["passed"]]
        lines += _md_table(["experiment", "verdict", "checks",
                            "wall trend"], rows)
        if failing:
            lines += ["", "Failing checks:", ""] + failing
    else:
        lines += ["No saved experiment JSON found."]
    lines += [""]

    lines += ["## Run ledger", ""]
    if ledger:
        lines += [f"{len(ledger)} recorded run(s); last "
                  f"{min(last, len(ledger))} shown.", ""]
        rows = []
        for record in ledger[-last:]:
            verdicts = record.get("verdicts", {})
            passed = sum(1 for verdict in verdicts.values()
                         if verdict.get("passed"))
            judged = sum(1 for verdict in verdicts.values()
                         if verdict.get("passed") is not None)
            cache = record.get("cache", {})
            rows.append([
                record.get("started_at", "?"),
                record.get("tool", "?"),
                str(record.get("exit_code", "?")),
                f"{record.get('wall_s', 0.0):.2f}",
                f"{len(cache.get('hits', []))}h/"
                f"{len(cache.get('misses', []))}m",
                f"{passed}/{judged}" if judged else "-",
                " ".join(record.get("ids", [])) or "-",
            ])
        lines += _md_table(["started (UTC)", "tool", "exit", "wall s",
                            "cache", "verdicts", "ids"], rows)
    else:
        lines += ["No ledger records found."]
    lines += [""]

    lines += ["## Bench trends", ""]
    if bench_trends:
        rows = [[metric, f"{values[-1]:g}", f"`{trend(values)}`",
                 str(len(values))]
                for metric, values in sorted(bench_trends.items())]
        lines += _md_table(["metric", "latest", "trend", "points"],
                           rows)
    else:
        lines += ["No BENCH_*.json files found."]
    lines += [""]

    if spans:
        from ..telemetry.spans import (
            combine_aggregates,
            render_attribution,
            render_waterfall,
        )

        lines += ["## Tail attribution", ""]
        for eid in sorted(spans):
            points = spans[eid].get("points", {})
            if not points:
                continue
            combined = combine_aggregates(
                [points[name] for name in sorted(points)])
            lines += [f"### {eid}", "", "```"]
            lines += render_attribution(
                combined, title="critical path").splitlines()
            for exemplar in combined.get("exemplars", [])[:waterfalls]:
                lines += [""] + render_waterfall(exemplar).splitlines()
            lines += ["```", ""]

    if metrics:
        lines += ["## Metrics snapshots", ""]
        rows = [[name, str(len(snapshot))]
                for name, snapshot in sorted(metrics.items())]
        lines += _md_table(["snapshot", "metrics"], rows) + [""]

    if regressions is not None:
        lines += [f"## Baseline comparison ({baseline_name})", ""]
        if regressions:
            lines += [f"{len(regressions)} regression(s) detected:", ""]
            lines += [f"- REGRESSION: {item}" for item in regressions]
        else:
            lines += ["No regressions against the baseline."]
        if advisories:
            lines += ["", f"{len(advisories)} advisory(ies) "
                          f"(non-failing):", ""]
            lines += [f"- ADVISORY: {item}" for item in advisories]
        lines += [""]

    return "\n".join(lines).rstrip() + "\n"


def markdown_to_html(markdown: str, *, title: str = "repro report") \
        -> str:
    """A small deterministic Markdown-to-HTML conversion.

    Covers exactly what :func:`build_report` emits — headings, pipe
    tables, bullet lists, fenced code blocks, inline code, paragraphs —
    so the dashboard needs no third-party renderer.
    """
    def inline(text: str) -> str:
        out, parts = html.escape(text), []
        while "`" in out:
            before, _, rest = out.partition("`")
            code, tick, rest = rest.partition("`")
            if not tick:
                out = before + "`" + code
                break
            parts.append(before + f"<code>{code}</code>")
            out = rest
        return "".join(parts) + out

    body: list[str] = []
    lines = markdown.splitlines()
    index = 0
    while index < len(lines):
        line = lines[index]
        if line.startswith("```"):
            code: list[str] = []
            index += 1
            while index < len(lines) \
                    and not lines[index].startswith("```"):
                code.append(html.escape(lines[index]))
                index += 1
            body.append("<pre>" + "\n".join(code) + "</pre>")
        elif line.startswith("#"):
            level = len(line) - len(line.lstrip("#"))
            body.append(f"<h{level}>{inline(line[level:].strip())}"
                        f"</h{level}>")
        elif line.startswith("|"):
            rows = []
            while index < len(lines) and lines[index].startswith("|"):
                cells = [cell.strip() for cell
                         in lines[index].strip("|").split("|")]
                rows.append(cells)
                index += 1
            index -= 1
            body.append("<table>")
            for row_index, cells in enumerate(rows):
                if row_index == 1:          # the |---| separator row
                    continue
                tag = "th" if row_index == 0 else "td"
                body.append(
                    "<tr>" + "".join(f"<{tag}>{inline(cell)}</{tag}>"
                                     for cell in cells) + "</tr>")
            body.append("</table>")
        elif line.startswith("- "):
            body.append("<ul>")
            while index < len(lines) and lines[index].startswith("- "):
                body.append(f"<li>{inline(lines[index][2:])}</li>")
                index += 1
            index -= 1
            body.append("</ul>")
        elif line.strip():
            body.append(f"<p>{inline(line)}</p>")
        index += 1
    style = ("body{font-family:monospace;margin:2em;max-width:72em}"
             "table{border-collapse:collapse;margin:1em 0}"
             "td,th{border:1px solid #999;padding:0.25em 0.6em;"
             "text-align:left}"
             "th{background:#eee}code{background:#f4f4f4}")
    return ("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">"
            f"<title>{html.escape(title)}</title>"
            f"<style>{style}</style></head>\n<body>\n"
            + "\n".join(body) + "\n</body></html>\n")


# --------------------------------------------------------------------------
# CLI

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-report",
        description="Aggregate saved results, the run ledger, and "
                    "BENCH_*.json trajectories into one deterministic "
                    "dashboard")
    parser.add_argument("--results", metavar="DIR", default="results",
                        help="directory holding --save experiment JSON "
                             "and *.metrics.json (default: results)")
    parser.add_argument("--ledger", metavar="PATH", default=None,
                        help="run ledger path (default: "
                             "results/runs.jsonl, or $REPRO_LEDGER_PATH)")
    parser.add_argument("--bench", metavar="DIR", default=".",
                        help="directory scanned for BENCH_*.json "
                             "(default: .)")
    parser.add_argument("--out", metavar="PATH", default="-",
                        help="Markdown output path ('-' = stdout)")
    parser.add_argument("--html", metavar="PATH", default=None,
                        help="also write an HTML rendering")
    parser.add_argument("--baseline", metavar="PATH", default=None,
                        help="compare against a baseline JSON; exit 1 "
                             "on regression")
    parser.add_argument("--write-baseline", metavar="PATH", default=None,
                        help="write the current state as a baseline "
                             "JSON and exit")
    parser.add_argument("--threshold", type=float, default=10.0,
                        metavar="PCT",
                        help="bench regression threshold in percent "
                             "(default: 10)")
    parser.add_argument("--last", type=int, default=10, metavar="N",
                        help="ledger rows shown (default: 10)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    runlog = RunLog("repro-report")
    if args.threshold < 0:
        return runlog.error("--threshold must be >= 0")
    if args.last < 1:
        return runlog.error("--last must be >= 1")

    experiments = load_experiments(Path(args.results))
    metrics = load_metrics_snapshots(Path(args.results))
    spans = load_spans(Path(args.results))
    ledger = read_ledger(args.ledger)
    bench_trends = bench_metric_trends(
        load_bench_histories(Path(args.bench)))
    runlog.debug("inputs", experiments=len(experiments),
                 snapshots=len(metrics), spans=len(spans),
                 ledger_records=len(ledger),
                 bench_metrics=len(bench_trends))

    if args.write_baseline:
        baseline = build_baseline(experiments, bench_trends)
        target = Path(args.write_baseline)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(baseline, indent=2,
                                     sort_keys=True) + "\n")
        runlog.info("baseline-written", path=str(target),
                    experiments=len(baseline["experiments"]),
                    bench_metrics=len(baseline["bench"]))
        return EXIT_OK

    regressions: list[str] | None = None
    advisories: list[str] = []
    baseline_name: str | None = None
    if args.baseline:
        baseline_path = Path(args.baseline)
        try:
            baseline = json.loads(baseline_path.read_text())
        except FileNotFoundError:
            return runlog.error(f"baseline not found: {baseline_path}")
        except json.JSONDecodeError as exc:
            return runlog.error(
                f"baseline is not valid JSON: {baseline_path}: {exc}")
        if baseline.get("schema") != BASELINE_SCHEMA_VERSION:
            return runlog.error(
                f"baseline {baseline_path} has unsupported schema "
                f"{baseline.get('schema')!r}")
        baseline_name = baseline_path.name
        regressions = find_regressions(experiments, bench_trends,
                                       baseline,
                                       threshold_pct=args.threshold,
                                       advisories=advisories)
        if advisories:
            runlog.warn("baseline-advisories", count=len(advisories))

    report = build_report(experiments=experiments, metrics=metrics,
                          ledger=ledger, bench_trends=bench_trends,
                          regressions=regressions,
                          baseline_name=baseline_name, last=args.last,
                          spans=spans, advisories=advisories)
    if args.out == "-":
        sys.stdout.write(report)
    else:
        target = Path(args.out)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(report)
        runlog.info("report-written", path=str(target),
                    bytes=len(report))
    if args.html:
        target = Path(args.html)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(markdown_to_html(report))
        runlog.info("html-written", path=str(target))

    if regressions:
        return runlog.error(
            f"{len(regressions)} regression(s) against "
            f"{baseline_name}", code=EXIT_FAILED_CHECKS,
            regressions=len(regressions))
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
