"""Unified observability for the simulation stack.

Two halves, bundled by :class:`Telemetry`:

* **Metrics** (:mod:`repro.telemetry.metrics`) — a :class:`Registry` of
  hierarchical named :class:`Counter`/:class:`Gauge`/:class:`Histogram`
  aggregates, snapshot-able as JSON.
* **Tracing** (:mod:`repro.telemetry.tracer`) — structured timeline
  events on one track per simulated component, exported as Chrome
  ``chrome://tracing`` / Perfetto JSON.

Every instrumented component takes an optional ``telemetry=`` argument
defaulting to :data:`NULL_TELEMETRY`, whose tracer and registry drop
everything — disabled-mode runs emit zero events and hold no samples.

Quickstart::

    from repro.telemetry import Telemetry
    from repro.cxl.e2e_sim import CxlEndToEndSim

    telemetry = Telemetry.on()
    CxlEndToEndSim(telemetry=telemetry).run(threads=8)
    telemetry.tracer.write("trace.json")        # open in ui.perfetto.dev
    print(telemetry.registry.snapshot())
"""

from __future__ import annotations

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    NullRegistry,
    Registry,
    default_latency_buckets_ns,
    interpolate_percentile,
)
from .spans import NULL_SPANS, NullSpanRecorder, SpanConfig, SpanRecorder
from .tracer import NULL_TRACER, NullTracer, TraceEvent, Tracer


class Telemetry:
    """One run's observability session: a registry, a tracer, and an
    optional per-request span recorder."""

    def __init__(self, *, registry: Registry | None = None,
                 tracer: Tracer | None = None,
                 spans: SpanRecorder | NullSpanRecorder | None = None) -> None:
        self.registry = registry if registry is not None else Registry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.spans = spans if spans is not None else NULL_SPANS

    @property
    def enabled(self) -> bool:
        """True when the tracer records events."""
        return self.tracer.enabled

    @classmethod
    def on(cls, *, process_name: str = "repro-sim") -> "Telemetry":
        """A fully-recording session."""
        return cls(registry=Registry(),
                   tracer=Tracer(process_name=process_name))

    @classmethod
    def metrics_only(cls) -> "Telemetry":
        """Counters/gauges/histograms without timeline events.

        The fault-accounting tests use this: ``faults.*`` counters are
        recorded while the tracer (whose event list grows with run
        length) stays off.
        """
        return cls(registry=Registry(), tracer=NULL_TRACER)

    @classmethod
    def off(cls) -> "Telemetry":
        """A fresh all-dropping session (rarely needed; components
        default to the shared :data:`NULL_TELEMETRY`)."""
        return cls(registry=NullRegistry(), tracer=NULL_TRACER)


NULL_TELEMETRY = Telemetry(registry=NullRegistry(), tracer=NULL_TRACER)
"""Shared disabled session used as the default by every component."""


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "NullRegistry",
    "NullSpanRecorder",
    "NullTracer",
    "NULL_SPANS",
    "NULL_TELEMETRY",
    "NULL_TRACER",
    "Registry",
    "SpanConfig",
    "SpanRecorder",
    "Telemetry",
    "TraceEvent",
    "Tracer",
    "default_latency_buckets_ns",
    "interpolate_percentile",
]
