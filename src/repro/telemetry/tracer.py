"""Structured event tracing with Chrome ``chrome://tracing`` export.

Events carry *simulated* timestamps (ns, as kept by
:class:`repro.sim.engine.Engine`), never wall-clock time, so two
identically-seeded runs emit byte-identical event sequences — the
property the determinism tests pin down.

Each *track* is one simulated component (``core``, ``cxl.port``,
``cxl.device.wbuf``, ``dram.channel``, ``tiering.migrator`` …) and maps
to one named thread row in the Chrome / Perfetto timeline view.  Three
event shapes cover the simulator's needs:

* ``complete`` — a span with explicit start and duration (Chrome phase
  ``X``); natural in a DES where both ends are known when the span is
  recorded.
* ``instant`` — a point event (phase ``i``).
* ``count`` — a sampled value plotted as a counter track (phase ``C``),
  used for write-buffer occupancy.

:class:`NullTracer` is the zero-overhead disabled mode: every recording
method is a bare ``pass`` and :attr:`Tracer.enabled` is ``False`` so
hot loops can skip even argument construction.
"""

from __future__ import annotations

import json

from ..errors import TelemetryError

TRACE_PID = 1
"""All tracks live in one synthetic process row."""


class TraceEvent:
    """One recorded event, pre-normalized to Chrome trace semantics."""

    __slots__ = ("track", "name", "phase", "ts_ns", "dur_ns", "args")

    def __init__(self, track: str, name: str, phase: str, ts_ns: float,
                 dur_ns: float = 0.0, args: dict | None = None) -> None:
        self.track = track
        self.name = name
        self.phase = phase
        self.ts_ns = ts_ns
        self.dur_ns = dur_ns
        self.args = args or {}

    def key(self) -> tuple:
        """A comparable identity used by the determinism tests."""
        return (self.track, self.name, self.phase, self.ts_ns,
                self.dur_ns, tuple(sorted(self.args.items())))

    def __repr__(self) -> str:
        return (f"TraceEvent({self.track!r}, {self.name!r}, "
                f"{self.phase!r}, ts={self.ts_ns}, dur={self.dur_ns})")


class Tracer:
    """Collects :class:`TraceEvent`s and serializes them for Perfetto."""

    enabled = True

    def __init__(self, *, process_name: str = "repro-sim") -> None:
        self.process_name = process_name
        self._events: list[TraceEvent] = []
        self._tracks: dict[str, int] = {}

    # -- recording ---------------------------------------------------------

    def track_id(self, track: str) -> int:
        """The stable tid for a component track (created on first use)."""
        if track not in self._tracks:
            if not track:
                raise TelemetryError("track name must be non-empty")
            self._tracks[track] = len(self._tracks) + 1
        return self._tracks[track]

    def complete(self, track: str, name: str, start_ns: float,
                 dur_ns: float, **args) -> None:
        """A span [start_ns, start_ns + dur_ns) on ``track``."""
        if dur_ns < 0:
            raise TelemetryError(
                f"span {name!r} on {track!r} has negative duration "
                f"{dur_ns}")
        self.track_id(track)
        self._events.append(
            TraceEvent(track, name, "X", start_ns, dur_ns, args))

    def instant(self, track: str, name: str, ts_ns: float, **args) -> None:
        self.track_id(track)
        self._events.append(TraceEvent(track, name, "i", ts_ns, 0.0, args))

    def count(self, track: str, name: str, ts_ns: float,
              value: float) -> None:
        """A counter sample, rendered as a filled area track."""
        self.track_id(track)
        self._events.append(
            TraceEvent(track, name, "C", ts_ns, 0.0, {"value": value}))

    # -- inspection --------------------------------------------------------

    @property
    def events(self) -> list[TraceEvent]:
        return list(self._events)

    @property
    def tracks(self) -> list[str]:
        """Track names in creation order."""
        return list(self._tracks)

    def __len__(self) -> int:
        return len(self._events)

    # -- export ------------------------------------------------------------

    def chrome_trace(self) -> dict:
        """The full Chrome JSON object (``traceEvents`` array format).

        Timestamps convert from simulated ns to the microseconds the
        format specifies.  Metadata events name the process and one
        thread per track so Perfetto shows component names, not bare
        tids.
        """
        events: list[dict] = [{
            "name": "process_name", "ph": "M", "pid": TRACE_PID, "tid": 0,
            "ts": 0, "args": {"name": self.process_name},
        }]
        for track, tid in self._tracks.items():
            events.append({"name": "thread_name", "ph": "M",
                           "pid": TRACE_PID, "tid": tid, "ts": 0,
                           "args": {"name": track}})
            events.append({"name": "thread_sort_index", "ph": "M",
                           "pid": TRACE_PID, "tid": tid, "ts": 0,
                           "args": {"sort_index": tid}})
        for event in self._events:
            payload: dict = {
                "name": event.name,
                "ph": event.phase,
                "ts": event.ts_ns / 1000.0,
                "pid": TRACE_PID,
                "tid": self._tracks[event.track],
                "cat": event.track,
            }
            if event.phase == "X":
                payload["dur"] = event.dur_ns / 1000.0
            if event.phase == "i":
                payload["s"] = "t"          # thread-scoped instant
            if event.args:
                payload["args"] = dict(event.args)
            events.append(payload)
        return {"traceEvents": events, "displayTimeUnit": "ns"}

    def to_json(self, *, indent: int | None = None) -> str:
        return json.dumps(self.chrome_trace(), indent=indent,
                          sort_keys=False)

    def write(self, path) -> None:
        """Write the Chrome trace JSON to ``path`` (str or Path),
        creating parent directories as needed."""
        from pathlib import Path

        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.to_json() + "\n")


class NullTracer(Tracer):
    """Disabled mode: records nothing, exports an empty (valid) trace."""

    enabled = False

    def complete(self, track: str, name: str, start_ns: float,
                 dur_ns: float, **args) -> None:
        pass

    def instant(self, track: str, name: str, ts_ns: float, **args) -> None:
        pass

    def count(self, track: str, name: str, ts_ns: float,
              value: float) -> None:
        pass


NULL_TRACER = NullTracer()
"""Shared no-op tracer; safe to use as a default everywhere."""
