"""Rendering and export of telemetry: metrics snapshots + trace files.

The experiment/bench CLIs call into this module so every figure run can
drop a Perfetto-loadable timeline (``--trace out.json``) and a
machine-readable metrics snapshot next to its text tables.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..errors import TelemetryError
from .metrics import Registry
from .tracer import Tracer

REQUIRED_EVENT_KEYS = ("name", "ph", "ts", "pid", "tid")
"""Every Chrome trace event must carry these keys."""


def metrics_snapshot(registry: Registry) -> dict:
    """The registry as a JSON-ready flat dict (sorted names)."""
    return registry.snapshot()


def snapshot_digest(snapshot: dict | Registry) -> str | None:
    """12-hex content digest of a metrics snapshot (``None`` if empty).

    The run-ledger field (docs/OBSERVABILITY.md): two runs recorded the
    same metrics iff their digests match, without the ledger carrying
    the full snapshot.  Accepts a registry or an already-taken
    snapshot dict.
    """
    import hashlib

    if isinstance(snapshot, Registry):
        snapshot = snapshot.snapshot()
    if not snapshot:
        return None
    canonical = json.dumps(snapshot, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:12]


def render_metrics(registry: Registry) -> str:
    """A human-readable metrics table, one dotted name per row."""
    snapshot = registry.snapshot()
    if not snapshot:
        return "(no metrics recorded)"
    width = max(len(name) for name in snapshot)
    lines = ["== telemetry metrics =="]
    for name, snap in snapshot.items():
        kind = snap["type"]
        if kind == "histogram":
            if snap["count"]:
                detail = (f"count={snap['count']} "
                          f"mean={snap['mean']:.1f} "
                          f"p50={snap['p50']:.1f} p99={snap['p99']:.1f} "
                          f"max={snap['max']:.1f}")
            else:
                detail = "count=0"
        else:
            detail = f"{snap['value']:g}"
        lines.append(f"{name:<{width}}  {kind:<9}  {detail}")
    return "\n".join(lines)


def write_metrics(registry: Registry, path) -> Path:
    """Write the snapshot as JSON; returns the path written."""
    target = Path(path)
    target.write_text(json.dumps(metrics_snapshot(registry), indent=2,
                                 sort_keys=True) + "\n")
    return target


def write_trace(tracer: Tracer, path) -> Path:
    """Write (and re-validate) the Chrome trace JSON to ``path``."""
    target = Path(path)
    tracer.write(target)
    validate_chrome_trace(json.loads(target.read_text()))
    return target


def validate_chrome_trace(obj) -> dict:
    """Check an object parses as a loadable Chrome/Perfetto trace.

    Raises :class:`TelemetryError` on schema violations; returns the
    object so callers can chain.  Used by the tests and the CI smoke
    run ("failing on crash or invalid trace JSON").
    """
    if not isinstance(obj, dict) or "traceEvents" not in obj:
        raise TelemetryError("trace must be an object with 'traceEvents'")
    events = obj["traceEvents"]
    if not isinstance(events, list):
        raise TelemetryError("'traceEvents' must be a list")
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise TelemetryError(f"event #{index} is not an object")
        missing = [key for key in REQUIRED_EVENT_KEYS if key not in event]
        if missing:
            raise TelemetryError(
                f"event #{index} ({event.get('name')!r}) missing "
                f"keys {missing}")
        if event["ph"] == "X" and "dur" not in event:
            raise TelemetryError(
                f"complete event #{index} ({event['name']!r}) has no dur")
        if not isinstance(event["ts"], (int, float)):
            raise TelemetryError(f"event #{index} ts is not numeric")
    return obj


def trace_track_names(obj: dict) -> set[str]:
    """Component track names present in a validated Chrome trace."""
    return {event["args"]["name"] for event in obj["traceEvents"]
            if event.get("ph") == "M"
            and event.get("name") == "thread_name"}
