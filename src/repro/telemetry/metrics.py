"""Hierarchical named metrics: counters, gauges, and histograms.

The registry is the *aggregate* half of the telemetry subsystem (the
event half lives in :mod:`repro.telemetry.tracer`).  Components create
metrics lazily by dotted name — ``cxl.port.round_trip_ns`` — so a
snapshot of one run groups naturally by simulated component.

Naming convention (see docs/TELEMETRY.md): lowercase dotted paths,
``<layer>.<component>.<quantity>[_<unit>]``.  Quantities carrying a
unit spell it in the last segment (``_ns``, ``_bytes``, ``_pages``).

Percentiles are exact (linear interpolation, numpy-compatible) and come
from a sorted cache that is invalidated on :meth:`Histogram.record` —
repeated ``p50()``/``p99()`` calls between records sort at most once,
which is what lets :class:`repro.sim.stats.LatencyRecorder` delegate
here without regressing the hot DES loops.
"""

from __future__ import annotations

import math

from ..errors import TelemetryError


def interpolate_percentile(ordered: list[float], pct: float) -> float:
    """Linear-interpolated percentile of an already-sorted sample list.

    Matches ``numpy.percentile(..., method='linear')``.  The single
    shared implementation behind both :func:`repro.sim.stats.percentile`
    and :meth:`Histogram.percentile`, so the two stat paths cannot
    drift.
    """
    if not ordered:
        raise ValueError("percentile of an empty sample set")
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"pct must be in [0, 100], got {pct}")
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


def default_latency_buckets_ns() -> tuple[float, ...]:
    """Geometric 10 ns .. ~655 µs bucket bounds (everything above spills
    into the implicit overflow bucket)."""
    return tuple(10.0 * 2.0 ** i for i in range(17))


class Counter:
    """A monotonically increasing count (events, bytes, pages).

    Integer increments stay integers (Python's arbitrary precision),
    so counts beyond 2**53 — byte totals summed across many worker
    exports — never lose low bits to float rounding.  A float
    increment switches the counter to float accumulation, as before.
    """

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: int | float = 0

    @property
    def value(self) -> int | float:
        return self._value

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name!r} cannot decrease (inc {amount})")
        self._value += amount

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self._value}


class Gauge:
    """A point-in-time value (occupancy, utilization, last derate)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        self._value = float(value)

    def add(self, delta: float) -> None:
        self._value += delta

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self._value}


class Histogram:
    """Fixed-bucket distribution with exact cached percentiles.

    Buckets answer "what does the distribution look like" cheaply in a
    snapshot; the raw samples answer p50/p99 exactly, through a sorted
    cache invalidated on :meth:`record` (the satellite-task replacement
    for ``sim.stats``'s former sort-per-call).
    """

    __slots__ = ("name", "buckets", "_counts", "_overflow", "_samples",
                 "_sorted", "_sum")

    def __init__(self, name: str,
                 buckets: tuple[float, ...] | None = None) -> None:
        bounds = tuple(buckets) if buckets is not None \
            else default_latency_buckets_ns()
        if not bounds:
            raise TelemetryError(
                f"histogram {name!r} needs at least one bucket bound")
        if any(nxt <= prev for prev, nxt in zip(bounds, bounds[1:])):
            raise TelemetryError(
                f"histogram {name!r} bucket bounds must strictly increase")
        self.name = name
        self.buckets = bounds
        self._counts = [0] * len(bounds)
        self._overflow = 0
        self._samples: list[float] = []
        self._sorted: list[float] | None = None
        self._sum = 0.0

    def record(self, value: float) -> None:
        """Add one observation; invalidates the percentile cache."""
        self._samples.append(value)
        self._sorted = None
        self._sum += value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self._counts[index] += 1
                return
        self._overflow += 1

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> list[float]:
        """A copy of the raw observations, in record order."""
        return list(self._samples)

    def _ordered(self) -> list[float]:
        if not self._samples:
            raise ValueError(f"{self.name}: no samples recorded")
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        return self._sorted

    def mean(self) -> float:
        if not self._samples:
            raise ValueError(f"{self.name}: no samples recorded")
        return self._sum / len(self._samples)

    def percentile(self, pct: float) -> float:
        return interpolate_percentile(self._ordered(), pct)

    def p50(self) -> float:
        return self.percentile(50.0)

    def p99(self) -> float:
        return self.percentile(99.0)

    def min(self) -> float:
        return self._ordered()[0]

    def max(self) -> float:
        return self._ordered()[-1]

    def bucket_counts(self) -> list[tuple[float, int]]:
        """(upper_bound, count) pairs plus a final (inf, overflow)."""
        pairs = list(zip(self.buckets, self._counts))
        pairs.append((math.inf, self._overflow))
        return pairs

    def snapshot(self) -> dict:
        summary: dict = {"type": "histogram", "count": self.count}
        if self._samples:
            summary.update(mean=self.mean(), p50=self.p50(),
                           p99=self.p99(), min=self.min(), max=self.max())
        summary["buckets"] = [
            {"le": bound if math.isfinite(bound) else "inf",
             "count": count}
            for bound, count in self.bucket_counts() if count]
        return summary


Metric = "Counter | Gauge | Histogram"


class Registry:
    """Get-or-create store of named metrics, snapshot-able as a tree."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind: type, factory):
        if not name or name.startswith(".") or name.endswith("."):
            raise TelemetryError(f"bad metric name {name!r}")
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise TelemetryError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {kind.__name__}")
            return existing
        metric = factory()
        self._metrics[name] = metric
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str,
                  buckets: tuple[float, ...] | None = None) -> Histogram:
        return self._get(name, Histogram,
                         lambda: Histogram(name, buckets))

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def get(self, name: str) -> Counter | Gauge | Histogram:
        if name not in self._metrics:
            raise TelemetryError(f"no metric named {name!r}; "
                                 f"registered: {self.names()}")
        return self._metrics[name]

    def snapshot(self) -> dict[str, dict]:
        """Flat ``{dotted-name: metric-snapshot}`` in sorted name order."""
        return {name: self._metrics[name].snapshot()
                for name in self.names()}

    def tree(self) -> dict:
        """The snapshot nested by dotted-name components."""
        root: dict = {}
        for name, snap in self.snapshot().items():
            node = root
            parts = name.split(".")
            for part in parts[:-1]:
                node = node.setdefault(part, {})
            node[parts[-1]] = snap
        return root


class _NullCounter:
    """Drops everything; the disabled-mode stand-in for :class:`Counter`."""

    __slots__ = ()
    name = "null"
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def snapshot(self) -> dict:
        return {"type": "counter", "value": 0.0}


class _NullGauge:
    __slots__ = ()
    name = "null"
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": 0.0}


class _NullHistogram:
    """Drops samples so disabled runs hold no memory and do no sorting."""

    __slots__ = ()
    name = "null"
    count = 0
    samples: list[float] = []

    def record(self, value: float) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def snapshot(self) -> dict:
        return {"type": "histogram", "count": 0, "buckets": []}


class NullRegistry(Registry):
    """A registry whose metrics discard all updates (no-op mode)."""

    _COUNTER = _NullCounter()
    _GAUGE = _NullGauge()
    _HISTOGRAM = _NullHistogram()

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str):  # type: ignore[override]
        return self._COUNTER

    def gauge(self, name: str):  # type: ignore[override]
        return self._GAUGE

    def histogram(self, name: str, buckets=None):  # type: ignore[override]
        return self._HISTOGRAM

    def snapshot(self) -> dict[str, dict]:
        return {}
