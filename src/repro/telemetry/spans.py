"""Per-request span recording with critical-path tail attribution.

The paper's core move is *decomposing* an access — how much is CPU
stall, link transfer, controller queueing, media — rather than quoting
one end-to-end number.  This module brings that decomposition to the
DES: every simulated request can emit an ordered list of **segments**
(``("client.wait", ns)``, ``("kv.cpu", ns)``, ``("cxl.link", ns)``,
...), recorded in *sim time* so output is a pure function of the run
configuration — byte-identical between serial and ``--jobs N`` runs.

Three artifacts are derived from the raw segments:

* **Attribution aggregates** — per-component totals over all requests
  and, separately, over the requests at or above the p99 end-to-end
  latency ("for requests above p99, 61% of time is shard queueing").
* **Tail exemplars** — the K slowest requests, kept with their full
  segment waterfalls.  Ties break on ``(total_ns, index)`` so the
  selection is seed- and schedule-independent.
* **Time windows** (optional) — per-window request count, throughput,
  p99 and component totals, so bursty/diurnal scenarios show *when*
  degradation happens, not just that it did.

:class:`SpanRecorder` is the recording half; :data:`NULL_SPANS` is the
shared disabled recorder (``enabled`` is ``False`` and ``record`` is a
no-op) that keeps spans-off hot paths — including the KV fast path —
free of any per-request work.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from .metrics import interpolate_percentile

TAIL_PCT = 99.0
"""Conditioning percentile for the tail breakdown."""


class SpanError(ValueError):
    """Raised for malformed span configs or exports."""


# ---------------------------------------------------------------------------
# configuration


@dataclass(frozen=True)
class SpanConfig:
    """Span-layer knobs, folded into cache/checkpoint keys.

    ``exemplars`` is K, the number of slowest traces retained per sweep
    point; ``windows`` > 0 slices the run into that many equal sim-time
    windows for the time-series breakdown.
    """

    exemplars: int = 4
    windows: int = 0

    def __post_init__(self) -> None:
        if self.exemplars < 1:
            raise SpanError(f"exemplars must be >= 1, got {self.exemplars}")
        if self.windows < 0:
            raise SpanError(f"windows must be >= 0, got {self.windows}")

    def to_dict(self) -> dict:
        """Canonical form used in cache keys and saved payloads."""
        return {"exemplars": self.exemplars, "windows": self.windows}

    @classmethod
    def parse(cls, spec: str) -> "SpanConfig":
        """Parse a CLI spec like ``""``, ``"k=8"`` or ``"k=8,windows=6"``.

        Accepted keys: ``k``/``exemplars`` and ``windows``.
        """
        kwargs: dict[str, int] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise SpanError(f"bad span option {part!r} (expected key=value)")
            key, _, value = part.partition("=")
            key = key.strip().lower()
            if key in ("k", "exemplars"):
                key = "exemplars"
            elif key != "windows":
                raise SpanError(f"unknown span option {key!r} "
                                "(expected k/exemplars or windows)")
            try:
                kwargs[key] = int(value)
            except ValueError:
                raise SpanError(f"span option {key}={value!r} is not an "
                                "integer") from None
        return cls(**kwargs)


# ---------------------------------------------------------------------------
# recording


class NullSpanRecorder:
    """Disabled recorder: drops everything, records nothing."""

    enabled = False
    config: SpanConfig | None = None

    def record(self, index: int, start_ns: float,
               segments: Sequence[tuple[str, float]], *,
               kind: str = "request") -> None:
        pass

    def absorb(self, export: Mapping | None) -> None:
        pass

    def export(self) -> dict | None:
        return None


NULL_SPANS = NullSpanRecorder()
"""Shared disabled recorder — the default on every :class:`Telemetry`."""


class SpanRecorder:
    """Collects request segment waterfalls and aggregates them.

    ``record`` is called once per finished request with the request's
    ordered ``(component, duration_ns)`` segments; durations are sim-time
    floats, so aggregation is deterministic regardless of worker count
    or wall-clock scheduling.
    """

    enabled = True

    def __init__(self, config: SpanConfig | None = None) -> None:
        self.config = config if config is not None else SpanConfig()
        # (total_ns, index, kind, start_ns, segments)
        self._requests: list[tuple[float, int, str, float, tuple]] = []
        self._absorbed: list[dict] = []

    def record(self, index: int, start_ns: float,
               segments: Sequence[tuple[str, float]], *,
               kind: str = "request") -> None:
        kept = tuple((name, float(dur)) for name, dur in segments if dur != 0.0)
        total = 0.0
        for _, dur in kept:
            total += dur
        self._requests.append((total, int(index), kind, float(start_ns), kept))

    # -- merging ------------------------------------------------------------

    def absorb(self, export: Mapping | None) -> None:
        """Fold a worker's exported aggregate into this recorder.

        Workers ship finished aggregates (not raw requests); the parent
        absorbs them in sweep-unit order, which keeps the merged result
        byte-identical to a serial run recording into one recorder per
        unit.
        """
        if export:
            self._absorbed.append(dict(export))

    # -- export -------------------------------------------------------------

    def export(self) -> dict | None:
        """The aggregate payload for this recorder, or ``None`` if empty."""
        own = self._aggregate() if self._requests else None
        parts = list(self._absorbed)
        if own is not None:
            parts.append(own)
        if not parts:
            return None
        if len(parts) == 1:
            return parts[0]
        return combine_aggregates(parts)

    def _aggregate(self) -> dict:
        requests = self._requests
        totals = sorted(total for total, *_ in requests)
        components = _component_sums(seg for *_, seg in requests)
        threshold = interpolate_percentile(totals, TAIL_PCT)
        tail = [req for req in requests if req[0] >= threshold]
        agg = {
            "requests": len(requests),
            "total_ns": _float_sum(totals),
            "components": components,
            "tail": {
                "threshold_ns": threshold,
                "requests": len(tail),
                "total_ns": _float_sum(req[0] for req in tail),
                "components": _component_sums(seg for *_, seg in tail),
            },
            "exemplars": self._exemplars(),
        }
        if self.config.windows > 0:
            agg["windows"] = self._windows()
        return agg

    def _exemplars(self) -> list[dict]:
        # Slowest first; ties break on the deterministic request index,
        # never on insertion order, so the pick is schedule-independent.
        ranked = sorted(self._requests, key=lambda r: (-r[0], r[1]))
        keep = ranked[: self.config.exemplars]
        return [
            {
                "index": index,
                "kind": kind,
                "start_ns": start,
                "total_ns": total,
                "segments": [[name, dur] for name, dur in segments],
            }
            for total, index, kind, start, segments in keep
        ]

    def _windows(self) -> list[dict]:
        # Lazy import: repro.sim pulls repro.telemetry at package init,
        # and this module *is* part of that init.
        from ..sim.stats import RateMeter, window_slot, window_width

        count = self.config.windows
        end = 0.0
        for total, _, _, start, _ in self._requests:
            end = max(end, start + total)
        width = window_width(end, count)
        buckets: list[list[tuple]] = [[] for _ in range(count)]
        for req in self._requests:
            buckets[window_slot(req[3], width, count)].append(req)
        windows = []
        for slot, bucket in enumerate(buckets):
            start_ns = slot * width
            window = {
                "start_ns": start_ns,
                "end_ns": start_ns + width,
                "requests": len(bucket),
            }
            if bucket:
                totals = sorted(total for total, *_ in bucket)
                meter = RateMeter(name=f"window-{slot}",
                                  window_start_ns=start_ns)
                meter.add(0.0, len(bucket))
                window["p99_ns"] = interpolate_percentile(totals, TAIL_PCT)
                window["throughput_rps"] = meter.throughput(
                    start_ns + width)
                window["components"] = _component_sums(
                    seg for *_, seg in bucket)
            windows.append(window)
        return windows


def _component_sums(segment_lists: Iterable[Sequence[tuple[str, float]]]
                    ) -> dict:
    sums: dict[str, dict] = {}
    for segments in segment_lists:
        for name, dur in segments:
            slot = sums.get(name)
            if slot is None:
                sums[name] = {"count": 1, "total_ns": dur}
            else:
                slot["count"] += 1
                slot["total_ns"] += dur
    return {name: sums[name] for name in sorted(sums)}


def _float_sum(values: Iterable[float]) -> float:
    total = 0.0
    for value in values:
        total += value
    return total


# ---------------------------------------------------------------------------
# aggregate combination (parent-side merge across sweep units / workers)


def combine_aggregates(aggregates: Sequence[Mapping]) -> dict:
    """Merge per-unit aggregates into one.

    Component totals add; the tail section sums each unit's own
    p99-conditioned slice (each request is conditioned against *its*
    sweep point's distribution, which is the attribution question the
    report asks).  Exemplars are re-ranked globally and trimmed to the
    largest K present.  Per-unit time windows are not combinable across
    different timelines and are dropped here.
    """
    if not aggregates:
        raise SpanError("cannot combine zero span aggregates")
    if len(aggregates) == 1:
        return dict(aggregates[0])
    combined = {
        "requests": sum(a["requests"] for a in aggregates),
        "total_ns": _float_sum(a["total_ns"] for a in aggregates),
        "components": _merge_components(a["components"] for a in aggregates),
        "tail": {
            "requests": sum(a["tail"]["requests"] for a in aggregates),
            "total_ns": _float_sum(a["tail"]["total_ns"] for a in aggregates),
            "components": _merge_components(
                a["tail"]["components"] for a in aggregates),
        },
    }
    keep = max(len(a.get("exemplars", ())) for a in aggregates)
    ranked = sorted(
        (ex for a in aggregates for ex in a.get("exemplars", ())),
        key=lambda ex: (-ex["total_ns"], ex["index"]))
    combined["exemplars"] = ranked[:keep]
    return combined


def _merge_components(component_maps: Iterable[Mapping]) -> dict:
    merged: dict[str, dict] = {}
    for components in component_maps:
        for name, slot in components.items():
            out = merged.get(name)
            if out is None:
                merged[name] = {"count": slot["count"],
                                "total_ns": slot["total_ns"]}
            else:
                out["count"] += slot["count"]
                out["total_ns"] += slot["total_ns"]
    return {name: merged[name] for name in sorted(merged)}


# ---------------------------------------------------------------------------
# rendering


BAR_WIDTH = 24


def _bar(share: float) -> str:
    cells = int(round(share * BAR_WIDTH))
    cells = max(0, min(BAR_WIDTH, cells))
    return "#" * cells + "." * (BAR_WIDTH - cells)


def breakdown_rows(aggregate: Mapping) -> list[tuple[str, float, float]]:
    """``(component, mean_share, tail_share)`` rows, largest mean first."""
    total = aggregate["total_ns"] or 1.0
    tail = aggregate.get("tail", {})
    tail_total = tail.get("total_ns") or 1.0
    tail_components = tail.get("components", {})
    rows = []
    for name, slot in aggregate["components"].items():
        tail_slot = tail_components.get(name)
        rows.append((name,
                     slot["total_ns"] / total,
                     (tail_slot["total_ns"] / tail_total) if tail_slot
                     else 0.0))
    rows.sort(key=lambda row: (-row[1], row[0]))
    return rows


def render_attribution(aggregate: Mapping, *, title: str = "attribution"
                       ) -> str:
    """A fixed-width critical-path table (mean vs p99-conditioned)."""
    lines = [f"{title}: {aggregate['requests']} requests, "
             f"tail >= p{TAIL_PCT:g} = {aggregate['tail']['requests']} requests"]
    lines.append(f"  {'component':<14} {'mean':>6}  {'p99+':>6}  share")
    for name, mean_share, tail_share in breakdown_rows(aggregate):
        lines.append(f"  {name:<14} {mean_share:>5.1%}  {tail_share:>5.1%}  "
                     f"{_bar(tail_share)}")
    return "\n".join(lines)


def render_waterfall(exemplar: Mapping) -> str:
    """One exemplar's segment waterfall as indented proportional bars."""
    total = exemplar["total_ns"] or 1.0
    lines = [f"request #{exemplar['index']} ({exemplar['kind']}): "
             f"{exemplar['total_ns']:.1f} ns"]
    for name, dur in exemplar["segments"]:
        share = dur / total
        lines.append(f"  {name:<14} {dur:>12.1f} ns  {share:>5.1%}  "
                     f"{_bar(share)}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Perfetto flow-event export


def perfetto_spans_trace(points: Mapping[str, Mapping], *,
                         process_name: str = "repro-spans") -> dict:
    """Exemplar waterfalls as a Chrome/Perfetto flow-event trace.

    Each component gets its own track (thread); each exemplar is a chain
    of complete (``X``) slices — laid out back-to-back in sim time —
    linked with ``s``/``t``/``f`` flow events so Perfetto draws the
    request's path across tracks.
    """
    events: list[dict] = []
    tracks: dict[str, int] = {}
    pid = 1
    events.append({"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                   "ts": 0, "args": {"name": process_name}})

    def track(name: str) -> int:
        tid = tracks.get(name)
        if tid is None:
            tid = len(tracks) + 1
            tracks[name] = tid
            events.append({"name": "thread_name", "ph": "M", "pid": pid,
                           "tid": tid, "ts": 0, "args": {"name": name}})
        return tid

    flow_id = 0
    for point in sorted(points):
        for exemplar in points[point].get("exemplars", ()):
            flow_id += 1
            ts = exemplar["start_ns"] / 1000.0  # trace ts is microseconds
            segments = exemplar["segments"]
            last = len(segments) - 1
            for pos, (name, dur) in enumerate(segments):
                tid = track(name)
                dur_us = dur / 1000.0
                args = {"point": point, "request": exemplar["index"],
                        "kind": exemplar["kind"], "dur_ns": dur}
                events.append({"name": name, "ph": "X", "pid": pid,
                               "tid": tid, "ts": ts, "dur": dur_us,
                               "cat": "span", "args": args})
                flow_ph = "s" if pos == 0 else ("f" if pos == last else "t")
                flow = {"name": f"request-{exemplar['index']}",
                        "ph": flow_ph, "pid": pid, "tid": tid,
                        "ts": ts, "cat": "span", "id": flow_id}
                if flow_ph == "f":
                    flow["bp"] = "e"
                events.append(flow)
                ts += dur_us
    return {"traceEvents": events, "displayTimeUnit": "ns"}


# ---------------------------------------------------------------------------
# digests (run-ledger auditability)


def spans_digest(payload: Mapping) -> dict:
    """``{"exemplars": N, "digest": 12-hex}`` summary for the run ledger.

    The digest hashes the canonical JSON form of the payload, so two
    runs with identical span output share a digest and any breakdown
    drift changes it.
    """
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    count = 0
    stack = [payload]
    while stack:
        node = stack.pop()
        if isinstance(node, Mapping):
            exemplars = node.get("exemplars")
            if isinstance(exemplars, (list, tuple)):
                count += len(exemplars)
            stack.extend(v for v in node.values() if isinstance(v, Mapping))
    return {"exemplars": count,
            "digest": hashlib.sha256(blob.encode()).hexdigest()[:12]}


# ---------------------------------------------------------------------------
# module CLI (golden-waterfall extraction)


def main(argv: Sequence[str] | None = None) -> int:
    """Render every tail-exemplar waterfall from a ``.spans.json``.

    One ``[sweep point]`` header + waterfall block per exemplar, sweep
    points in sorted order — the byte-stable form CI diffs against the
    committed golden (``results/spans_golden_waterfalls.txt``).  After
    an intentional recalibration, regenerate with::

        repro-experiments --only figC --spans --no-cache --save out/
        python -m repro.telemetry.spans out/cluster-pooling.spans.json \\
            > results/spans_golden_waterfalls.txt
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.spans",
        description="render exemplar waterfalls from a .spans.json")
    parser.add_argument("payload", help="path to a <id>.spans.json")
    args = parser.parse_args(argv)
    with open(args.payload) as handle:
        payload = json.load(handle)
    blocks = []
    for point in sorted(payload["points"]):
        for exemplar in payload["points"][point]["exemplars"]:
            blocks.append(f"[{point}]\n{render_waterfall(exemplar)}")
    print("\n\n".join(blocks))
    return 0


if __name__ == "__main__":          # pragma: no cover
    raise SystemExit(main())
