"""Serialize worker telemetry and replay it into the parent session.

A worker process cannot record into the parent's
:class:`~repro.telemetry.Telemetry` — it gets a *fresh* session shaped
like the parent's (:func:`fresh_telemetry`), runs its unit, and ships
the session back as plain picklable data (:func:`export_telemetry`).
The parent replays exports **in unit order** (:func:`merge_telemetry`),
which reproduces exactly what a serial run would have recorded:

* trace events re-enter through the parent tracer's normal recording
  methods, so track ids are assigned in first-use order and worker
  track names land on the parent's existing tracks ("corrected" to the
  parent's tid numbering rather than the worker's);
* counters fold by summing, gauges by last-write-wins (unit order),
  histograms by replaying raw samples — the same sequence of mutations
  the serial loop performs.

The determinism tests pin this down by comparing merged parallel
sessions against serial ones event-by-event.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TelemetryError
from ..telemetry import (
    NULL_TELEMETRY,
    Counter,
    Gauge,
    Histogram,
    NullRegistry,
    Registry,
    SpanConfig,
    SpanRecorder,
    Telemetry,
    Tracer,
)


@dataclass(frozen=True)
class TelemetrySpec:
    """The shape of a telemetry session, minus its contents.

    Enough for a worker to build a session that records the same
    categories of data the parent would have recorded inline.
    """

    traced: bool
    metered: bool
    process_name: str = "repro-sim"
    spans: SpanConfig | None = None


def telemetry_spec(telemetry: Telemetry) -> TelemetrySpec:
    """Describe ``telemetry`` so a worker can mirror it."""
    tracer = telemetry.tracer
    return TelemetrySpec(
        traced=tracer.enabled,
        metered=not isinstance(telemetry.registry, NullRegistry),
        process_name=getattr(tracer, "process_name", "repro-sim"),
        spans=telemetry.spans.config if telemetry.spans.enabled else None)


def fresh_telemetry(spec: TelemetrySpec) -> Telemetry:
    """A new, empty session matching ``spec`` (worker side)."""
    if not spec.traced and not spec.metered and spec.spans is None:
        return NULL_TELEMETRY
    return Telemetry(
        registry=Registry() if spec.metered else NullRegistry(),
        tracer=Tracer(process_name=spec.process_name)
        if spec.traced else None,
        spans=SpanRecorder(spec.spans) if spec.spans is not None else None)


def export_telemetry(telemetry: Telemetry) -> dict | None:
    """One unit's telemetry as plain data (``None`` if nothing recorded).

    Format (all JSON-compatible, trivially picklable)::

        {"tracks": [name, ...],                  # creation order
         "events": [(track, name, phase, ts_ns, dur_ns, args), ...],
         "metrics": {name: {"type": ..., ...}, ...}}
    """
    export: dict = {}
    tracer = telemetry.tracer
    if tracer.enabled:
        export["tracks"] = tracer.tracks
        export["events"] = [
            (e.track, e.name, e.phase, e.ts_ns, e.dur_ns, dict(e.args))
            for e in tracer.events]
    registry = telemetry.registry
    if not isinstance(registry, NullRegistry) and len(registry):
        metrics: dict = {}
        for name in registry.names():
            metric = registry.get(name)
            if isinstance(metric, Counter):
                metrics[name] = {"type": "counter",
                                 "value": metric.value}
            elif isinstance(metric, Gauge):
                metrics[name] = {"type": "gauge", "value": metric.value}
            elif isinstance(metric, Histogram):
                metrics[name] = {"type": "histogram",
                                 "buckets": list(metric.buckets),
                                 "samples": metric.samples}
            else:                                    # pragma: no cover
                raise TelemetryError(
                    f"cannot export metric type {type(metric).__name__}")
        export["metrics"] = metrics
    if telemetry.spans.enabled:
        spans = telemetry.spans.export()
        if spans is not None:
            export["spans"] = spans
    return export or None


def merge_telemetry(parent: Telemetry, export: dict | None) -> None:
    """Replay one worker export into ``parent`` (parent side).

    Call once per unit, **in unit order** — ordering is what makes the
    merged session identical to a serial run's.
    """
    if not export:
        return
    tracer = parent.tracer
    if tracer.enabled:
        # Touch tracks first so creation order survives even if a track
        # recorded no events of its own (counter-only tracks).
        for track in export.get("tracks", ()):
            tracer.track_id(track)
        for track, name, phase, ts_ns, dur_ns, args in \
                export.get("events", ()):
            if phase == "X":
                tracer.complete(track, name, ts_ns, dur_ns, **args)
            elif phase == "i":
                tracer.instant(track, name, ts_ns, **args)
            elif phase == "C":
                tracer.count(track, name, ts_ns,
                             value=args.get("value", 0.0))
            else:
                raise TelemetryError(
                    f"cannot merge trace phase {phase!r}")
    registry = parent.registry
    for name, snap in export.get("metrics", {}).items():
        kind = snap.get("type")
        if kind == "counter":
            registry.counter(name).inc(snap["value"])
        elif kind == "gauge":
            registry.gauge(name).set(snap["value"])
        elif kind == "histogram":
            # An empty histogram still merges: the metric must exist in
            # the parent (with the worker's buckets) even when the unit
            # recorded no samples, exactly as the serial path would
            # have created it before its first record().
            histogram = registry.histogram(
                name, buckets=tuple(snap["buckets"]))
            for sample in snap["samples"]:
                histogram.record(sample)
        else:
            raise TelemetryError(f"cannot merge metric type {kind!r}")
    if parent.spans.enabled:
        parent.spans.absorb(export.get("spans"))


def merge_all(parent: Telemetry, exports) -> int:
    """Replay worker exports into ``parent``, in iteration order.

    Callers must pass exports in **unit order** (submission order), not
    completion order — gauges fold last-write-wins, so replaying a
    later unit before an earlier one would leave the gauge at the
    earlier unit's value and diverge from the serial run.  The sweep
    call sites iterate the ordered output of
    :meth:`~repro.parallel.runner.ParallelRunner.map`, which guarantees
    this even when workers finish out of order.

    ``None`` entries are skipped: a unit that failed under supervision
    (:mod:`repro.resilience`) has no telemetry to replay, and a merged
    partial sweep must still fold its completed units in order.
    Returns the number of exports actually merged.
    """
    merged = 0
    for export in exports:
        if export is None:
            continue
        merge_telemetry(parent, export)
        merged += 1
    return merged
