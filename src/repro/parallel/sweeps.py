"""Picklable work-unit functions shipped to worker processes.

Everything here is a module-level function taking one picklable spec —
the form :class:`~repro.parallel.runner.ParallelRunner` requires.
Three unit shapes cover the repo's sweeps:

* :func:`run_sim_point` — one DES configuration (a
  :class:`~repro.cxl.e2e_sim.CxlEndToEndSim` /
  :class:`~repro.cxl.e2e_sim.CxlWriteEndToEndSim` sweep point), with
  the worker's telemetry exported for in-order merging;
* :func:`run_experiment` — one whole registered experiment (the
  ``repro-experiments --jobs`` unit);
* :func:`run_kv_p99_point` — one (workload, placement, QPS) point of a
  Redis-YCSB p99 curve (Fig 6's inner shard);
* :func:`run_model_series` — one analytic series of the MEMO
  bandwidth/random benches (a batch of closed-form model evaluations).

The DSB p99 curves (Fig 10) shard through :func:`run_sim_point`
directly — :class:`~repro.apps.dsb.runner.DsbRunner` has the same
``(telemetry=..., **init_kwargs)`` / ``run(**run_kwargs)`` shape as the
e2e simulators.
"""

from __future__ import annotations

from typing import Any

from .merge import TelemetrySpec, export_telemetry, fresh_telemetry


def run_sim_point(spec: tuple) -> tuple[Any, dict | None]:
    """Run one simulator configuration in this process.

    ``spec`` is ``(sim_class, init_kwargs, run_kwargs, telemetry_spec)``
    where ``init_kwargs`` excludes ``telemetry`` (the worker builds its
    own session from the spec).  Returns ``(result, telemetry_export)``.
    """
    sim_class, init_kwargs, run_kwargs, tspec = spec
    telemetry = fresh_telemetry(tspec) if isinstance(
        tspec, TelemetrySpec) else None
    sim = sim_class(telemetry=telemetry, **init_kwargs)
    result = sim.run(**run_kwargs)
    export = export_telemetry(telemetry) \
        if telemetry is not None else None
    return result, export


def run_experiment(spec: tuple) -> Any:
    """Run one registered experiment: ``spec = (experiment_id, fast)``,
    ``(experiment_id, fast, jobs)`` to shard the experiment's own sweep
    points (experiments that don't accept ``jobs`` ignore it), or
    ``(experiment_id, fast, jobs, fault_plan)`` to run it under a
    degraded-mode :class:`~repro.faults.FaultPlan`.

    Importing :mod:`repro.experiments` populates the registry in the
    worker (fresh interpreters under spawn; a no-op under fork).
    """
    experiment_id, fast, *rest = spec
    jobs = rest[0] if rest else 1
    fault_plan = rest[1] if len(rest) > 1 else None
    from ..experiments import get

    return get(experiment_id).run(fast=fast, jobs=jobs,
                                  fault_plan=fault_plan)


def run_kv_p99_point(spec: tuple) -> Any:
    """One Redis-YCSB p99 point: build the store, drive the server.

    ``spec = (system, num_keys, seed, workload, cxl_fraction, qps,
    requests)``; returns the :class:`~repro.apps.kvstore.server.RunResult`.
    Each point builds (and frees) its own store exactly as the serial
    loop does, so results match bit-for-bit.
    """
    system, num_keys, seed, workload, cxl_fraction, qps, requests = spec
    from ..apps.kvstore.ycsb_runner import RedisYcsbStudy

    study = RedisYcsbStudy(system, num_keys=num_keys, seed=seed)
    return study.p99_point(workload, cxl_fraction, qps,
                           requests=requests)


def run_model_series(spec: tuple) -> list[float]:
    """Evaluate one analytic bandwidth series: a list of GB/s values.

    ``spec = (system, scheme, kind, pattern, points)`` with ``pattern``
    ``None`` for the sequential model and each point either
    ``{"threads": n}`` or ``{"threads": n, "block_bytes": b}``.
    """
    system, scheme, kind, pattern, points = spec
    from ..perfmodel.throughput import ThroughputModel

    model = ThroughputModel(system)
    values = []
    for point in points:
        if pattern is None:
            result = model.bandwidth(scheme, kind, **point)
        else:
            result = model.bandwidth(scheme, kind, pattern, **point)
        values.append(result.gb_per_s)
    return values
