"""Picklable work-unit functions shipped to worker processes.

Everything here is a module-level function taking one picklable spec —
the form :class:`~repro.parallel.runner.ParallelRunner` requires.
Three unit shapes cover the repo's sweeps:

* :func:`run_sim_point` — one DES configuration (a
  :class:`~repro.cxl.e2e_sim.CxlEndToEndSim` /
  :class:`~repro.cxl.e2e_sim.CxlWriteEndToEndSim` sweep point), with
  the worker's telemetry exported for in-order merging;
* :func:`run_experiment` — one whole registered experiment (the
  ``repro-experiments --jobs`` unit);
* :func:`run_kv_p99_point` — one (workload, placement, QPS) point of a
  Redis-YCSB p99 curve (Fig 6's inner shard);
* :func:`run_cluster_point` — one (QPS, skew, pool-share) point of the
  figC cluster-pooling sweep: builds the topology *inside* the worker
  (pool carving is per-point state) and runs the cluster DES;
* :func:`run_model_series` — one analytic series of the MEMO
  bandwidth/random benches (a batch of closed-form model evaluations).

The DSB p99 curves (Fig 10) shard through :func:`run_sim_point`
directly — :class:`~repro.apps.dsb.runner.DsbRunner` has the same
``(telemetry=..., **init_kwargs)`` / ``run(**run_kwargs)`` shape as the
e2e simulators.
"""

from __future__ import annotations

import os
from typing import Any

from .merge import TelemetrySpec, export_telemetry, fresh_telemetry

CRASH_ENV = "REPRO_TEST_UNIT_CRASH"
KILL_ENV = "REPRO_TEST_UNIT_KILL"
HANG_ENV = "REPRO_TEST_UNIT_HANG"
FLAKY_ENV = "REPRO_TEST_UNIT_FLAKY"


def _apply_test_faults(experiment_id: str) -> None:
    """Env-triggered worker misbehavior, for resilience tests and CI.

    These hooks exist so the supervision layer can be exercised
    end-to-end against *real* experiment units without patching code:

    * ``REPRO_TEST_UNIT_CRASH=id[,id…]`` — raise inside the unit;
    * ``REPRO_TEST_UNIT_KILL=id[,id…]`` — die without reporting
      (``os._exit(137)``, the OOM-kill shape);
    * ``REPRO_TEST_UNIT_HANG=id[:seconds][,id…]`` — sleep (default
      3600 s) so a ``--unit-timeout`` or SIGINT drain must intervene;
    * ``REPRO_TEST_UNIT_FLAKY=id:marker-path[,…]`` — crash on the
      first run only (the marker file records the prior attempt), the
      retry-then-succeed shape.

    All are inert unless the variable is set; production runs never
    pay for them beyond four ``os.environ`` reads.
    """
    crash = os.environ.get(CRASH_ENV)
    if crash and experiment_id in crash.split(","):
        raise RuntimeError(
            f"injected crash in {experiment_id} ({CRASH_ENV})")
    kill = os.environ.get(KILL_ENV)
    if kill and experiment_id in kill.split(","):
        os._exit(137)
    hang = os.environ.get(HANG_ENV)
    if hang:
        for part in hang.split(","):
            name, _, seconds = part.partition(":")
            if name == experiment_id:
                import time

                time.sleep(float(seconds) if seconds else 3600.0)
    flaky = os.environ.get(FLAKY_ENV)
    if flaky:
        for part in flaky.split(","):
            name, _, marker = part.partition(":")
            if name == experiment_id and marker:
                if not os.path.exists(marker):
                    with open(marker, "w") as handle:
                        handle.write("attempted\n")
                    raise RuntimeError(
                        f"injected first-attempt crash in "
                        f"{experiment_id} ({FLAKY_ENV})")


def run_sim_point(spec: tuple) -> tuple[Any, dict | None]:
    """Run one simulator configuration in this process.

    ``spec`` is ``(sim_class, init_kwargs, run_kwargs, telemetry_spec)``
    where ``init_kwargs`` excludes ``telemetry`` (the worker builds its
    own session from the spec).  Returns ``(result, telemetry_export)``.
    """
    sim_class, init_kwargs, run_kwargs, tspec = spec
    telemetry = fresh_telemetry(tspec) if isinstance(
        tspec, TelemetrySpec) else None
    sim = sim_class(telemetry=telemetry, **init_kwargs)
    result = sim.run(**run_kwargs)
    export = export_telemetry(telemetry) \
        if telemetry is not None else None
    return result, export


def run_experiment(spec: tuple) -> Any:
    """Run one registered experiment: ``spec = (experiment_id, fast)``,
    ``(experiment_id, fast, jobs)`` to shard the experiment's own sweep
    points (experiments that don't accept ``jobs`` ignore it),
    ``(experiment_id, fast, jobs, fault_plan)`` to run it under a
    degraded-mode :class:`~repro.faults.FaultPlan`,
    ``(experiment_id, fast, jobs, fault_plan, span_config)`` to record
    per-request spans (:mod:`repro.telemetry.spans`), or
    ``(experiment_id, fast, jobs, fault_plan, span_config,
    resilience)`` to run cluster simulations under a
    :class:`~repro.cluster.resilience.ResiliencePolicy`.

    Importing :mod:`repro.experiments` populates the registry in the
    worker (fresh interpreters under spawn; a no-op under fork).
    """
    experiment_id, fast, *rest = spec
    jobs = rest[0] if rest else 1
    fault_plan = rest[1] if len(rest) > 1 else None
    span_config = rest[2] if len(rest) > 2 else None
    resilience = rest[3] if len(rest) > 3 else None
    _apply_test_faults(experiment_id)
    from ..experiments import get

    return get(experiment_id).run(fast=fast, jobs=jobs,
                                  fault_plan=fault_plan,
                                  span_config=span_config,
                                  resilience=resilience)


def run_kv_p99_point(spec: tuple) -> Any:
    """One Redis-YCSB p99 point: build the store, drive the server.

    ``spec = (system, num_keys, seed, workload, cxl_fraction, qps,
    requests)``; returns the :class:`~repro.apps.kvstore.server.RunResult`.
    Each point builds (and frees) its own store exactly as the serial
    loop does, so results match bit-for-bit.
    """
    system, num_keys, seed, workload, cxl_fraction, qps, requests = spec
    from ..apps.kvstore.ycsb_runner import RedisYcsbStudy

    study = RedisYcsbStudy(system, num_keys=num_keys, seed=seed)
    return study.p99_point(workload, cxl_fraction, qps,
                           requests=requests)


def run_cluster_point(spec: tuple) -> tuple[Any, dict | None]:
    """One cluster sweep point: topology + sim + open-loop run.

    ``spec`` is ``(topo_kwargs, sim_kwargs, run_kwargs,
    telemetry_spec)``.  The worker rebuilds the
    :class:`~repro.cluster.ClusterTopology` from scratch — carving the
    pool is part of the point, so serial and sharded runs construct
    identical fleets — and every random draw inside
    :class:`~repro.cluster.ClusterSim` is counter-based or
    request-indexed, which is what makes the merge byte-identical.
    Returns ``(ClusterResult, telemetry_export)``.
    """
    topo_kwargs, sim_kwargs, run_kwargs, tspec = spec
    from ..cluster import ClusterSim, ClusterTopology

    telemetry = fresh_telemetry(tspec) if isinstance(
        tspec, TelemetrySpec) else None
    topology = ClusterTopology(**topo_kwargs)
    sim = ClusterSim(topology, telemetry=telemetry, **sim_kwargs)
    result = sim.run(**run_kwargs)
    export = export_telemetry(telemetry) \
        if telemetry is not None else None
    return result, export


def run_series_supervised(specs: list, *, jobs: int, policy,
                          names: list[str]) -> list:
    """Map :func:`run_model_series` under a supervision policy.

    The MEMO benches' resilient path (``memo bw/random
    --unit-timeout/--retries``): hung or crashed series workers are
    killed and retried per the policy.  A bench curve is all-or-nothing
    — a figure missing a series is worse than no figure — so units
    still poisoned after retries raise one consolidated
    :class:`~repro.errors.ExperimentError` (the CLI turns it into
    exit code 1, not a traceback).
    """
    from ..errors import ExperimentError
    from ..resilience import SupervisedRunner

    outcomes = SupervisedRunner(jobs, policy=policy,
                                names=names).map(run_model_series,
                                                 specs)
    failures = [outcome.failure for outcome in outcomes
                if not outcome.ok]
    if failures:
        raise ExperimentError(
            "bench unit(s) failed under supervision: "
            + "; ".join(str(failure) for failure in failures))
    return [outcome.value for outcome in outcomes]


def run_model_series(spec: tuple) -> list[float]:
    """Evaluate one analytic bandwidth series: a list of GB/s values.

    ``spec = (system, scheme, kind, pattern, points)`` with ``pattern``
    ``None`` for the sequential model and each point either
    ``{"threads": n}`` or ``{"threads": n, "block_bytes": b}``.

    The test fault hooks key on ``<scheme-label>-<kind>`` (e.g.
    ``CXL-ld``), so resilience tests can poison one MEMO curve the way
    experiment ids poison ``repro-experiments`` units.
    """
    system, scheme, kind, pattern, points = spec
    _apply_test_faults(f"{scheme.label}-{kind.value}")
    from ..perfmodel.throughput import ThroughputModel

    model = ThroughputModel(system)
    values = []
    for point in points:
        if pattern is None:
            result = model.bandwidth(scheme, kind, **point)
        else:
            result = model.bandwidth(scheme, kind, pattern, **point)
        values.append(result.gb_per_s)
    return values
