"""Ordered process-parallel fan-out with a serial degenerate mode.

The contract that keeps parallel runs byte-identical to serial ones:

* every unit is a *pure* function of its (picklable) spec — workers
  never share mutable state;
* :meth:`ParallelRunner.map` returns results **in submission order**
  regardless of completion order, so downstream merges (result dicts,
  telemetry replay, ``--save`` files) see the serial sequence;
* units that need randomness derive their seed with :func:`unit_seed`
  from a base seed and their unit index, never from process identity or
  wall clock.
"""

from __future__ import annotations

import hashlib
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Any, Callable, Iterable, Sequence

from ..errors import SimulationError


def effective_cpu_count() -> int:
    """CPUs actually available to this process.

    Containers and cgroup-limited CI runners often report the machine's
    full core count via ``os.cpu_count()`` while pinning the process to
    far fewer — running ``--jobs 4`` on one usable core then *slows*
    the suite down (BENCH history shows suite speedup 0.835 at
    ``--jobs 4`` on one CPU).  Prefers the scheduling affinity mask
    when the platform exposes it; ``REPRO_EFFECTIVE_CPUS`` overrides
    for tests.
    """
    override = os.environ.get("REPRO_EFFECTIVE_CPUS", "")
    if override:
        try:
            value = int(override)
        except ValueError:
            raise SimulationError(
                f"REPRO_EFFECTIVE_CPUS must be an integer: {override!r}")
        if value <= 0:
            raise SimulationError(
                f"REPRO_EFFECTIVE_CPUS must be positive: {value}")
        return value
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def unit_seed(base_seed: int, index: int) -> int:
    """A deterministic 63-bit seed for work unit ``index``.

    Stable across processes, platforms, and Python versions (unlike
    ``hash()``), so a sweep point draws the same random stream whether
    it runs inline, in a worker, or in a differently-sized pool.
    """
    if index < 0:
        raise SimulationError(f"unit index must be non-negative: {index}")
    digest = hashlib.sha256(
        f"{base_seed}:{index}".encode("ascii")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


class ParallelRunner:
    """Shard independent work units across processes, merge in order.

    ``jobs <= 1`` runs every unit inline in the calling process — the
    exact serial code path, no executor, no pickling — which is why the
    CLIs can default to ``--jobs 1`` without perturbing tier-1 runs.

    ``progress`` is an optional stderr-side callback fed from unit
    completions — ``progress(event, index, total, wall_s=...,
    name=...)`` with ``event`` one of ``"started"`` / ``"finished"`` —
    which the CLIs bridge to :class:`repro.obs.ProgressReporter` for
    live ``--jobs`` sweeps.  It runs in the parent process only (never
    pickled), fires in *completion* order, and must not touch the
    results, so enabling it cannot perturb the ordered byte-identical
    output contract.

    ``names`` labels the units for progress and failure reporting —
    sweep-shaped callers pass human-readable point labels (e.g.
    ``figC[qps=50k,skew=0.99]``) so sharded-sweep progress lines and
    supervised-retry summaries name the point, not a bare index.
    Unnamed units fall back to ``unit-<index>``.
    """

    def __init__(self, jobs: int = 1,
                 progress: Callable[..., None] | None = None,
                 names: Sequence[str] | None = None) -> None:
        if jobs < 1:
            raise SimulationError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.progress = progress
        self.names = list(names) if names is not None else None

    @property
    def parallel(self) -> bool:
        return self.jobs > 1

    def unit_name(self, index: int) -> str:
        """The display label of unit ``index`` (``unit-<index>`` when
        the caller named nothing)."""
        if self.names is not None and index < len(self.names):
            return self.names[index]
        return f"unit-{index}"

    def _notify(self, event: str, index: int, total: int,
                wall_s: float | None = None) -> None:
        if self.progress is not None:
            self.progress(event, index, total, wall_s=wall_s,
                          name=self.unit_name(index))

    def map(self, fn: Callable[[Any], Any],
            specs: Iterable[Any]) -> list[Any]:
        """``[fn(s) for s in specs]`` — possibly across processes.

        ``fn`` must be a picklable module-level callable and each spec
        a picklable value.  Results come back in spec order; a worker
        exception propagates to the caller (after the pool drains, the
        earliest-submitted failure wins).
        """
        items: Sequence[Any] = list(specs)
        total = len(items)
        if self.jobs <= 1 or len(items) <= 1:
            results = []
            for index, item in enumerate(items):
                self._notify("started", index, total)
                start = time.perf_counter()
                results.append(fn(item))
                self._notify("finished", index, total,
                             time.perf_counter() - start)
            return results
        workers = min(self.jobs, len(items))
        pool = ProcessPoolExecutor(max_workers=workers)
        try:
            submitted = []
            for index, item in enumerate(items):
                self._notify("started", index, total)
                submitted.append(pool.submit(fn, item))
            index_of = {future: index
                        for index, future in enumerate(submitted)}
            started = time.perf_counter()
            for future in as_completed(submitted):
                if future.exception() is not None:
                    # First failure wins the race to abort: cancel
                    # every not-yet-started unit so the pool drains
                    # promptly instead of grinding through doomed work.
                    break
                # Per-unit wall clock is not observable from the
                # parent; submit-to-completion latency is the honest
                # upper bound the progress ETA works from.
                self._notify("finished", index_of[future], total,
                             time.perf_counter() - started)
        finally:
            # Always shut the pool down — a worker exception, a
            # progress-callback error, or a KeyboardInterrupt must
            # never leave orphaned worker processes chewing on
            # cancelled work (the with-statement's shutdown(wait=True)
            # alone would block until every pending unit finished).
            pool.shutdown(wait=True, cancel_futures=True)
        for future in submitted:
            if future.cancelled():
                continue
            exception = future.exception()
            if exception is not None:
                # Earliest-submitted failure wins among units that ran.
                raise exception
        return [future.result() for future in submitted]
