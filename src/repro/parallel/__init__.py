"""Process-parallel execution for sweeps and experiments.

The paper's figures are built from sweeps — thread counts, block sizes,
QPS points, DLRM configs — whose points are independent of each other.
This package fans those units out across worker processes and folds the
results (and their telemetry) back together so a parallel run is
byte-identical to a serial one:

* :class:`ParallelRunner` (:mod:`repro.parallel.runner`) — an ordered
  ``map`` over a :class:`~concurrent.futures.ProcessPoolExecutor`;
  ``jobs <= 1`` degenerates to an in-process loop so the serial path
  stays exactly what it was.
* :class:`ResultCache` (:mod:`repro.parallel.cache`) — a
  content-addressed store under ``results/.cache/`` keyed on
  ``(experiment id, config dict, package fingerprint)``; re-running an
  unchanged figure becomes a file read.
* :mod:`repro.parallel.merge` — serialize a worker's
  :class:`~repro.telemetry.Telemetry` and replay it into the parent
  session in unit order, preserving track creation order and event
  sequence.
* :mod:`repro.parallel.sweeps` — the picklable module-level unit
  functions shipped to workers (simulator sweep points, whole
  experiments, analytic bench series).

See docs/PERFORMANCE.md for the sharding and cache-key contract.
"""

from __future__ import annotations

from .cache import (
    QUARANTINE_DIR_NAME,
    ResultCache,
    package_fingerprint,
    payload_checksum,
    result_key,
)
from .merge import (
    TelemetrySpec,
    export_telemetry,
    fresh_telemetry,
    merge_all,
    merge_telemetry,
    telemetry_spec,
)
from .runner import ParallelRunner, effective_cpu_count, unit_seed

__all__ = [
    "ParallelRunner",
    "QUARANTINE_DIR_NAME",
    "ResultCache",
    "TelemetrySpec",
    "effective_cpu_count",
    "export_telemetry",
    "fresh_telemetry",
    "merge_all",
    "merge_telemetry",
    "package_fingerprint",
    "payload_checksum",
    "result_key",
    "telemetry_spec",
    "unit_seed",
]
