"""A content-addressed result cache under ``results/.cache/``.

Keys
----
A cache key is the SHA-256 of the canonical JSON of::

    {"experiment": <id>, "config": <config dict>, "version": <fingerprint>}

``config`` is whatever parameter dict fully determines the result
(``{"fast": true}`` for the experiment runner).  The fingerprint
defaults to :func:`package_fingerprint` — the package version *plus* a
digest of every ``repro`` source file — so editing any simulator module
invalidates every cached result automatically; there is no staleness
window between code changes and version bumps.

Entries are single JSON files named ``<key>.json`` holding the key
material (for ``repro-experiments --cache-info`` style inspection and
debugging), the payload, and a ``sha256`` checksum of the payload's
canonical JSON.  Writes are atomic (temp file + rename), so a parallel
run racing on the same key leaves one valid entry.

Quarantine (docs/RESILIENCE.md)
-------------------------------
Reads verify the checksum.  A corrupt, truncated, or
checksum-mismatched entry is **quarantined** — moved to
``<root>/quarantine/`` for post-mortem rather than deleted — and the
read reports a miss, so the unit recomputes and the sweep never
crashes on bad cache state.  The optional ``on_quarantine(key, path,
reason)`` callback is how the CLIs turn a quarantine into a ledger
event and a ``cache-quarantined`` log line.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from ..errors import ExperimentError

DEFAULT_CACHE_DIR = Path("results") / ".cache"
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
QUARANTINE_DIR_NAME = "quarantine"

_fingerprint_cache: str | None = None


def package_fingerprint() -> str:
    """``<version>+src.<digest12>`` over every ``repro`` source file.

    The digest covers file *contents* (sorted by package-relative path,
    so it is checkout-location independent).  Computed once per
    process.
    """
    global _fingerprint_cache
    if _fingerprint_cache is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
        _fingerprint_cache = (
            f"{repro.__version__}+src.{digest.hexdigest()[:12]}")
    return _fingerprint_cache


def result_key(experiment_id: str, config: dict,
               version: str | None = None) -> str:
    """The content address for one (experiment, config, version) triple."""
    if not experiment_id:
        raise ExperimentError("cache key needs an experiment id")
    material = {
        "experiment": experiment_id,
        "config": config,
        "version": version if version is not None
        else package_fingerprint(),
    }
    canonical = json.dumps(material, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def payload_checksum(payload: dict) -> str:
    """SHA-256 of a payload's canonical JSON (the entry checksum)."""
    canonical = json.dumps(payload, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


class ResultCache:
    """Get/put JSON payloads by content address.

    The directory defaults to ``results/.cache`` under the current
    working directory; the ``REPRO_CACHE_DIR`` environment variable
    overrides it (used by tests and CI to isolate runs).

    ``on_quarantine(key, quarantine_path, reason)`` is called once per
    entry that fails read verification, after the entry has been moved
    aside; ``reason`` is one of ``"unreadable"`` (not JSON / not an
    entry), ``"checksum-mismatch"``, or ``"missing-checksum"``.
    """

    def __init__(self, root: Path | str | None = None, *,
                 on_quarantine=None) -> None:
        if root is None:
            root = os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
        self.root = Path(root)
        self.on_quarantine = on_quarantine

    def path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    @property
    def quarantine_dir(self) -> Path:
        return self.root / QUARANTINE_DIR_NAME

    def _quarantine(self, key: str, path: Path, reason: str) -> None:
        """Move a bad entry aside; never raises (a failed move deletes)."""
        target = self.quarantine_dir / path.name
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            if target.exists():
                target = target.with_suffix(
                    f".{os.getpid()}{target.suffix}")
            os.replace(path, target)
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass
        if self.on_quarantine is not None:
            self.on_quarantine(key, str(target), reason)

    def get(self, key: str) -> dict | None:
        """The cached payload, or ``None`` on miss/quarantine.

        Every read verifies the entry's payload checksum; a corrupt,
        truncated, or tampered entry is moved to the quarantine
        directory (reported through ``on_quarantine``) and reads as a
        miss, so the caller recomputes instead of crashing — or worse,
        trusting a silently-damaged figure.
        """
        path = self.path(key)
        try:
            entry = json.loads(path.read_text())
            payload = entry["payload"]
            checksum = entry.get("sha256")
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, KeyError, TypeError, OSError):
            self._quarantine(key, path, "unreadable")
            return None
        if not isinstance(entry, dict) or not isinstance(payload, dict):
            self._quarantine(key, path, "unreadable")
            return None
        if checksum is None:
            # Entries predate checksums only across a source change,
            # which already re-keys them — an entry under a *current*
            # key with no checksum was hand-edited or damaged.
            self._quarantine(key, path, "missing-checksum")
            return None
        if checksum != payload_checksum(payload):
            self._quarantine(key, path, "checksum-mismatch")
            return None
        return payload

    def put(self, key: str, payload: dict, *,
            key_material: dict | None = None) -> Path:
        """Store ``payload`` under ``key`` atomically; returns the path."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path(key)
        entry = {"key": key, "key_material": key_material or {},
                 "sha256": payload_checksum(payload),
                 "payload": payload}
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(entry, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, path)
        return path

    def __contains__(self, key: str) -> bool:
        return self.path(key).is_file()

    def __len__(self) -> int:
        return len(list(self.root.glob("*.json"))) \
            if self.root.is_dir() else 0

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
