"""Intel Data Streaming Accelerator (DSA) model.

§4.3.1: "Intel DSA is comprised of work queues (WQs) to hold offloaded
work descriptors, and processing engines (PEs) to pull descriptors from
the WQs to operate on.  Descriptors can be sent synchronously ... or
asynchronously ... To further improve throughput, operations can be
batched to amortize the offload latency."

The model reproduces Fig. 4b's structure: per-offload latency that
batching amortizes, a submission pipeline that asynchrony fills, and
per-direction memory ceilings that make C2D faster than D2C and C2C the
slowest.
"""

from .descriptor import BatchDescriptor, Descriptor, DsaOpcode
from .wq import WorkQueue
from .engine import ProcessingEngine
from .device import DsaDevice, SubmissionMode

__all__ = [
    "DsaOpcode",
    "Descriptor",
    "BatchDescriptor",
    "WorkQueue",
    "ProcessingEngine",
    "DsaDevice",
    "SubmissionMode",
]
