"""DSA work descriptors and batch descriptors."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..cpu.system import MemoryScheme
from ..errors import DeviceError


class DsaOpcode(enum.Enum):
    """The DSA operations this model supports."""

    MEMMOVE = "memmove"
    MEMFILL = "memfill"
    COMPARE = "compare"
    BATCH = "batch"


@dataclass(frozen=True)
class Descriptor:
    """One offloaded operation."""

    opcode: DsaOpcode
    size_bytes: int
    src: MemoryScheme | None    # None for fill (no source read)
    dst: MemoryScheme

    def __post_init__(self) -> None:
        if self.opcode is DsaOpcode.BATCH:
            raise DeviceError("use BatchDescriptor for batches")
        if self.size_bytes <= 0:
            raise DeviceError(f"descriptor size must be positive: "
                              f"{self.size_bytes}")
        if self.opcode is DsaOpcode.MEMMOVE and self.src is None:
            raise DeviceError("memmove needs a source")

    @property
    def reads_bytes(self) -> int:
        """Bytes read from ``src`` memory."""
        return self.size_bytes if self.src is not None else 0

    @property
    def writes_bytes(self) -> int:
        """Bytes written to ``dst`` memory (compare writes nothing)."""
        return 0 if self.opcode is DsaOpcode.COMPARE else self.size_bytes


@dataclass(frozen=True)
class BatchDescriptor:
    """A batch: one submission carrying many descriptors.

    Batching is the paper's lever for amortizing offload latency
    (Fig. 4b uses batch sizes 1, 16 and 128).
    """

    descriptors: tuple[Descriptor, ...]

    def __post_init__(self) -> None:
        if not self.descriptors:
            raise DeviceError("a batch needs at least one descriptor")

    @property
    def size(self) -> int:
        return len(self.descriptors)

    @property
    def total_bytes(self) -> int:
        return sum(d.size_bytes for d in self.descriptors)


def memmove(size_bytes: int, src: MemoryScheme,
            dst: MemoryScheme) -> Descriptor:
    """Convenience constructor for the common memmove descriptor."""
    return Descriptor(DsaOpcode.MEMMOVE, size_bytes, src, dst)
