"""A DSA processing engine: descriptor timing against memory ceilings."""

from __future__ import annotations

from ..cpu.system import MemoryScheme, System
from ..errors import DeviceError
from ..mem.dram import AccessPattern
from ..units import SEC, gb_per_s
from .descriptor import BatchDescriptor, Descriptor

ENGINE_PEAK_BW = gb_per_s(30.0)
"""One PE's internal move rate, before memory ceilings apply."""

DESCRIPTOR_SETUP_NS = 110.0
"""Per-descriptor processing overhead inside the engine."""

# DSA's deep read pipeline extracts most of a device's read bandwidth,
# but posted writes into the CXL device queue in its finite buffer —
# which is why the paper sees C2D outrun D2C ("the C2D case reporting
# higher throughput due to lower write latency on DRAM", §4.3.1).
READ_SIDE_EFFICIENCY = {True: 0.90, False: 1.00}     # keyed by "is CXL"
WRITE_SIDE_EFFICIENCY = {True: 0.78, False: 1.00}


class ProcessingEngine:
    """Computes service times for descriptors on a given system."""

    def __init__(self, system: System, engine_id: int = 0) -> None:
        self.system = system
        self.engine_id = engine_id

    def move_rate(self, src: MemoryScheme | None,
                  dst: MemoryScheme) -> float:
        """Sustained copy rate (application B/s) for one descriptor stream."""
        rate = ENGINE_PEAK_BW
        if src is not None:
            src_backend = self.system.scheme_backend(src)
            src_ceiling = src_backend.bus_ceiling(
                AccessPattern.SEQUENTIAL, 1 << 20, streams=1)
            src_ceiling *= READ_SIDE_EFFICIENCY[src is MemoryScheme.CXL]
            rate = min(rate, src_ceiling)
        dst_backend = self.system.scheme_backend(dst)
        dst_ceiling = dst_backend.bus_ceiling(
            AccessPattern.SEQUENTIAL, 1 << 20, streams=1, write_fraction=1.0)
        dst_ceiling *= WRITE_SIDE_EFFICIENCY[dst is MemoryScheme.CXL]
        rate = min(rate, dst_ceiling)
        if src is not None and src is dst:
            # Reads and writes share one device bus.
            same_bus = self.system.scheme_backend(src).bus_ceiling(
                AccessPattern.SEQUENTIAL, 1 << 20, streams=2,
                write_fraction=0.5)
            rate = min(rate, same_bus / 2)
        return rate

    def service_ns(self, work: Descriptor | BatchDescriptor) -> float:
        """Engine-side execution time of one submission."""
        if isinstance(work, BatchDescriptor):
            return sum(self.service_ns(d) for d in work.descriptors)
        if not isinstance(work, Descriptor):
            raise DeviceError(f"not a descriptor: {work!r}")
        rate = self.move_rate(work.src, work.dst)
        return DESCRIPTOR_SETUP_NS + work.size_bytes / rate * SEC
