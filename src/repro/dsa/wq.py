"""DSA work queues."""

from __future__ import annotations

from collections import deque

from ..errors import DeviceError
from .descriptor import BatchDescriptor, Descriptor

Submission = "Descriptor | BatchDescriptor"


class WorkQueue:
    """A bounded descriptor queue between submitters and engines.

    Real DSA exposes dedicated WQs (one submitter, ``ENQCMD``-free) and
    shared WQs; for throughput modeling only the depth matters: it is the
    maximum number of submissions in flight, i.e. how much asynchrony the
    software can extract.
    """

    def __init__(self, depth: int = 128, *, dedicated: bool = True,
                 name: str = "wq0") -> None:
        if depth <= 0:
            raise DeviceError(f"WQ depth must be positive: {depth}")
        self.depth = depth
        self.dedicated = dedicated
        self.name = name
        self._entries: deque[Descriptor | BatchDescriptor] = deque()
        self.enqueued_total = 0
        self.rejected_total = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.depth

    def submit(self, work: Descriptor | BatchDescriptor) -> bool:
        """Enqueue one submission; False when full (ENQCMD retry status)."""
        if self.is_full:
            self.rejected_total += 1
            return False
        self._entries.append(work)
        self.enqueued_total += 1
        return True

    def pull(self) -> Descriptor | BatchDescriptor:
        """An engine takes the oldest submission."""
        if not self._entries:
            raise DeviceError(f"pull from empty WQ {self.name!r}")
        return self._entries.popleft()
