"""The composed DSA device: submission modes and throughput.

Timing model (matching the §4.3.1 description):

* **sync** — the submitter waits for each submission's completion
  record: one offload round trip (``OFFLOAD_LATENCY_NS``) plus engine
  service per submission, no overlap.
* **async** — submissions stream into the WQ; once the pipeline is full
  the engine is the bottleneck and the offload latency is hidden.  Each
  submission still pays the small doorbell cost on the CPU side.
* **batching** — one submission carries N descriptors, so the offload
  round trip (sync) or doorbell (async) is amortized over N operations.
"""

from __future__ import annotations

import enum

from ..cpu.system import MemoryScheme, System
from ..errors import DeviceError
from ..units import SEC
from .descriptor import BatchDescriptor, Descriptor, memmove
from .engine import ProcessingEngine
from .wq import WorkQueue

OFFLOAD_LATENCY_NS = 1900.0
"""Submit-to-completion-record round trip for an otherwise idle device."""

DOORBELL_NS = 120.0
"""CPU-side cost of one ENQCMD/MOVDIR64B submission."""


class SubmissionMode(enum.Enum):
    """How software drives the device (Fig. 4b's sync/async columns)."""

    SYNC = "sync"
    ASYNC = "async"


class DsaDevice:
    """One DSA instance: a WQ feeding a processing engine."""

    def __init__(self, system: System, *, wq_depth: int = 128) -> None:
        self.system = system
        self.wq = WorkQueue(depth=wq_depth)
        self.engine = ProcessingEngine(system)

    def copy_throughput(self, src: MemoryScheme, dst: MemoryScheme, *,
                        mode: SubmissionMode, batch_size: int = 1,
                        transfer_bytes: int = 4096) -> float:
        """Sustained memmove throughput (application B/s).

        ``transfer_bytes`` is the per-descriptor size (the paper's tiered-
        memory use case moves 4 KiB or 2 MiB pages, §6); ``batch_size``
        descriptors ride in each submission.
        """
        if batch_size <= 0:
            raise DeviceError(f"batch size must be positive: {batch_size}")
        work = self._make_submission(src, dst, batch_size, transfer_bytes)
        service = self.engine.service_ns(work)
        bytes_per_submission = batch_size * transfer_bytes
        if mode is SubmissionMode.SYNC:
            period = OFFLOAD_LATENCY_NS + service
        else:
            # Pipelined: the engine is busy back-to-back; the CPU-side
            # doorbell only matters if it outpaces the engine.
            period = max(service, DOORBELL_NS)
        return bytes_per_submission / (period / SEC)

    def copy_latency_ns(self, src: MemoryScheme, dst: MemoryScheme, *,
                        transfer_bytes: int = 4096) -> float:
        """Latency of one synchronous unbatched offload."""
        descriptor = memmove(transfer_bytes, src, dst)
        return OFFLOAD_LATENCY_NS + self.engine.service_ns(descriptor)

    def _make_submission(self, src: MemoryScheme, dst: MemoryScheme,
                         batch_size: int,
                         transfer_bytes: int) -> Descriptor | BatchDescriptor:
        if batch_size == 1:
            return memmove(transfer_bytes, src, dst)
        return BatchDescriptor(tuple(
            memmove(transfer_bytes, src, dst) for _ in range(batch_size)))
