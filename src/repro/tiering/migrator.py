"""Page migration executors: CPU copies vs DSA offload.

§6: "Use Intel DSA for bulk memory movement from/to CXL memory ... This
is especially useful in a tiered memory system, where data movement
often happens in page granularity (i.e., 4KB or 2MB)."  The migrator
lets the simulator charge a realistic time cost to each epoch's plan
under either engine, making that recommendation measurable.
"""

from __future__ import annotations

import enum

from ..cpu.system import MemoryScheme, System
from ..dsa.device import DsaDevice, SubmissionMode
from ..errors import WorkloadError
from ..perfmodel.throughput import ThroughputModel
from ..telemetry import NULL_TELEMETRY, Telemetry
from ..units import PAGE_4K, SEC
from .policy import MigrationPlan

MIGRATOR_TRACK = "tiering.migrator"


class MigrationEngine(enum.Enum):
    """Who moves the pages."""

    CPU_MEMCPY = "memcpy"
    CPU_MOVDIR = "movdir64B"
    DSA_ASYNC = "dsa-async"


class PageMigrator:
    """Charges wall-clock time (and CPU time) for migration plans."""

    def __init__(self, system: System, *,
                 engine: MigrationEngine = MigrationEngine.DSA_ASYNC,
                 page_bytes: int = PAGE_4K,
                 dsa_batch: int = 128,
                 telemetry: Telemetry | None = None) -> None:
        if page_bytes <= 0:
            raise WorkloadError("page size must be positive")
        self.system = system
        self.engine = engine
        self.page_bytes = page_bytes
        self.dsa_batch = dsa_batch
        self.telemetry = telemetry if telemetry is not None \
            else NULL_TELEMETRY
        # The migrator has no DES clock; plans execute back-to-back on
        # a private cumulative timeline so traced epochs line up.
        self._clock_ns = 0.0
        self._model = ThroughputModel(system)
        self._dsa = DsaDevice(system)

    def _rate(self, src: MemoryScheme, dst: MemoryScheme) -> float:
        """Sustained migration bandwidth (B/s) for one direction."""
        if self.engine is MigrationEngine.CPU_MEMCPY:
            return self._model.memcpy_bandwidth(src, dst).app_bandwidth
        if self.engine is MigrationEngine.CPU_MOVDIR:
            return self._model.copy_bandwidth(src, dst).app_bandwidth
        return self._dsa.copy_throughput(src, dst,
                                         mode=SubmissionMode.ASYNC,
                                         batch_size=self.dsa_batch,
                                         transfer_bytes=self.page_bytes)

    def migration_time_ns(self, plan: MigrationPlan) -> float:
        """Time to execute a plan (promotions + demotions, serialized).

        Promotions read CXL / write DRAM (C2D); demotions the reverse.
        """
        promote_bytes = plan.promote.size * self.page_bytes
        demote_bytes = plan.demote.size * self.page_bytes
        tracer = self.telemetry.tracer
        registry = self.telemetry.registry
        total = 0.0
        if promote_bytes:
            promote_ns = promote_bytes / self._rate(
                MemoryScheme.CXL, MemoryScheme.DDR5_L8) * SEC
            if tracer.enabled:
                tracer.complete(MIGRATOR_TRACK, "promote",
                                self._clock_ns + total, promote_ns,
                                pages=int(plan.promote.size),
                                engine=self.engine.value)
            registry.counter("tiering.migrator.promoted_pages").inc(
                int(plan.promote.size))
            total += promote_ns
        if demote_bytes:
            demote_ns = demote_bytes / self._rate(
                MemoryScheme.DDR5_L8, MemoryScheme.CXL) * SEC
            if tracer.enabled:
                tracer.complete(MIGRATOR_TRACK, "demote",
                                self._clock_ns + total, demote_ns,
                                pages=int(plan.demote.size),
                                engine=self.engine.value)
            registry.counter("tiering.migrator.demoted_pages").inc(
                int(plan.demote.size))
            total += demote_ns
        if total:
            registry.histogram("tiering.migrator.plan_ns").record(total)
        self._clock_ns += total
        return total

    def cpu_busy_fraction(self) -> float:
        """Share of one core the migration engine occupies while moving.

        DSA offload frees the CPU (§6); instruction-based copies burn a
        full hardware thread.
        """
        return 0.05 if self.engine is MigrationEngine.DSA_ASYNC else 1.0
