"""Tiering policies: what to promote, what to demote, and when.

A policy inspects the tracker after each epoch and returns a migration
plan — page indices to promote (CXL → DRAM) and demote (DRAM → CXL).
The *do-nothing* policy is the paper's weighted-interleave baseline:
pages stay wherever the initial N:M policy placed them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import WorkloadError
from .tracker import HotnessTracker


@dataclass(frozen=True)
class MigrationPlan:
    """One epoch's promotions and demotions (page indices)."""

    promote: np.ndarray      # pages to move CXL -> DRAM
    demote: np.ndarray       # pages to move DRAM -> CXL

    @property
    def total_pages(self) -> int:
        return int(self.promote.size + self.demote.size)


class TieringPolicy:
    """Base policy: decide migrations from tracker + current placement."""

    def plan(self, tracker: HotnessTracker, on_dram: np.ndarray,
             dram_capacity_pages: int) -> MigrationPlan:
        """``on_dram`` is a boolean mask over pages (True = DRAM)."""
        raise NotImplementedError


class NoMigration(TieringPolicy):
    """The §5 baseline: static placement, never migrate."""

    def plan(self, tracker: HotnessTracker, on_dram: np.ndarray,
             dram_capacity_pages: int) -> MigrationPlan:
        empty = np.empty(0, dtype=np.int64)
        return MigrationPlan(promote=empty, demote=empty)


class SamplingPolicy(TieringPolicy):
    """AutoNUMA-style sampled promotion.

    Instead of exact per-page heat, the kernel samples accesses (NUMA
    hinting faults hit a random subset of pages each epoch) and
    promotes pages whose *sampled* heat clears the threshold.  Cheaper
    to run than full tracking, slower to converge, and it misses
    lukewarm pages — the classic trade against TPP-style active-list
    tracking, reproduced here so the two can be compared on identical
    workloads.
    """

    def __init__(self, *, sample_rate: float = 0.25,
                 promotion_threshold: float = 1.0,
                 max_migrations_per_epoch: int = 1024,
                 seed: int = 29) -> None:
        if not 0.0 < sample_rate <= 1.0:
            raise WorkloadError(f"sample rate in (0, 1]: {sample_rate}")
        if promotion_threshold <= 0 or max_migrations_per_epoch <= 0:
            raise WorkloadError("thresholds must be positive")
        self.sample_rate = sample_rate
        self.promotion_threshold = promotion_threshold
        self.max_migrations = max_migrations_per_epoch
        self._rng = np.random.default_rng(seed)

    def plan(self, tracker: HotnessTracker, on_dram: np.ndarray,
             dram_capacity_pages: int) -> MigrationPlan:
        if on_dram.shape[0] != tracker.num_pages:
            raise WorkloadError("placement mask size mismatch")
        cxl_pages = np.flatnonzero(~on_dram)
        if cxl_pages.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return MigrationPlan(promote=empty, demote=empty)
        sampled = cxl_pages[self._rng.random(cxl_pages.size)
                            < self.sample_rate]
        hot = sampled[tracker.heats(sampled)
                      >= self.promotion_threshold]
        order = np.argsort(tracker.heats(hot))[::-1]
        promote = np.asarray(hot[order][:self.max_migrations],
                             dtype=np.int64)
        dram_used = int(on_dram.sum())
        overflow = dram_used + promote.size - dram_capacity_pages
        if overflow > 0:
            demote = tracker.coldest_within(np.flatnonzero(on_dram),
                                            overflow)
        else:
            demote = np.empty(0, dtype=np.int64)
        return MigrationPlan(promote=promote,
                             demote=np.asarray(demote, dtype=np.int64))


class TppLikePolicy(TieringPolicy):
    """Promotion/demotion in the spirit of TPP [24].

    Each epoch: promote the hottest CXL-resident pages (heat above
    ``promotion_threshold``), capped by ``max_migrations_per_epoch``;
    when DRAM would overflow, demote the coldest DRAM pages to make
    room (watermark-based reclaim).
    """

    def __init__(self, *, promotion_threshold: float = 2.0,
                 max_migrations_per_epoch: int = 1024) -> None:
        if promotion_threshold <= 0:
            raise WorkloadError("promotion threshold must be positive")
        if max_migrations_per_epoch <= 0:
            raise WorkloadError("migration cap must be positive")
        self.promotion_threshold = promotion_threshold
        self.max_migrations = max_migrations_per_epoch

    def plan(self, tracker: HotnessTracker, on_dram: np.ndarray,
             dram_capacity_pages: int) -> MigrationPlan:
        if on_dram.shape[0] != tracker.num_pages:
            raise WorkloadError("placement mask size mismatch")
        hot_order = tracker.hottest(tracker.num_pages)
        hot_cxl = hot_order[~on_dram[hot_order]]
        above = hot_cxl[tracker.heats(hot_cxl)
                        >= self.promotion_threshold]
        promote = np.asarray(above[:self.max_migrations], dtype=np.int64)

        dram_used = int(on_dram.sum())
        overflow = dram_used + promote.size - dram_capacity_pages
        if overflow > 0:
            dram_pages = np.flatnonzero(on_dram)
            demote = tracker.coldest_within(dram_pages, overflow)
        else:
            demote = np.empty(0, dtype=np.int64)
        return MigrationPlan(promote=promote,
                             demote=np.asarray(demote, dtype=np.int64))
