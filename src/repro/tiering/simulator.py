"""The epoch-driven tiering simulator.

Workload: a Zipfian page-access stream whose hot set *shifts* every
``shift_every`` epochs (datacenter working sets drift).  The dataset is
bigger than DRAM, so some pages must live on CXL; what varies is which
ones.

Each epoch the simulator (1) draws accesses and charges each the read
path of the page's current tier, (2) feeds the tracker, (3) asks the
policy for a plan, (4) charges the migrator's time, and (5) applies the
moves.  The figure of merit is effective average access latency
including amortized migration cost — exactly the trade a TPP-like
kernel policy navigates, with the paper's weighted interleave as the
baseline that any policy "should, at the very least, perform equally
well" against (§5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.series import Series
from ..cpu.system import System
from ..errors import WorkloadError
from ..sim.rng import substream
from ..workloads.distributions import ZipfianKeys
from .migrator import PageMigrator
from .policy import TieringPolicy
from .tracker import HotnessTracker


@dataclass(frozen=True)
class EpochStats:
    """One epoch's outcome."""

    epoch: int
    avg_access_ns: float          # memory time per access, placement only
    migrated_pages: int
    migration_ns: float
    effective_ns: float           # avg access + amortized migration

    @property
    def dram_hit_fraction(self) -> float | None:
        return None               # reported at simulator level


class TieringSimulator:
    """Runs a policy against the shifting-hot-set workload."""

    def __init__(self, system: System, *, num_pages: int = 8192,
                 dram_capacity_pages: int = 2048,
                 accesses_per_epoch: int = 50_000,
                 shift_every: int = 8, seed: int = 11) -> None:
        if dram_capacity_pages >= num_pages:
            raise WorkloadError(
                "dataset must exceed DRAM capacity or tiering is moot")
        if accesses_per_epoch <= 0 or shift_every <= 0:
            raise WorkloadError("epoch parameters must be positive")
        self.system = system
        self.num_pages = num_pages
        self.dram_capacity_pages = dram_capacity_pages
        self.accesses_per_epoch = accesses_per_epoch
        self.shift_every = shift_every
        self.seed = seed
        self._dram_ns = (system.edge_ns()
                         + system.backend_for_node(
                             system.LOCAL_NODE).idle_read_ns())
        self._cxl_ns = (system.edge_ns()
                        + system.backend_for_node(
                            system.cxl_node_id).idle_read_ns())

    # -- workload ----------------------------------------------------------

    def _epoch_pages(self, epoch: int,
                     rng: np.random.Generator) -> np.ndarray:
        """Zipfian page stream, rotated by the current hot-set shift."""
        zipf = ZipfianKeys(self.num_pages)
        ranks = np.array([zipf.next_rank(rng)
                          for _ in range(self.accesses_per_epoch)])
        ranks = np.minimum(ranks, self.num_pages - 1)
        shift = (epoch // self.shift_every) * (self.num_pages // 7)
        return (ranks + shift) % self.num_pages

    def initial_placement(self) -> np.ndarray:
        """Weighted-interleave start: DRAM-share of pages, round-robin.

        The mask mirrors the N:M policy with N:M = capacity ratio, i.e.
        what ``numactl`` weighted interleave would produce.
        """
        on_dram = np.zeros(self.num_pages, dtype=bool)
        stride = self.num_pages / self.dram_capacity_pages
        indices = (np.arange(self.dram_capacity_pages) * stride).astype(int)
        on_dram[np.unique(indices)] = True
        return on_dram

    # -- main loop ----------------------------------------------------------

    def run(self, policy: TieringPolicy, migrator: PageMigrator, *,
            epochs: int = 24) -> list[EpochStats]:
        if epochs <= 0:
            raise WorkloadError("epochs must be positive")
        rng = substream(f"tiering-{self.seed}", self.seed)
        tracker = HotnessTracker(self.num_pages)
        on_dram = self.initial_placement()
        stats: list[EpochStats] = []
        for epoch in range(epochs):
            pages = self._epoch_pages(epoch, rng)
            hits = on_dram[pages]
            avg_ns = float(np.where(hits, self._dram_ns,
                                    self._cxl_ns).mean())
            tracker.record_accesses(pages)
            tracker.end_epoch()

            plan = policy.plan(tracker, on_dram,
                               self.dram_capacity_pages)
            migration_ns = migrator.migration_time_ns(plan)
            on_dram[plan.demote] = False
            on_dram[plan.promote] = True
            if int(on_dram.sum()) > self.dram_capacity_pages:
                raise WorkloadError(
                    "policy overflowed DRAM capacity — bad plan")

            effective = avg_ns + migration_ns / self.accesses_per_epoch
            stats.append(EpochStats(epoch=epoch, avg_access_ns=avg_ns,
                                    migrated_pages=plan.total_pages,
                                    migration_ns=migration_ns,
                                    effective_ns=effective))
        return stats

    # -- reporting -------------------------------------------------------------

    @staticmethod
    def latency_series(stats: list[EpochStats], name: str) -> Series:
        series = Series(name, x_label="epoch",
                        y_label="effective ns/access")
        for stat in stats:
            series.append(float(stat.epoch), stat.effective_ns)
        return series

    @staticmethod
    def steady_state_ns(stats: list[EpochStats],
                        skip: int = 4) -> float:
        """Mean effective latency after the warm-up epochs."""
        tail = stats[skip:]
        if not tail:
            raise WorkloadError("not enough epochs after warm-up")
        return sum(s.effective_ns for s in tail) / len(tail)
