"""Page-hotness tracking with epoch decay.

Mirrors how TPP-style kernels detect promotion candidates: sample page
accesses during an epoch, decay history geometrically so stale heat
fades, and expose the hottest / coldest page sets to the policy layer.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError


class HotnessTracker:
    """Exponentially-decayed per-page access counters."""

    def __init__(self, num_pages: int, *, decay: float = 0.5) -> None:
        if num_pages <= 0:
            raise WorkloadError(f"num_pages must be positive: {num_pages}")
        if not 0.0 <= decay < 1.0:
            raise WorkloadError(f"decay must be in [0, 1): {decay}")
        self.num_pages = num_pages
        self.decay = decay
        self._heat = np.zeros(num_pages, dtype=np.float64)
        self._epoch_counts = np.zeros(num_pages, dtype=np.int64)
        self.epochs = 0

    def record_accesses(self, pages: np.ndarray) -> None:
        """Count an array of page indices accessed this epoch."""
        if pages.size == 0:
            return
        if pages.min() < 0 or pages.max() >= self.num_pages:
            raise WorkloadError("page index out of range")
        np.add.at(self._epoch_counts, pages, 1)

    def end_epoch(self) -> None:
        """Fold this epoch's counts into the decayed heat and reset."""
        self._heat *= self.decay
        self._heat += self._epoch_counts
        self._epoch_counts[:] = 0
        self.epochs += 1

    def heat(self, page: int) -> float:
        """Current decayed heat of one page."""
        return float(self._heat[page])

    def heats(self, pages: np.ndarray) -> np.ndarray:
        """Vectorized heat lookup."""
        return self._heat[pages]

    def hottest(self, count: int) -> np.ndarray:
        """Indices of the ``count`` hottest pages, hottest first."""
        count = min(count, self.num_pages)
        order = np.argsort(self._heat)[::-1]
        return order[:count]

    def coldest_within(self, candidates: np.ndarray,
                       count: int) -> np.ndarray:
        """The ``count`` coldest pages among ``candidates``."""
        if candidates.size == 0:
            return candidates
        heats = self._heat[candidates]
        order = np.argsort(heats)
        return candidates[order[:min(count, candidates.size)]]

    def is_hot(self, page: int, threshold: float) -> bool:
        """Promotion test: decayed heat above an absolute threshold."""
        return self._heat[page] >= threshold
