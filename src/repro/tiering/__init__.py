"""Memory tiering on DRAM + CXL — the paper's motivating use case.

§5 frames the weighted-interleave results as "a baseline for most memory
tiering policies ... the proposed optimization should, at the very
least, perform equally well when compared against a weighted round-robin
allocation strategy", and §6 recommends DSA for the page-granularity
movement tiering performs.  This package makes those statements
executable:

* :class:`~repro.tiering.tracker.HotnessTracker` — per-page access
  counting with epoch decay (TPP-style active/inactive detection);
* :mod:`~repro.tiering.policy` — promotion/demotion policies plus the
  static weighted-interleave baseline;
* :class:`~repro.tiering.migrator.PageMigrator` — migration executed by
  CPU copies or batched asynchronous DSA offload;
* :class:`~repro.tiering.simulator.TieringSimulator` — an epoch-driven
  workload with a shifting hot set, measuring average access latency
  including migration overhead.
"""

from .tracker import HotnessTracker
from .policy import (
    NoMigration,
    SamplingPolicy,
    TieringPolicy,
    TppLikePolicy,
)
from .migrator import MigrationEngine, PageMigrator
from .simulator import EpochStats, TieringSimulator

__all__ = [
    "HotnessTracker",
    "TieringPolicy",
    "TppLikePolicy",
    "SamplingPolicy",
    "NoMigration",
    "PageMigrator",
    "MigrationEngine",
    "TieringSimulator",
    "EpochStats",
]
