"""Crash-safe sweep execution: supervision, checkpoints, quarantine.

PR 3 made the *simulated* CXL device fault-tolerant — injected CRC,
poison, and timeout faults are always recovered by the modeled
controller (docs/FAULTS.md).  This package applies the same discipline
to the harness that produces the figures: a hung worker, a crashed
process, a corrupted cache entry, or a Ctrl-C must never throw away a
sweep's completed work.

* :mod:`repro.resilience.supervisor` — :class:`SupervisedRunner`, a
  supervision layer over process fan-out: per-unit wall-clock timeouts
  with kill+respawn, bounded retries with deterministic exponential
  backoff + jitter (seeded via
  :func:`~repro.parallel.runner.unit_seed`, so serial and ``--jobs N``
  runs retry identically), crash classification (``timeout`` /
  ``exception`` / ``killed``), and a poison-unit policy that records a
  structured :class:`UnitFailure` instead of aborting the sweep.
* :mod:`repro.resilience.checkpoint` — :class:`CheckpointJournal`, a
  ``results/.checkpoint/<suite-hash>.jsonl`` journal of completed unit
  results (content-addressed like the result cache).  SIGINT/SIGTERM
  drain gracefully, flush the journal, and print a ``--resume`` hint;
  ``repro-experiments --resume`` replays journaled units and runs only
  the remainder, byte-identical to an uninterrupted run.
* Cache quarantine lives in :mod:`repro.parallel.cache`: every entry
  carries a payload checksum, verified on read; corrupt or truncated
  entries move to ``results/.cache/quarantine/`` (with a ledger event)
  and are recomputed, never crashing the run.

See docs/RESILIENCE.md for the full contract.
"""

from __future__ import annotations

from .checkpoint import (
    CHECKPOINT_DIR_ENV,
    DEFAULT_CHECKPOINT_DIR,
    CheckpointJournal,
    checkpoint_dir,
    suite_hash,
)
from .supervisor import (
    FAILURE_KINDS,
    SupervisedRunner,
    SupervisionPolicy,
    UnitFailure,
    UnitOutcome,
)

__all__ = [
    "CHECKPOINT_DIR_ENV",
    "CheckpointJournal",
    "DEFAULT_CHECKPOINT_DIR",
    "FAILURE_KINDS",
    "SupervisedRunner",
    "SupervisionPolicy",
    "UnitFailure",
    "UnitOutcome",
    "checkpoint_dir",
    "suite_hash",
]
