"""Checkpoint journals: resume an interrupted sweep, byte-identically.

A sweep journals every completed unit result to
``results/.checkpoint/<suite-hash>.jsonl`` as it lands — one JSON line
per unit, flushed immediately, so even a SIGKILL keeps the completed
prefix.  ``repro-experiments --resume`` replays journaled units and
runs only the remainder; because journal payloads round-trip exactly
(the same :meth:`~repro.experiments.registry.ExperimentResult.payload`
format the result cache stores), the resumed run's output is
byte-identical to an uninterrupted one.

The **suite hash** is the journal's content address: the SHA-256 of
the canonical JSON of ``{"ids": [...], "config": {...}, "version":
<package fingerprint>}``.  Any change to the id list, the parameters
(``--full``, ``--faults``), or the source tree resolves to a different
journal — a stale checkpoint can never leak into a changed sweep, the
same staleness rule the PR 2 result cache enforces.

Journal lines carry a payload checksum; a truncated or bit-flipped
line (crash mid-append, disk trouble) is skipped on load rather than
poisoning the resume — the unit simply reruns.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from ..parallel.cache import package_fingerprint
from .supervisor import ResilienceError

DEFAULT_CHECKPOINT_DIR = Path("results") / ".checkpoint"
CHECKPOINT_DIR_ENV = "REPRO_CHECKPOINT_DIR"

JOURNAL_SCHEMA = 1


def checkpoint_dir(root: Path | str | None = None) -> Path:
    """Resolve the journal directory (arg > env var > default)."""
    if root is not None:
        return Path(root)
    override = os.environ.get(CHECKPOINT_DIR_ENV)
    return Path(override) if override else DEFAULT_CHECKPOINT_DIR


def suite_hash(ids, config: dict, version: str | None = None) -> str:
    """Content address of one sweep: ids + config + source fingerprint."""
    ids = list(ids)
    if not ids:
        raise ResilienceError("suite hash needs at least one unit id")
    material = {
        "ids": ids,
        "config": config,
        "version": version if version is not None
        else package_fingerprint(),
    }
    canonical = json.dumps(material, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def _payload_digest(payload: dict) -> str:
    canonical = json.dumps(payload, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


class CheckpointJournal:
    """Append/load completed unit results for one suite hash.

    Appends are line-buffered and flushed per record; loads are
    tolerant (corrupt or checksum-mismatched lines drop that unit
    only).  A unit journaled twice (e.g. a resume that re-ran it after
    a corrupt line) resolves to the **last** good record.
    """

    def __init__(self, suite: str,
                 root: Path | str | None = None) -> None:
        if not suite or any(ch in suite for ch in "/\\"):
            raise ResilienceError(f"bad suite hash {suite!r}")
        self.suite = suite
        self.root = checkpoint_dir(root)

    @property
    def path(self) -> Path:
        return self.root / f"{self.suite}.jsonl"

    def exists(self) -> bool:
        return self.path.is_file()

    def record(self, unit_id: str, payload: dict) -> None:
        """Append one completed unit's payload (flushed immediately)."""
        if not unit_id:
            raise ResilienceError("journal record needs a unit id")
        line = json.dumps(
            {"schema": JOURNAL_SCHEMA, "unit": unit_id,
             "sha256": _payload_digest(payload), "payload": payload},
            sort_keys=True, separators=(",", ":"))
        self.root.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def load(self) -> dict[str, dict]:
        """``{unit_id: payload}`` for every intact journaled unit."""
        loaded: dict[str, dict] = {}
        try:
            text = self.path.read_text()
        except (FileNotFoundError, OSError):
            return loaded
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(entry, dict) \
                    or entry.get("schema") != JOURNAL_SCHEMA:
                continue
            unit = entry.get("unit")
            payload = entry.get("payload")
            if not isinstance(unit, str) \
                    or not isinstance(payload, dict):
                continue
            if entry.get("sha256") != _payload_digest(payload):
                continue
            loaded[unit] = payload
        return loaded

    def __len__(self) -> int:
        return len(self.load())

    def discard(self) -> bool:
        """Remove the journal (after a fully-successful sweep)."""
        try:
            self.path.unlink()
            return True
        except FileNotFoundError:
            return False
        except OSError:
            return False
