"""Supervised fan-out: timeouts, retries, crash classification.

:class:`~repro.parallel.runner.ParallelRunner` assumes every unit
returns; one hung worker stalls the sweep forever and one crashed
worker aborts it.  :class:`SupervisedRunner` is the supervision layer
the experiment CLIs put between themselves and the pool:

* **Per-unit wall-clock timeout** — a unit that exceeds
  ``SupervisionPolicy.timeout_s`` is killed (SIGTERM, then SIGKILL)
  and respawned if retries remain.
* **Bounded retries** — exponential backoff with deterministic jitter.
  The jitter stream is seeded via
  :func:`~repro.parallel.runner.unit_seed` from ``(policy.seed, unit
  index, attempt)`` and never touches the unit's own random stream, so
  retried runs stay byte-identical to first-try runs and serial ≡
  ``--jobs N`` is preserved.
* **Crash classification** — every failure is one of
  :data:`FAILURE_KINDS`: ``timeout`` (deadline exceeded), ``exception``
  (the unit raised), ``killed`` (the worker process died without
  reporting — OOM killer, SIGKILL, segfault), ``interrupted`` (a
  graceful drain stopped it), or ``cancelled`` (``fail_fast`` stopped
  scheduling after an earlier poison unit).
* **Poison-unit policy** — a unit that exhausts its retries becomes a
  structured :class:`UnitFailure` in the outcome list; the sweep keeps
  going (unless ``fail_fast``) and the caller decides how to report.

Execution modes
---------------
``jobs <= 1`` with no timeout runs units inline — the exact serial
code path, with retries wrapped around the call.  Any other
configuration runs each unit in its **own** worker process (not a
shared pool): killing one misbehaving unit then never poisons its
siblings, and the parent classifies each death precisely from the
child's exit status.  Units must be picklable module-level callables
either way, exactly as :class:`ParallelRunner` requires.
"""

from __future__ import annotations

import signal
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from random import Random
from typing import Any, Callable, Iterable, Sequence

from ..errors import ReproError
from ..parallel.runner import unit_seed

FAILURE_KINDS = ("timeout", "exception", "killed", "interrupted",
                 "cancelled")

_POLL_INTERVAL_S = 0.2
"""Upper bound on one supervision-loop wait, so drain requests and
deadline checks stay responsive even while every worker is busy."""


class ResilienceError(ReproError):
    """A supervision policy or checkpoint journal was misused."""


@dataclass(frozen=True)
class SupervisionPolicy:
    """How hard to try before declaring a unit poisoned.

    The default policy is inert (no timeout, no retries) — exceptions
    are still captured as failures instead of propagating, but nothing
    is killed or re-run.
    """

    timeout_s: float | None = None     # per-unit wall clock (None: off)
    retries: int = 0                   # respawns after the first attempt
    backoff_base_s: float = 0.05       # first-retry delay
    backoff_cap_s: float = 2.0         # delay ceiling
    jitter: float = 0.25               # +/- fraction of the delay
    seed: int = 0                      # jitter stream base seed
    fail_fast: bool = False            # stop the sweep on first poison

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ResilienceError(
                f"timeout_s must be positive, got {self.timeout_s}")
        if self.retries < 0:
            raise ResilienceError(
                f"retries must be >= 0, got {self.retries}")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ResilienceError("backoff must be >= 0")
        if not 0 <= self.jitter <= 1:
            raise ResilienceError(
                f"jitter must be in [0, 1], got {self.jitter}")

    def backoff_s(self, index: int, attempt: int) -> float:
        """Delay before retry ``attempt`` (1-based) of unit ``index``.

        Deterministic: depends only on ``(seed, index, attempt)``, so a
        resumed or re-sharded sweep waits out the same schedule.
        """
        if attempt < 1:
            raise ResilienceError(
                f"retry attempt must be >= 1, got {attempt}")
        base = min(self.backoff_base_s * (2 ** (attempt - 1)),
                   self.backoff_cap_s)
        rng = Random(unit_seed(self.seed, index) + attempt)
        return base * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))


@dataclass(frozen=True)
class UnitFailure:
    """One poisoned unit, as structured data the ledger can carry."""

    index: int
    unit: str                          # display id (caller-provided)
    kind: str                          # one of FAILURE_KINDS
    attempts: int                      # tries actually made
    message: str = ""
    exit_code: int | None = None       # child exit status when it died

    def __post_init__(self) -> None:
        if self.kind not in FAILURE_KINDS:
            raise ResilienceError(
                f"unknown failure kind {self.kind!r}; "
                f"choose from {FAILURE_KINDS}")

    def to_dict(self) -> dict:
        return {"index": self.index, "unit": self.unit,
                "kind": self.kind, "attempts": self.attempts,
                "message": self.message, "exit_code": self.exit_code}

    def __str__(self) -> str:
        tail = f" (exit {self.exit_code})" \
            if self.exit_code is not None else ""
        detail = f": {self.message}" if self.message else ""
        return (f"{self.unit}: {self.kind} after {self.attempts} "
                f"attempt(s){tail}{detail}")


@dataclass
class UnitOutcome:
    """What one unit produced: a value, or a :class:`UnitFailure`."""

    index: int
    value: Any = None
    failure: UnitFailure | None = None
    attempts: int = 1
    retried: int = 0                   # attempts beyond the first

    @property
    def ok(self) -> bool:
        return self.failure is None


@dataclass
class _Flight:
    """One in-flight worker process (subprocess mode bookkeeping)."""

    index: int
    attempt: int                       # 0-based
    proc: Any
    conn: Any
    deadline: float | None
    started: float


def _subprocess_unit(fn, item, conn):               # pragma: no cover
    """Child entry point: run one unit, report over the pipe.

    Children ignore SIGINT — the terminal delivers Ctrl-C to the whole
    foreground process group, and unit lifetime must stay under the
    supervisor's control (drain terminates them explicitly).
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):
        pass
    try:
        result = fn(item)
    except BaseException as exc:
        try:
            conn.send(("error", type(exc).__name__, str(exc),
                       traceback.format_exc()))
        except Exception:
            pass
    else:
        conn.send(("ok", result))
    finally:
        conn.close()


class SupervisedRunner:
    """An ordered, failure-absorbing ``map`` with kill+respawn.

    ``progress`` (optional) is called as ``progress(event, index,
    total, wall_s=None, kind=None, attempt=None)`` with ``event`` one
    of ``"started"`` / ``"finished"`` / ``"retry"`` / ``"failed"`` —
    a superset of the :class:`ParallelRunner` protocol.  It runs in
    the parent only and must not touch the results.

    ``on_result(index, value)`` (optional) fires in the parent as each
    unit's value lands, in **completion** order — the checkpoint hook:
    callers journal results immediately so an interrupt (or even a
    SIGKILL of the parent) keeps everything already finished.  It must
    be order-independent; the ordered outcome list from :meth:`map` is
    still the only sequencing contract.

    :meth:`request_drain` (signal-handler safe: it only sets a flag)
    makes :meth:`map` stop launching units, terminate whatever is in
    flight, and return promptly with the completed prefix intact —
    the graceful half of checkpoint/resume.
    """

    def __init__(self, jobs: int = 1,
                 policy: SupervisionPolicy | None = None,
                 progress: Callable[..., None] | None = None,
                 names: Sequence[str] | None = None,
                 on_result: Callable[[int, Any], None] | None = None,
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        if jobs < 1:
            raise ResilienceError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.policy = policy if policy is not None else SupervisionPolicy()
        self.progress = progress
        self.names = list(names) if names is not None else None
        self.on_result = on_result
        self.clock = clock
        self.sleep = sleep
        self._drain = False

    @property
    def drained(self) -> bool:
        """True once a drain was requested (and honored by ``map``)."""
        return self._drain

    def request_drain(self) -> None:
        """Ask the running ``map`` to wind down; safe from handlers."""
        self._drain = True

    # -- shared helpers ------------------------------------------------

    def _name(self, index: int) -> str:
        if self.names is not None and index < len(self.names):
            return self.names[index]
        return f"unit-{index}"

    def _notify(self, event: str, index: int, total: int,
                wall_s: float | None = None, kind: str | None = None,
                attempt: int | None = None) -> None:
        if self.progress is not None:
            self.progress(event, index, total, wall_s=wall_s,
                          kind=kind, attempt=attempt)

    def _failure(self, index: int, kind: str, attempts: int,
                 message: str = "",
                 exit_code: int | None = None) -> UnitOutcome:
        failure = UnitFailure(index=index, unit=self._name(index),
                              kind=kind, attempts=attempts,
                              message=message, exit_code=exit_code)
        return UnitOutcome(index=index, failure=failure,
                           attempts=attempts,
                           retried=max(attempts - 1, 0))

    # -- inline mode ---------------------------------------------------

    def _map_inline(self, fn: Callable[[Any], Any],
                    items: Sequence[Any]) -> list[UnitOutcome]:
        total = len(items)
        outcomes: list[UnitOutcome] = []
        for index, item in enumerate(items):
            if self._drain:
                outcomes.append(self._failure(index, "interrupted", 0))
                continue
            attempt = 0
            self._notify("started", index, total)
            while True:
                start = self.clock()
                try:
                    value = fn(item)
                except KeyboardInterrupt:
                    raise              # the caller's drain path owns it
                except Exception as exc:
                    if attempt < self.policy.retries and not self._drain:
                        attempt += 1
                        self._notify("retry", index, total,
                                     kind="exception", attempt=attempt)
                        self.sleep(self.policy.backoff_s(index, attempt))
                        continue
                    outcomes.append(self._failure(
                        index, "exception", attempt + 1, str(exc)))
                    self._notify("failed", index, total,
                                 kind="exception", attempt=attempt + 1)
                    break
                else:
                    outcomes.append(UnitOutcome(
                        index=index, value=value, attempts=attempt + 1,
                        retried=attempt))
                    if self.on_result is not None:
                        self.on_result(index, value)
                    self._notify("finished", index, total,
                                 wall_s=self.clock() - start)
                    break
            if self.policy.fail_fast and not outcomes[-1].ok:
                for rest in range(index + 1, total):
                    outcomes.append(self._failure(rest, "cancelled", 0))
                break
        return outcomes

    # -- subprocess mode -----------------------------------------------

    def _launch(self, fn, items, index: int, attempt: int,
                running: dict) -> None:
        import multiprocessing as mp
        from multiprocessing import connection  # noqa: F401

        ctx = mp.get_context()
        recv, send = ctx.Pipe(duplex=False)
        proc = ctx.Process(target=_subprocess_unit,
                           args=(fn, items[index], send), daemon=True)
        proc.start()
        send.close()
        now = self.clock()
        deadline = now + self.policy.timeout_s \
            if self.policy.timeout_s is not None else None
        running[recv] = _Flight(index=index, attempt=attempt,
                                proc=proc, conn=recv,
                                deadline=deadline, started=now)

    @staticmethod
    def _reap(flight: _Flight) -> None:
        """Kill one in-flight worker (SIGTERM, then SIGKILL) and reap."""
        proc = flight.proc
        if proc.is_alive():
            proc.terminate()
            proc.join(0.5)
            if proc.is_alive():
                proc.kill()
                proc.join()
        else:
            proc.join()
        flight.conn.close()

    def _map_subprocess(self, fn: Callable[[Any], Any],
                        items: Sequence[Any]) -> list[UnitOutcome]:
        from multiprocessing.connection import wait as conn_wait

        total = len(items)
        outcomes: list[UnitOutcome | None] = [None] * total
        pending: deque[int] = deque(range(total))
        retries: list[tuple[float, int, int]] = []   # (ready, idx, att)
        running: dict[Any, _Flight] = {}
        cancelled_kind: str | None = None

        def settle(outcome: UnitOutcome) -> None:
            outcomes[outcome.index] = outcome

        def fail(flight: _Flight, kind: str, message: str = "",
                 exit_code: int | None = None) -> None:
            """Route one attempt's failure: retry it or poison it."""
            nonlocal cancelled_kind
            attempts = flight.attempt + 1
            if flight.attempt < self.policy.retries \
                    and not self._drain and cancelled_kind is None:
                self._notify("retry", flight.index, total, kind=kind,
                             attempt=attempts)
                ready = self.clock() + self.policy.backoff_s(
                    flight.index, attempts)
                retries.append((ready, flight.index, attempts))
                return
            settle(self._failure(flight.index, kind, attempts,
                                 message, exit_code))
            self._notify("failed", flight.index, total, kind=kind,
                         attempt=attempts)
            if self.policy.fail_fast and cancelled_kind is None:
                cancelled_kind = "cancelled"

        while pending or retries or running:
            now = self.clock()
            if self._drain and cancelled_kind is None:
                cancelled_kind = "interrupted"
            if cancelled_kind is not None:
                for index in pending:
                    settle(self._failure(index, cancelled_kind, 0))
                pending.clear()
                for _, index, attempts in retries:
                    settle(self._failure(index, cancelled_kind,
                                         attempts))
                retries.clear()
                for flight in list(running.values()):
                    self._reap(flight)
                    settle(self._failure(flight.index, cancelled_kind,
                                         flight.attempt + 1))
                running.clear()
                break
            # Launch due retries first (they hold the oldest indices),
            # then fresh units, up to the worker budget.
            retries.sort()
            while retries and retries[0][0] <= now \
                    and len(running) < self.jobs:
                _, index, attempt = retries.pop(0)
                self._launch(fn, items, index, attempt, running)
            while pending and len(running) < self.jobs:
                index = pending.popleft()
                self._notify("started", index, total)
                self._launch(fn, items, index, 0, running)
            if not running and not retries:
                continue
            # One bounded wait: the nearest deadline, retry-ready time,
            # or the poll interval, whichever is soonest.
            timeout = _POLL_INTERVAL_S
            for flight in running.values():
                if flight.deadline is not None:
                    timeout = min(timeout, flight.deadline - now)
            if retries:
                timeout = min(timeout, retries[0][0] - now)
            if running:
                ready = conn_wait(list(running),
                                  timeout=max(timeout, 0.0))
            else:
                # Only backoff waits remain: sleep them out instead of
                # spinning (the bound keeps drain requests responsive).
                self.sleep(min(max(timeout, 0.0), _POLL_INTERVAL_S))
                ready = []
            for conn in ready:
                flight = running.pop(conn)
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    message = None
                flight.proc.join()
                conn.close()
                if message is None:
                    fail(flight, "killed",
                         "worker died without reporting",
                         exit_code=flight.proc.exitcode)
                elif message[0] == "ok":
                    settle(UnitOutcome(index=flight.index,
                                       value=message[1],
                                       attempts=flight.attempt + 1,
                                       retried=flight.attempt))
                    if self.on_result is not None:
                        self.on_result(flight.index, message[1])
                    self._notify("finished", flight.index, total,
                                 wall_s=self.clock() - flight.started)
                else:
                    _, name, text, _trace = message
                    fail(flight, "exception", f"{name}: {text}")
            now = self.clock()
            for conn, flight in list(running.items()):
                if flight.deadline is not None and now >= flight.deadline:
                    del running[conn]
                    self._reap(flight)
                    fail(flight, "timeout",
                         f"exceeded {self.policy.timeout_s:g}s")
        # Every index is settled exactly once: it sits in exactly one
        # of pending / retries / running until its outcome lands, and
        # the drain/fail-fast sweep settles all three collections.
        return outcomes  # type: ignore[return-value]

    # -- entry point ---------------------------------------------------

    def map(self, fn: Callable[[Any], Any],
            specs: Iterable[Any]) -> list[UnitOutcome]:
        """Run every spec under supervision; outcomes in spec order.

        Never raises for a unit's own failure — poisoned units come
        back as :class:`UnitFailure` outcomes.  After a drain request,
        completed units keep their values and everything else is marked
        ``interrupted``.
        """
        items: Sequence[Any] = list(specs)
        if not items:
            return []
        if self.jobs <= 1 and self.policy.timeout_s is None:
            return self._map_inline(fn, items)
        return self._map_subprocess(fn, items)
