"""Fig C (extension): cluster-scale CXL memory pooling.

The paper measures one host; its §5.2 pooling outlook (and the
CXL-DMSim / CXLRAMSim line of work in PAPERS.md) is about *fleets*: N
KV shards sharing one fabric-attached memory pool under skewed
open-loop load.  Two experiments drive the
:mod:`repro.cluster` subsystem:

* ``cluster-pooling`` (alias ``figC``) sweeps offered QPS × zipfian
  skew × pool share over a 4-host fleet and reports cluster-wide
  p99-vs-QPS curves, exact pool utilization, and the routing-policy
  comparison (hash-shard vs least-loaded at the saturation knee);
* ``cluster-degraded`` (alias ``figC-deg``) runs healthy/degraded twin
  fleets where one host's CXL link dies mid-run under per-host
  :class:`~repro.faults.FaultPlan` noise, and pins graceful
  degradation: surviving shards absorb the rerouted load and every
  injected fault is recovered.

Every sweep point is an independent, fully deterministic DES run
(:func:`~repro.parallel.sweeps.run_cluster_point`), so ``--jobs N``
shards the grid across worker processes byte-identically.
"""

from __future__ import annotations

from ..analysis.compare import ShapeCheck, check_monotone, check_ordering
from ..analysis.series import Series
from ..analysis.tables import series_table
from ..cluster.sim import ClusterResult, LinkDown
from ..faults import FaultPlan
from ..parallel import ParallelRunner
from ..parallel.merge import TelemetrySpec
from ..parallel.sweeps import run_cluster_point
from ..telemetry.spans import (SpanConfig, combine_aggregates,
                               render_attribution, render_waterfall)
from .registry import ExperimentResult, register, series_payload

NUM_HOSTS = 4
SEED = 7
THETAS = (0.7, 0.99)
POOL_SHARES = (0.25, 0.5)
DOWN_HOST = 1
DOWN_AT_FRACTION = 0.4

# Per-host degraded-fleet noise: occasional device stalls, rare
# transient timeouts and poisoned reads on every host's pool path.
CLUSTER_PLAN = FaultPlan(stall_rate=0.01, timeout_rate=0.002,
                         poison_rate=0.001, seed=13)


def _label(eid: str, qps: float, **axes) -> str:
    """A human-readable unit label: ``figC[qps=140k,skew=0.99,...]``."""
    parts = [f"qps={qps / 1000:g}k"]
    parts += [f"{key}={value}" for key, value in axes.items()]
    return f"{eid}[{','.join(parts)}]"


def _sweep(units: list[tuple], names: list[str], jobs: int
           ) -> tuple[list[ClusterResult], list[dict | None]]:
    """Run the labeled units, optionally sharded across processes."""
    runner = ParallelRunner(jobs, names=names)
    pairs = runner.map(run_cluster_point, units)
    return ([result for result, _export in pairs],
            [export for _result, export in pairs])


def _point(keys: int, pool_share: float, qps: float, theta: float,
           requests: int, *, router: str = "hash-shard",
           fault_plans: dict | None = None,
           link_down: LinkDown | None = None,
           policy=None,
           tspec: TelemetrySpec | None = None) -> tuple:
    """One picklable :func:`run_cluster_point` spec."""
    topo_kwargs = {"num_hosts": NUM_HOSTS, "keys_per_host": keys,
                   "pool_share": pool_share}
    sim_kwargs = {"router": router, "seed": SEED}
    if fault_plans:
        sim_kwargs["fault_plans"] = fault_plans
    if link_down is not None:
        sim_kwargs["link_down"] = link_down
    if policy is not None:
        sim_kwargs["policy"] = policy
    run_kwargs = {"qps": qps, "theta": theta, "requests": requests}
    return (topo_kwargs, sim_kwargs, run_kwargs, tspec)


def _span_tspec(span_config: SpanConfig | None) -> TelemetrySpec | None:
    """Worker telemetry shape for a spanned sweep (``None`` = spans off)."""
    if span_config is None:
        return None
    return TelemetrySpec(traced=False, metered=False, spans=span_config)


def _spans_payload(span_config: SpanConfig, names: list[str],
                   exports: list[dict | None]) -> dict:
    """Per-point span aggregates keyed by unit label."""
    return {"config": span_config.to_dict(),
            "points": {name: export["spans"]
                       for name, export in zip(names, exports)
                       if export and export.get("spans")}}


def _spans_checks_and_render(payload: dict
                             ) -> tuple[list[ShapeCheck], str]:
    """Shape checks plus the rendered attribution section.

    The closure check is the span layer's core guarantee: per point,
    the per-component totals sum back to the recorded end-to-end time
    within float rounding.
    """
    points = payload["points"]
    worst = 0.0
    for aggregate in points.values():
        total = aggregate["total_ns"]
        parts = sum(slot["total_ns"]
                    for slot in aggregate["components"].values())
        worst = max(worst, abs(parts - total) / total if total else 0.0)
    combined = combine_aggregates(list(points.values()))
    k = payload["config"]["exemplars"]
    checks = [
        ShapeCheck("span components sum to end-to-end latency within "
                   "rounding, at every sweep point",
                   worst < 1e-9, f"worst relative gap {worst:.2e}"),
        ShapeCheck(f"each sweep point retains its {k} slowest traces",
                   all(len(agg["exemplars"]) == min(k, agg["requests"])
                       for agg in points.values()),
                   f"{len(points)} points x {k} exemplars"),
    ]
    sections = [render_attribution(combined,
                                   title="Tail attribution (all points)")]
    if combined["exemplars"]:
        sections.append("Slowest trace:\n"
                        + render_waterfall(combined["exemplars"][0]))
    return checks, "\n\n".join(sections)


@register("cluster-pooling", "Cluster-scale CXL memory pooling",
          "extension of §5.2 (pooling outlook)")
def run_pooling(fast: bool, jobs: int = 1,
                fault_plan: FaultPlan | None = None,
                span_config: SpanConfig | None = None,
                resilience=None) -> ExperimentResult:
    keys = 50_000 if fast else 100_000
    requests = 2_500 if fast else 8_000
    qps_points = [60_000.0, 140_000.0, 220_000.0, 300_000.0] if fast \
        else [40_000.0, 80_000.0, 120_000.0, 160_000.0, 200_000.0,
              240_000.0, 280_000.0, 320_000.0]
    plans = {host: fault_plan for host in range(NUM_HOSTS)} \
        if fault_plan is not None else None
    tspec = _span_tspec(span_config)

    grid = [(theta, share) for theta in THETAS for share in POOL_SHARES]
    units, names = [], []
    for theta, share in grid:
        for qps in qps_points:
            units.append(_point(keys, share, qps, theta, requests,
                                fault_plans=plans, policy=resilience,
                                tspec=tspec))
            names.append(_label("figC", qps, skew=theta,
                                pool=f"{share:.0%}"))
    # The routing comparison rides the hottest combo: skewed traffic,
    # half the working set pooled, least-loaded balancing.
    for qps in qps_points:
        units.append(_point(keys, 0.5, qps, 0.99, requests,
                            router="least-loaded", fault_plans=plans,
                            policy=resilience, tspec=tspec))
        names.append(_label("figC", qps, skew=0.99, pool="50%",
                            router="least-loaded"))
    results, exports = _sweep(units, names, jobs)

    per_combo = {combo: results[i * len(qps_points):
                                (i + 1) * len(qps_points)]
                 for i, combo in enumerate(grid)}
    routed = results[len(grid) * len(qps_points):]

    x_kw = {"x_label": "QPS"}
    p99_curves = [
        Series(f"p99-us[skew={theta},pool={share:.0%}]", list(qps_points),
               [r.p99_us for r in per_combo[(theta, share)]],
               y_label="us", **x_kw)
        for theta, share in grid]
    routing_curves = [
        Series("p99-us[hash-shard]", list(qps_points),
               [r.p99_us for r in per_combo[(0.99, 0.5)]],
               y_label="us", **x_kw),
        Series("p99-us[least-loaded]", list(qps_points),
               [r.p99_us for r in routed], y_label="us", **x_kw)]
    utilization = [
        Series(f"pool-util[pool={share:.0%}]", list(qps_points),
               [r.pool_utilization for r in per_combo[(0.99, share)]],
               y_label="fraction", **x_kw)
        for share in POOL_SHARES]

    low, top = qps_points[0], qps_points[-1]
    checks = [check_monotone(
        f"cluster p99 never drops as offered QPS grows "
        f"(skew={theta}, pool={share:.0%})",
        curve) for (theta, share), curve in zip(grid, p99_curves)]
    for theta in THETAS:
        checks.append(check_ordering(
            f"a larger pool share raises the saturated tail "
            f"(skew={theta})",
            {f"pool={share:.0%}":
             per_combo[(theta, share)][-1].p99_ns
             for share in POOL_SHARES}))
    checks += [
        ShapeCheck("pool utilization is exactly the configured spill "
                   "share, never above capacity",
                   all(abs(r.pool_utilization - share) < 1e-6
                       and r.pool_utilization <= 1.0
                       for (theta, share), rs in per_combo.items()
                       for r in rs),
                   ", ".join(f"{share:.0%}->"
                             f"{per_combo[(0.99, share)][0].pool_utilization:.3f}"
                             for share in POOL_SHARES)),
        ShapeCheck("skew helps at low load: the LLC absorbs the hot "
                   "keys (pool=50%)",
                   per_combo[(0.99, 0.5)][0].p99_ns
                   < per_combo[(0.7, 0.5)][0].p99_ns,
                   f"p99@{low:g}: skew=0.99 "
                   f"{per_combo[(0.99, 0.5)][0].p99_us:.1f}us < skew=0.7 "
                   f"{per_combo[(0.7, 0.5)][0].p99_us:.1f}us"),
        ShapeCheck("skew hurts at saturation: the hot shard queues "
                   "first (pool=50%, hash-shard)",
                   per_combo[(0.99, 0.5)][-1].p99_ns
                   > per_combo[(0.7, 0.5)][-1].p99_ns,
                   f"p99@{top:g}: skew=0.99 "
                   f"{per_combo[(0.99, 0.5)][-1].p99_us:.1f}us > skew=0.7 "
                   f"{per_combo[(0.7, 0.5)][-1].p99_us:.1f}us"),
        ShapeCheck("least-loaded routing flattens the saturated tail "
                   "(the shared pool makes any survivor a server)",
                   routed[-1].p99_ns
                   < per_combo[(0.99, 0.5)][-1].p99_ns,
                   f"p99@{top:g}: least-loaded "
                   f"{routed[-1].p99_us:.1f}us vs hash-shard "
                   f"{per_combo[(0.99, 0.5)][-1].p99_us:.1f}us"),
        ShapeCheck("every request completes end-to-end",
                   all(r.requests == requests for r in results),
                   f"{len(results)} points x {requests} requests"),
    ]
    if fault_plan is None:
        checks.append(ShapeCheck(
            "a healthy fleet injects zero faults",
            all(r.injected == 0 and r.recovered == 0 for r in results),
            f"injected={sum(r.injected for r in results)}"))
    else:
        checks.append(ShapeCheck(
            "every injected per-host fault is recovered",
            all(host.injected == host.recovered
                for r in results for host in r.hosts),
            f"injected={sum(r.injected for r in results)}, "
            f"recovered={sum(r.recovered for r in results)}"))

    rendered = "\n\n".join([
        series_table(p99_curves,
                     title=f"Cluster p99 vs offered QPS ({NUM_HOSTS} "
                           f"hosts, {keys} keys/host, hash-shard)"),
        series_table(routing_curves,
                     title="Routing policy at skew=0.99, pool=50%"),
        series_table(utilization, y_format="{:.3f}",
                     title="Pool utilization (carved/capacity)"),
    ])
    spans_payload: dict = {}
    if span_config is not None:
        spans_payload = _spans_payload(span_config, names, exports)
        span_checks, span_section = _spans_checks_and_render(spans_payload)
        checks += span_checks
        rendered += "\n\n" + span_section
    return ExperimentResult(
        "cluster-pooling", "Cluster-scale CXL memory pooling", rendered,
        checks, series=series_payload({
            "p99-vs-qps": p99_curves,
            "routing": routing_curves,
            "pool-utilization": utilization}),
        spans=spans_payload)


@register("cluster-degraded", "Degraded fleet: CXL link loss mid-run",
          "extension of §2.1 (RAS) at fleet scale")
def run_degraded(fast: bool, jobs: int = 1,
                 fault_plan: FaultPlan | None = None,
                 span_config: SpanConfig | None = None,
                 resilience=None) -> ExperimentResult:
    keys = 50_000 if fast else 100_000
    requests = 2_500 if fast else 8_000
    qps_points = [80_000.0, 140_000.0, 200_000.0] if fast \
        else [60_000.0, 100_000.0, 140_000.0, 180_000.0, 220_000.0]
    plan = fault_plan if fault_plan is not None else CLUSTER_PLAN
    plans = {host: plan for host in range(NUM_HOSTS)}
    down = LinkDown(host=DOWN_HOST, at_fraction=DOWN_AT_FRACTION)
    tspec = _span_tspec(span_config)

    units, names = [], []
    for qps in qps_points:
        units.append(_point(keys, 0.5, qps, 0.99, requests,
                            policy=resilience, tspec=tspec))
        names.append(_label("figC-deg", qps, fleet="healthy"))
    for qps in qps_points:
        units.append(_point(keys, 0.5, qps, 0.99, requests,
                            fault_plans=plans, link_down=down,
                            policy=resilience, tspec=tspec))
        names.append(_label("figC-deg", qps, fleet="degraded"))
    results, exports = _sweep(units, names, jobs)
    healthy = results[:len(qps_points)]
    degraded = results[len(qps_points):]

    x_kw = {"x_label": "QPS"}
    healthy_p99 = Series("p99-us[healthy]", list(qps_points),
                         [r.p99_us for r in healthy],
                         y_label="us", **x_kw)
    degraded_p99 = Series("p99-us[degraded]", list(qps_points),
                          [r.p99_us for r in degraded],
                          y_label="us", **x_kw)
    rerouted = Series("rerouted", list(qps_points),
                      [float(r.rerouted) for r in degraded],
                      y_label="count", **x_kw)
    injected = Series("injected", list(qps_points),
                      [float(r.injected) for r in degraded],
                      y_label="count", **x_kw)

    down_name = degraded[0].hosts[DOWN_HOST].name
    checks = [
        check_monotone("healthy fleet p99 never drops with load",
                       healthy_p99),
        check_monotone("degraded fleet p99 never drops with load",
                       degraded_p99),
        ShapeCheck("losing a CXL link never improves the tail",
                   all(d.p99_ns >= h.p99_ns
                       for h, d in zip(healthy, degraded)),
                   ", ".join(f"{h.p99_us:.0f}->{d.p99_us:.0f}us"
                             for h, d in zip(healthy, degraded))),
        ShapeCheck("every injected fault is recovered, per host, at "
                   "every load point",
                   all(host.injected == host.recovered
                       for r in degraded for host in r.hosts),
                   f"injected={sum(r.injected for r in degraded)}, "
                   f"recovered={sum(r.recovered for r in degraded)}"),
        ShapeCheck(f"the downed host ({down_name}) sheds its "
                   f"pool-resident load",
                   all(d.hosts[DOWN_HOST].requests
                       < h.hosts[DOWN_HOST].requests
                       for h, d in zip(healthy, degraded)),
                   f"served {healthy[0].hosts[DOWN_HOST].requests}->"
                   f"{degraded[0].hosts[DOWN_HOST].requests}"),
        ShapeCheck("surviving shards absorb every rerouted request",
                   all(r.rerouted > 0
                       and sum(host.absorbed for host in r.hosts)
                       == r.rerouted for r in degraded),
                   f"rerouted={degraded[0].rerouted}, absorbed="
                   f"{sum(h.absorbed for h in degraded[0].hosts)}"),
        ShapeCheck("the healthy twin injects zero faults",
                   all(r.injected == 0 and r.rerouted == 0
                       for r in healthy),
                   f"injected={sum(r.injected for r in healthy)}"),
        ShapeCheck("every request completes on both fleets",
                   all(r.requests == requests for r in results),
                   f"{len(results)} points x {requests} requests"),
    ]
    rendered = series_table(
        [healthy_p99, degraded_p99, rerouted, injected],
        title=f"Degraded fleet: host {DOWN_HOST} loses its CXL link "
              f"{DOWN_AT_FRACTION:.0%} into the run "
              f"({NUM_HOSTS} hosts, skew=0.99, pool=50%)")
    spans_payload: dict = {}
    if span_config is not None:
        spans_payload = _spans_payload(span_config, names, exports)
        span_checks, span_section = _spans_checks_and_render(spans_payload)
        checks += span_checks
        rendered += "\n\n" + span_section
    return ExperimentResult(
        "cluster-degraded", "Degraded fleet: CXL link loss mid-run",
        rendered, checks,
        series=series_payload({"degraded-fleet": [
            healthy_p99, degraded_p99, rerouted, injected]}),
        spans=spans_payload)
