"""Figure 3: sequential bandwidth vs thread count, three schemes."""

from __future__ import annotations

from .. import build_system, combined_testbed
from ..analysis.compare import ShapeCheck, check_peak_near, check_ratio
from ..cpu.system import MemoryScheme
from ..memo.bandwidth_bench import SequentialBandwidthBench
from .registry import ExperimentResult, register, series_payload

L8, R1, CXL = MemoryScheme.DDR5_L8, MemoryScheme.DDR5_R1, MemoryScheme.CXL


@register("fig3", "Sequential access bandwidth", "Fig. 3, §4.3.1")
def run(fast: bool) -> ExperimentResult:
    system = build_system(combined_testbed())
    threads = ([1, 2, 4, 8, 12, 16, 26, 32] if fast
               else [1, 2, 4, 6, 8, 10, 12, 14, 16, 20, 24, 26, 28, 32, 36,
                     40])
    bench = SequentialBandwidthBench(system, thread_counts=threads)
    report = bench.run()

    l8_load = report.series("fig3-DDR5-L8", "ld")
    l8_nt = report.series("fig3-DDR5-L8", "nt-st")
    cxl_load = report.series("fig3-CXL", "ld")
    cxl_nt = report.series("fig3-CXL", "nt-st")
    cxl_st = report.series("fig3-CXL", "st+wb")
    r1_load = report.series("fig3-DDR5-R1", "ld")
    r1_st = report.series("fig3-DDR5-R1", "st+wb")

    checks = [
        check_ratio("DDR5-L8 load peak ~221 GB/s",
                    l8_load.max_y, 1.0, 221.0, 6.0),
        check_ratio("DDR5-L8 nt-store peak ~170 GB/s",
                    l8_nt.max_y, 1.0, 170.0, 6.0),
        check_peak_near("CXL load peaks near 8 threads",
                        cxl_load, expected_x=8, slack=4),
        check_ratio("CXL load drops to ~16.8 GB/s past 12 threads",
                    cxl_load.y_at(16), 1.0, 16.8, 1.2),
        check_peak_near("CXL nt-store peaks at 2 threads",
                        cxl_nt, expected_x=2, slack=0),
        check_ratio("CXL nt-store peak ~22 GB/s (near DDR4 line)",
                    cxl_nt.max_y, 1.0, 21.3, 1.5),
        ShapeCheck("CXL temporal store far below nt-store",
                   cxl_st.max_y < 0.6 * cxl_nt.max_y,
                   f"st+wb={cxl_st.max_y:.1f} nt={cxl_nt.max_y:.1f}"),
        ShapeCheck("DDR5-R1 loads beat CXL loads",
                   r1_load.max_y > cxl_load.max_y,
                   f"R1={r1_load.max_y:.1f} CXL={cxl_load.max_y:.1f}"),
        check_ratio("DDR5-R1 temporal store similar to CXL",
                    r1_st.max_y, cxl_st.max_y, 1.2, 0.4),
    ]
    return ExperimentResult("fig3", "Sequential access bandwidth",
                            report.render(), checks,
                            series=series_payload(report))
