"""The experiment registry: ids, results, and the run-all entry point."""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable

from ..analysis.compare import ShapeCheck
from ..errors import ExperimentError


@dataclass
class ExperimentResult:
    """A regenerated table/figure plus its verified shape claims."""

    experiment_id: str
    title: str
    rendered: str                        # the figure, as text tables
    checks: list[ShapeCheck] = field(default_factory=list)
    series: dict = field(default_factory=dict)
    # {panel: {series: {"x": [...], "y": [...], ...}}} — numeric payload
    # mirroring the rendered tables, for machine diffing.
    spans: dict = field(default_factory=dict)
    # Span-attribution payload ({"config": ..., "points": {...}}) when
    # the run recorded per-request spans; empty otherwise.  Kept out of
    # to_dict() when empty so spans-off output is unchanged.

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    def render(self) -> str:
        lines = [f"### {self.experiment_id}: {self.title}", "",
                 self.rendered, ""]
        lines += [str(check) for check in self.checks]
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-serializable form: id, pass/fail, checks, series data."""
        data = {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "passed": self.passed,
            "checks": [{"claim": check.claim,
                        "passed": check.passed,
                        "measured": check.measured}
                       for check in self.checks],
            "series": self.series,
        }
        if self.spans:
            data["spans"] = self.spans
        return data

    def payload(self) -> dict:
        """Full JSON round-trip form (everything :meth:`from_payload`
        needs to rebuild an identical result — the result-cache
        format)."""
        data = self.to_dict()
        data["rendered"] = self.rendered
        return data

    @classmethod
    def from_payload(cls, data: dict) -> "ExperimentResult":
        """Rebuild a result from :meth:`payload` output.

        Round-trip exact: ``from_payload(r.payload())`` renders, saves,
        and serializes identically to ``r`` (the cache-hit determinism
        tests pin this down).
        """
        checks = [ShapeCheck(check["claim"], check["passed"],
                             check["measured"])
                  for check in data["checks"]]
        return cls(experiment_id=data["experiment_id"],
                   title=data["title"],
                   rendered=data["rendered"],
                   checks=checks,
                   series=data["series"],
                   spans=data.get("spans") or {})


def series_payload(report) -> dict:
    """Numeric panel/series payload of a :class:`BenchReport`.

    The text render is for humans; this is the same data in a shape
    ``json.dumps`` accepts, so experiment runs can be diffed
    mechanically (``results/<id>.json`` next to ``results/<id>.txt``).
    Accepts a report (anything with ``.panels``) or a plain
    ``{panel: [Series, ...]}`` mapping.
    """
    panels = report if isinstance(report, dict) else report.panels
    return {
        panel: {series.name: {"x": list(series.x),
                              "y": list(series.y),
                              "x_label": series.x_label,
                              "y_label": series.y_label}
                for series in series_list}
        for panel, series_list in panels.items()
    }


@dataclass(frozen=True)
class Experiment:
    """A registered experiment: metadata plus a runner callable."""

    experiment_id: str
    title: str
    paper_ref: str                       # e.g. "Fig. 3, §4.3.1"
    runner: Callable[..., ExperimentResult]
    accepts_jobs: bool = False
    # True when the runner takes a ``jobs`` keyword — its sweep points
    # shard across worker processes (the DES-heavy figures).
    accepts_faults: bool = False
    # True when the runner takes a ``fault_plan`` keyword — it can run
    # its simulations under a degraded-mode FaultPlan (docs/FAULTS.md).
    accepts_spans: bool = False
    # True when the runner takes a ``span_config`` keyword — it records
    # per-request spans for tail attribution (docs/TELEMETRY.md).
    accepts_resilience: bool = False
    # True when the runner takes a ``resilience`` keyword — its cluster
    # simulations can run under a ResiliencePolicy (docs/CLUSTER.md).
    extra_config: tuple | None = None
    # Extra (key, value) pairs folded into this experiment's cache /
    # checkpoint config.  Scenario-derived experiments carry their
    # document content hash here: package_fingerprint() only hashes
    # *.py, so without this an edited scenario file would silently hit
    # a stale cached result.

    def run(self, *, fast: bool = True, jobs: int = 1,
            fault_plan=None, span_config=None,
            resilience=None) -> ExperimentResult:
        """Execute; ``fast`` trims sweep sizes for CI-speed runs.

        ``jobs > 1`` shards the experiment's own sweep points when the
        runner supports it; otherwise it is ignored (the result is
        identical either way).  ``fault_plan`` overrides the baseline
        fault configuration for experiments that accept one; passing a
        plan to one that does not is an error (silently dropping a
        fault request would misreport healthy numbers as degraded).
        ``span_config`` likewise: experiments that accept one record
        per-request spans, and passing it to one that does not raises
        (a silently un-spanned run would look like spans found nothing).
        ``resilience`` likewise again: a ResiliencePolicy for the
        cluster experiments that take one — a silently dropped policy
        would report unprotected numbers as protected.
        """
        kwargs: dict = {}
        if self.accepts_jobs:
            kwargs["jobs"] = jobs
        if fault_plan is not None:
            if not self.accepts_faults:
                raise ExperimentError(
                    f"experiment {self.experiment_id!r} does not accept "
                    f"a fault plan")
            kwargs["fault_plan"] = fault_plan
        if span_config is not None:
            if not self.accepts_spans:
                raise ExperimentError(
                    f"experiment {self.experiment_id!r} does not accept "
                    f"a span config")
            kwargs["span_config"] = span_config
        if resilience is not None:
            if not self.accepts_resilience:
                raise ExperimentError(
                    f"experiment {self.experiment_id!r} does not accept "
                    f"a resilience policy")
            kwargs["resilience"] = resilience
        return self.runner(fast, **kwargs)


REGISTRY: dict[str, Experiment] = {}

# Paper-figure aliases for extension experiments ("figF" is how the
# roadmap refers to the degraded-mode figure; the registry id is the
# descriptive name).
ALIASES: dict[str, str] = {"figF": "degraded-cxl",
                           "figC": "cluster-pooling",
                           "figC-deg": "cluster-degraded",
                           "figR": "cluster-resilient",
                           "figR-storm": "cluster-retry-storm"}


def register(experiment_id: str, title: str, paper_ref: str, *,
             extra_config: dict | None = None):
    """Decorator registering ``runner(fast) -> ExperimentResult``."""

    def wrap(runner: Callable[..., ExperimentResult]) -> Callable:
        if experiment_id in REGISTRY:
            raise ExperimentError(
                f"duplicate experiment id {experiment_id!r}")
        params = inspect.signature(runner).parameters
        REGISTRY[experiment_id] = Experiment(
            experiment_id, title, paper_ref, runner,
            accepts_jobs="jobs" in params,
            accepts_faults="fault_plan" in params,
            accepts_spans="span_config" in params,
            accepts_resilience="resilience" in params,
            extra_config=tuple(sorted(extra_config.items()))
            if extra_config else None)
        return runner

    return wrap


def resolve_id(experiment_id: str) -> str:
    """Map an alias (``figF``) to its canonical registry id."""
    return ALIASES.get(experiment_id, experiment_id)


def get(experiment_id: str) -> Experiment:
    experiment_id = resolve_id(experiment_id)
    if experiment_id not in REGISTRY:
        raise ExperimentError(
            f"no experiment {experiment_id!r}; available: "
            f"{sorted(REGISTRY)}")
    return REGISTRY[experiment_id]


def run_all(*, fast: bool = True) -> list[ExperimentResult]:
    """Run every registered experiment in id order."""
    return [REGISTRY[eid].run(fast=fast) for eid in sorted(REGISTRY)]
