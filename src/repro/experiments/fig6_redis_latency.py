"""Figure 6: Redis p99 latency vs QPS under YCSB-A."""

from __future__ import annotations

from .. import build_system, combined_testbed
from ..analysis.compare import ShapeCheck, check_ratio
from ..analysis.tables import series_table
from ..apps.kvstore import RedisYcsbStudy
from ..workloads import WORKLOADS
from .registry import ExperimentResult, register


@register("fig6", "Redis p99 latency (YCSB-A)", "Fig. 6, §5.1")
def run(fast: bool, jobs: int = 1) -> ExperimentResult:
    system = build_system(combined_testbed())
    study = RedisYcsbStudy(system, num_keys=200_000)
    workload = WORKLOADS["A"]
    qps_points = ([20_000.0, 40_000.0, 55_000.0, 70_000.0] if fast else
                  [10_000.0, 20_000.0, 30_000.0, 40_000.0, 50_000.0,
                   55_000.0, 60_000.0, 65_000.0, 70_000.0, 80_000.0])
    requests = 6_000 if fast else 20_000
    curves = study.p99_curves(workload, [0.0, 0.5, 1.0], qps_points,
                              requests=requests, jobs=jobs)
    rendered = series_table(curves,
                            title="Fig 6: Redis p99 (us) vs QPS, YCSB-A")

    low = qps_points[0]
    p99_low = {series.name: series.y_at(low) for series in curves}
    high = qps_points[-1]
    p99_high = {series.name: series.y_at(high) for series in curves}

    checks = [
        check_ratio("~2x p99 gap at low QPS: 100% CXL vs DRAM",
                    p99_low["100%-CXL"], p99_low["0%-CXL"], 2.0, 0.9),
        ShapeCheck("50% CXL p99 sits between DRAM and 100% CXL",
                   p99_low["0%-CXL"] < p99_low["50%-CXL"]
                   < p99_low["100%-CXL"],
                   " < ".join(f"{k}={v:.0f}us"
                              for k, v in p99_low.items())),
        ShapeCheck("100% CXL saturates first (p99 blows up at high QPS)",
                   p99_high["100%-CXL"] > 3 * p99_high["0%-CXL"],
                   f"at {high:.0f} QPS: "
                   + " ".join(f"{k}={v:.0f}us"
                              for k, v in p99_high.items())),
        ShapeCheck("DRAM p99 stays stable below its saturation",
                   p99_high["0%-CXL"] < 10 * p99_low["0%-CXL"],
                   f"{p99_low['0%-CXL']:.0f} -> "
                   f"{p99_high['0%-CXL']:.0f} us"),
    ]
    return ExperimentResult("fig6", "Redis p99 latency", rendered, checks)
