"""Figure 9: DLRM under SNC (two channels) with CXL interleaving."""

from __future__ import annotations

from .. import combined_testbed
from ..analysis.compare import ShapeCheck
from ..analysis.tables import series_table
from ..apps.dlrm import DlrmInferenceStudy
from .registry import ExperimentResult, register


@register("fig9", "DLRM under SNC with CXL interleaving", "Fig. 9, §5.2")
def run(fast: bool) -> ExperimentResult:
    study = DlrmInferenceStudy(combined_testbed())
    threads = [1, 8, 16, 24, 28, 32] if fast else [1, 4, 8, 12, 16, 20, 24,
                                                   26, 28, 30, 32]
    snc = study.curve("local", threads, snc=True, name="SNC")
    snc20 = study.curve(0.2, threads, snc=True, name="SNC+20%CXL")
    snc50 = study.curve(0.5, threads, snc=True, name="SNC+50%CXL")
    rendered = series_table([snc, snc20, snc50], y_format="{:.0f}",
                            title="Fig 9: inferences/s vs threads "
                                  "(memory on one SNC node)")

    linear = snc.y_at(8) / 8
    gain = study.snc_gain(0.2, threads=32)
    kernel = study.kernel("local", snc=True)
    checks = [
        ShapeCheck("SNC stops scaling linearly after ~24 threads",
                   snc.y_at(16) > 0.95 * 16 * linear
                   and snc.y_at(32) < 0.95 * 32 * linear,
                   f"@16T {snc.y_at(16) / (16 * linear):.2f}x linear, "
                   f"@32T {snc.y_at(32) / (32 * linear):.2f}x linear"),
        ShapeCheck("two channels make the kernel bandwidth-bound at 32T",
                   kernel.is_bandwidth_bound(32),
                   f"bound={kernel.bandwidth_bound(32):.0f} inf/s"),
        ShapeCheck("interleaving 20% to CXL lifts 32T throughput "
                   "(paper: +11%)",
                   0.05 <= gain <= 0.30, f"gain={gain * 100:.1f}%"),
        ShapeCheck("at low thread counts interleaving does not help",
                   snc20.y_at(8) <= snc.y_at(8),
                   f"SNC@8={snc.y_at(8):.0f} "
                   f"SNC+20%@8={snc20.y_at(8):.0f}"),
    ]
    return ExperimentResult("fig9", "DLRM under SNC", rendered, checks)
