"""Fig R (extension): request-level resilience on the pooled cluster.

PR 6/PR 9 reproduced the paper's core claim at fleet scale — CXL
latency surfaces as *tail* latency, and a degraded link makes the tail
explode.  These experiments close the loop with the defenses real
fleets deploy against exactly that failure mode
(:mod:`repro.cluster.resilience`):

* ``cluster-resilient`` (alias ``figR``) sweeps policy x
  fault-severity x offered QPS over a fleet with one *sick* host
  (heavy CXL device stalls on its pool path) and pins the crossover:
  hedging + circuit breaking pulls degraded p99 well below the
  no-policy baseline while holding goodput, and the deadline/budget
  bundle bounds the tail at the knee by converting unbounded waits
  into classified failures;
* ``cluster-retry-storm`` (alias ``figR-storm``) drives a healthy
  fleet across its saturation knee with deadline-triggered retries and
  pins the metastable collapse: an *uncapped* retry budget multiplies
  offered work past saturation (abandoned attempts still burn service
  — the server cannot see a client-side timeout) and goodput falls off
  a cliff, while a 10% budget suppresses the storm and holds goodput.

Every sweep point is one deterministic DES run
(:func:`~repro.parallel.sweeps.run_cluster_point`), so ``--jobs N``
shards both grids byte-identically.
"""

from __future__ import annotations

from ..analysis.compare import ShapeCheck, check_monotone
from ..analysis.series import Series
from ..analysis.tables import series_table
from ..cluster.resilience import PRESETS, ResiliencePolicy
from ..cluster.sim import ClusterResult
from ..faults import FaultPlan
from ..parallel import ParallelRunner
from ..parallel.merge import TelemetrySpec
from ..parallel.sweeps import run_cluster_point
from ..telemetry.spans import SpanConfig
from .figc_cluster import (_label, _span_tspec, _spans_checks_and_render,
                           _spans_payload)
from .registry import ExperimentResult, register, series_payload

NUM_HOSTS = 4
SEED = 7
SICK_HOST = 1
SICK_STALL_NS = 100_000.0
SICK_PLAN_SEED = 17

# figR policy arms: nothing, the tail-cutting bundle, the
# overload-survival bundle (see resilience.PRESETS).
FIGR_POLICIES: tuple[tuple[str, ResiliencePolicy | None], ...] = (
    ("none", None),
    ("hedged", PRESETS["hedged"]),
    ("guarded", PRESETS["guarded"]),
)

# figR-storm arms: identical deadline + retry ladder, only the budget
# differs — the collapse is purely the budget's doing.
STORM_POLICIES: tuple[tuple[str, ResiliencePolicy], ...] = (
    ("unbudgeted", PRESETS["unbudgeted"]),
    ("budgeted", ResiliencePolicy(deadline_ns=120_000.0, retries=3,
                                  retry_budget=0.1)),
)


def _sick_plan(severity: float) -> FaultPlan:
    """The sick host's affliction: ``severity`` is the stall rate on
    its CXL pool path (0.3 = a third of pool reads eat a 100 us device
    stall)."""
    return FaultPlan(stall_rate=severity, stall_ns=SICK_STALL_NS,
                     seed=SICK_PLAN_SEED)


def _point(keys: int, qps: float, requests: int, *,
           policy: ResiliencePolicy | None,
           fault_plans: dict | None = None,
           tspec: TelemetrySpec | None = None) -> tuple:
    """One picklable :func:`run_cluster_point` spec."""
    topo_kwargs = {"num_hosts": NUM_HOSTS, "keys_per_host": keys,
                   "pool_share": 0.5}
    sim_kwargs: dict = {"seed": SEED}
    if policy is not None:
        sim_kwargs["policy"] = policy
    if fault_plans:
        sim_kwargs["fault_plans"] = fault_plans
    run_kwargs = {"qps": qps, "theta": 0.99, "requests": requests}
    return (topo_kwargs, sim_kwargs, run_kwargs, tspec)


def _sweep(units: list[tuple], names: list[str], jobs: int
           ) -> tuple[list[ClusterResult], list[dict | None]]:
    runner = ParallelRunner(jobs, names=names)
    pairs = runner.map(run_cluster_point, units)
    return ([result for result, _export in pairs],
            [export for _result, export in pairs])


@register("cluster-resilient",
          "Resilience policies on a degraded cluster",
          "extension of §2.1 (RAS) + §5.2 (pooling outlook)")
def run_resilient(fast: bool, jobs: int = 1,
                  span_config: SpanConfig | None = None
                  ) -> ExperimentResult:
    keys = 50_000 if fast else 100_000
    requests = 2_500 if fast else 8_000
    severities = (0.1, 0.3) if fast else (0.05, 0.1, 0.2, 0.3)
    qps_points = [120_000.0, 180_000.0, 240_000.0] if fast \
        else [80_000.0, 120_000.0, 160_000.0, 200_000.0, 240_000.0]
    tspec = _span_tspec(span_config)

    units, names = [], []
    grid = [(pname, severity) for pname, _ in FIGR_POLICIES
            for severity in severities]
    policies = dict(FIGR_POLICIES)
    for pname, severity in grid:
        plans = {SICK_HOST: _sick_plan(severity)}
        for qps in qps_points:
            units.append(_point(keys, qps, requests,
                                policy=policies[pname],
                                fault_plans=plans, tspec=tspec))
            names.append(_label("figR", qps, policy=pname,
                                sev=severity))
    results, exports = _sweep(units, names, jobs)
    per_combo = {combo: results[i * len(qps_points):
                                (i + 1) * len(qps_points)]
                 for i, combo in enumerate(grid)}

    x_kw = {"x_label": "QPS"}
    p99_curves = [
        Series(f"p99-us[{pname},sev={severity}]", list(qps_points),
               [r.p99_us for r in per_combo[(pname, severity)]],
               y_label="us", **x_kw)
        for pname, severity in grid]
    goodput_curves = [
        Series(f"goodput[{pname},sev={severity}]", list(qps_points),
               [r.goodput_qps for r in per_combo[(pname, severity)]],
               y_label="QPS", **x_kw)
        for pname, severity in grid]

    top = qps_points[-1]
    hi = severities[-1]
    none_hi = per_combo[("none", hi)]
    hedged_hi = per_combo[("hedged", hi)]
    guarded_hi = per_combo[("guarded", hi)]
    hedged_stats = [r.resilience for r in hedged_hi]
    checks = [
        ShapeCheck("the crossover: hedging + circuit breaking pulls "
                   "the sick-fleet p99 below the no-policy baseline "
                   "at every load point (worst severity)",
                   all(h.p99_ns < n.p99_ns
                       for h, n in zip(hedged_hi, none_hi)),
                   ", ".join(f"{n.p99_us:.0f}->{h.p99_us:.0f}us"
                             for h, n in zip(hedged_hi, none_hi))),
        ShapeCheck("hedging holds goodput at the knee while cutting "
                   "the tail",
                   hedged_hi[-1].goodput_qps > none_hi[-1].goodput_qps,
                   f"goodput@{top:g}: hedged "
                   f"{hedged_hi[-1].goodput_qps:.0f} vs none "
                   f"{none_hi[-1].goodput_qps:.0f}"),
        check_monotone("a sicker host never shrinks the unprotected "
                       "tail (p99 vs severity at the knee)",
                       Series("none-p99-vs-sev", list(severities),
                              [per_combo[("none", sev)][-1].p99_ns
                               for sev in severities])),
        ShapeCheck("the deadline bundle bounds the knee tail by "
                   "classifying timeouts instead of waiting them out",
                   guarded_hi[-1].p99_ns < none_hi[-1].p99_ns
                   and guarded_hi[-1].resilience.deadline_exceeded > 0,
                   f"p99@{top:g}: guarded {guarded_hi[-1].p99_us:.0f}us"
                   f" vs none {none_hi[-1].p99_us:.0f}us, "
                   f"{guarded_hi[-1].resilience.deadline_exceeded} "
                   f"deadline-exceeded"),
        ShapeCheck("admission control is invisible below the knee and "
                   "sheds exactly where queues build",
                   guarded_hi[0].resilience.rejected == 0
                   and guarded_hi[-1].resilience.rejected > 0,
                   f"rejected@{qps_points[0]:g}="
                   f"{guarded_hi[0].resilience.rejected}, @{top:g}="
                   f"{guarded_hi[-1].resilience.rejected}"),
        ShapeCheck("hedge accounting closes: every hedged win is a "
                   "launched hedge, never more wins than launches",
                   all(s.ok_hedged == s.hedge_wins
                       and s.hedge_wins <= s.hedges_launched
                       and s.hedges_launched > 0
                       for s in hedged_stats),
                   f"{sum(s.hedge_wins for s in hedged_stats)} wins / "
                   f"{sum(s.hedges_launched for s in hedged_stats)} "
                   f"launched"),
        ShapeCheck("the breaker trips on the sick host at the worst "
                   "severity",
                   all(s.breaker_opens > 0 for s in hedged_stats),
                   f"opens={[s.breaker_opens for s in hedged_stats]}"),
        ShapeCheck("policy-free points carry no resilience stats; "
                   "policied points always do",
                   all((r.resilience is None) == (pname == "none")
                       for (pname, sev), rs in per_combo.items()
                       for r in rs),
                   f"{len(results)} points"),
        ShapeCheck("goodput never exceeds achieved throughput",
                   all(r.goodput_qps <= r.achieved_qps + 1e-9
                       for r in results),
                   f"{len(results)} points"),
        ShapeCheck("every request settles exactly once, every policy",
                   all(r.requests == requests for r in results),
                   f"{len(results)} points x {requests} requests"),
    ]

    rendered = "\n\n".join([
        series_table(p99_curves,
                     title=f"Resilience policy x sick-host severity "
                           f"({NUM_HOSTS} hosts, host {SICK_HOST} "
                           f"stalls {SICK_STALL_NS / 1000:.0f}us on "
                           f"its pool path)"),
        series_table(goodput_curves, y_format="{:.0f}",
                     title="Goodput vs offered load"),
    ])
    spans_payload: dict = {}
    if span_config is not None:
        spans_payload = _spans_payload(span_config, names, exports)
        span_checks, span_section = _spans_checks_and_render(
            spans_payload)
        checks += span_checks
        rendered += "\n\n" + span_section
    return ExperimentResult(
        "cluster-resilient",
        "Resilience policies on a degraded cluster", rendered, checks,
        series=series_payload({"p99-vs-qps": p99_curves,
                               "goodput-vs-offered": goodput_curves}),
        spans=spans_payload)


@register("cluster-retry-storm",
          "Retry budgets vs metastable retry storms",
          "extension of §5.2 (pooling outlook) under overload")
def run_retry_storm(fast: bool, jobs: int = 1,
                    span_config: SpanConfig | None = None
                    ) -> ExperimentResult:
    keys = 50_000 if fast else 100_000
    requests = 2_500 if fast else 8_000
    qps_points = [180_000.0, 260_000.0, 340_000.0] if fast \
        else [160_000.0, 200_000.0, 240_000.0, 280_000.0, 320_000.0,
              360_000.0]
    tspec = _span_tspec(span_config)

    units, names = [], []
    for pname, policy in STORM_POLICIES:
        for qps in qps_points:
            units.append(_point(keys, qps, requests, policy=policy,
                                tspec=tspec))
            names.append(_label("figR-storm", qps, policy=pname))
    results, exports = _sweep(units, names, jobs)
    arms = {pname: results[i * len(qps_points):
                           (i + 1) * len(qps_points)]
            for i, (pname, _) in enumerate(STORM_POLICIES)}
    unbud, bud = arms["unbudgeted"], arms["budgeted"]

    x_kw = {"x_label": "QPS"}
    goodput_curves = [
        Series(f"goodput[{pname}]", list(qps_points),
               [r.goodput_qps for r in arms[pname]],
               y_label="QPS", **x_kw)
        for pname, _ in STORM_POLICIES]
    wasted_curves = [
        Series(f"wasted-ms[{pname}]", list(qps_points),
               [r.resilience.wasted_ns / 1e6 for r in arms[pname]],
               y_label="ms", **x_kw)
        for pname, _ in STORM_POLICIES]

    low, top = qps_points[0], qps_points[-1]
    parity_gap = abs(unbud[0].goodput_qps - bud[0].goodput_qps) \
        / bud[0].goodput_qps
    checks = [
        ShapeCheck("below the knee the budget is invisible: both arms "
                   "deliver the same goodput",
                   parity_gap < 0.02,
                   f"goodput@{low:g}: unbudgeted "
                   f"{unbud[0].goodput_qps:.0f} vs budgeted "
                   f"{bud[0].goodput_qps:.0f} ({parity_gap:.1%} apart)"),
        ShapeCheck("past the knee the uncapped budget collapses "
                   "goodput to a fraction of the budgeted arm's",
                   bud[-1].goodput_qps > 1.5 * unbud[-1].goodput_qps,
                   f"goodput@{top:g}: budgeted "
                   f"{bud[-1].goodput_qps:.0f} vs unbudgeted "
                   f"{unbud[-1].goodput_qps:.0f}"),
        ShapeCheck("the storm is metastable: unbudgeted goodput past "
                   "saturation falls below its own below-knee level",
                   unbud[-1].goodput_qps < unbud[0].goodput_qps,
                   f"{unbud[0].goodput_qps:.0f} -> "
                   f"{unbud[-1].goodput_qps:.0f}"),
        ShapeCheck("the budget actively suppresses retries exactly "
                   "where the storm would form",
                   bud[-1].resilience.retries_suppressed > 0
                   and bud[0].resilience.retries_suppressed == 0,
                   f"suppressed@{low:g}="
                   f"{bud[0].resilience.retries_suppressed}, "
                   f"@{top:g}={bud[-1].resilience.retries_suppressed}"),
        ShapeCheck("wasted service is the storm's signature: the "
                   "uncapped arm burns a multiple of the budgeted "
                   "arm's wasted work past the knee",
                   unbud[-1].resilience.wasted_ns
                   > 2.0 * bud[-1].resilience.wasted_ns,
                   f"wasted@{top:g}: unbudgeted "
                   f"{unbud[-1].resilience.wasted_ns / 1e6:.1f}ms vs "
                   f"budgeted "
                   f"{bud[-1].resilience.wasted_ns / 1e6:.1f}ms"),
        ShapeCheck("every request settles exactly once in both arms",
                   all(r.requests == requests for r in results),
                   f"{len(results)} points x {requests} requests"),
    ]
    rendered = series_table(
        goodput_curves + wasted_curves, y_format="{:.0f}",
        title=f"Retry storm across the saturation knee ({NUM_HOSTS} "
              f"hosts, deadline "
              f"{STORM_POLICIES[0][1].deadline_ns / 1000:.0f}us, "
              f"{STORM_POLICIES[0][1].retries} retries)")
    spans_payload: dict = {}
    if span_config is not None:
        spans_payload = _spans_payload(span_config, names, exports)
        span_checks, span_section = _spans_checks_and_render(
            spans_payload)
        checks += span_checks
        rendered += "\n\n" + span_section
    return ExperimentResult(
        "cluster-retry-storm",
        "Retry budgets vs metastable retry storms", rendered, checks,
        series=series_payload({"goodput": goodput_curves,
                               "wasted": wasted_curves}),
        spans=spans_payload)
