"""Extension experiments: the paper's outlook, made runnable.

These go beyond the paper's figures but implement claims its text makes:
the §5 tiering-baseline statement, §6's inline-acceleration guideline,
§5.2's multi-device bandwidth anticipation, and the loaded-latency view
standard characterization suites add.
"""

from __future__ import annotations

from .. import build_system, combined_testbed
from ..analysis.compare import ShapeCheck
from ..analysis.tables import series_table
from ..apps.dlrm import DlrmInferenceStudy
from ..apps.dlrm.nearmem import NearMemoryReduction
from ..config import pooled_cxl_testbed
from ..faults import FaultPlan
from ..memo.loaded_latency import LoadedLatencyBench
from ..tiering import (
    MigrationEngine,
    NoMigration,
    PageMigrator,
    TieringSimulator,
    TppLikePolicy,
)
from .registry import ExperimentResult, register


@register("ext-tiering", "Tiering vs the weighted-interleave baseline",
          "§5 baseline claim, §6 DSA guideline")
def run_tiering(fast: bool) -> ExperimentResult:
    system = build_system(combined_testbed())
    simulator = TieringSimulator(system, num_pages=4096,
                                 dram_capacity_pages=1024,
                                 accesses_per_epoch=20_000 if fast
                                 else 60_000)
    epochs = 20 if fast else 40
    migrator = PageMigrator(system, engine=MigrationEngine.DSA_ASYNC)
    static = simulator.run(NoMigration(), migrator, epochs=epochs)
    tpp = simulator.run(TppLikePolicy(max_migrations_per_epoch=512),
                        migrator, epochs=epochs)
    curves = [TieringSimulator.latency_series(static,
                                              "weighted-interleave"),
              TieringSimulator.latency_series(tpp, "TPP-like")]
    rendered = series_table(curves, y_format="{:.0f}",
                            title="effective ns/access per epoch "
                                  "(hot set shifts every 8)")
    static_ns = simulator.steady_state_ns(static)
    tpp_ns = simulator.steady_state_ns(tpp)
    checks = [
        ShapeCheck("tiering beats the §5 round-robin baseline",
                   tpp_ns < 0.8 * static_ns,
                   f"TPP={tpp_ns:.0f} vs interleave={static_ns:.0f} "
                   "ns/access"),
        ShapeCheck("hot-set shifts cause re-convergence spikes",
                   tpp[8].effective_ns > 1.2 * tpp[7].effective_ns,
                   f"epoch7={tpp[7].effective_ns:.0f} -> "
                   f"epoch8={tpp[8].effective_ns:.0f} ns"),
    ]
    return ExperimentResult("ext-tiering", "Tiering vs baseline",
                            rendered, checks)


@register("ext-nearmem", "Inline near-memory embedding reduction",
          "§6 inline-acceleration guideline")
def run_nearmem(fast: bool) -> ExperimentResult:
    del fast
    study = DlrmInferenceStudy(combined_testbed())
    kernel = study.kernel("cxl")
    nearmem = NearMemoryReduction(kernel)
    rows = [
        f"host-gather @16T : {kernel.throughput(16):12,.0f} inf/s",
        f"near-memory @16T : {nearmem.throughput(16):12,.0f} inf/s",
        f"link traffic     : 1/{nearmem.link_traffic_reduction():.0f} "
        "per inference",
        f"single-inference : {nearmem.single_inference_latency_ns() / 1000:.1f} us "
        f"(host gather: {kernel.service_ns_per_inference() / 1000:.1f} us)",
    ]
    checks = [
        ShapeCheck("offload lifts throughput",
                   nearmem.speedup_over_host_gather(16) > 1.2,
                   f"{nearmem.speedup_over_host_gather(16):.2f}x"),
        ShapeCheck("accel latency hidden end-to-end (§6)",
                   nearmem.accel_latency_hidden(16),
                   "pipelined throughput unaffected"),
    ]
    return ExperimentResult("ext-nearmem", "Near-memory reduction",
                            "\n".join(rows), checks)


# The ext-pooling degraded reference: every pooled expander retrained
# to half link width with occasional device stalls (docs/FAULTS.md).
POOLING_DEGRADED_PLAN = FaultPlan(link_width_fraction=0.5,
                                  stall_rate=0.02, seed=5)


@register("ext-pooling", "Multi-expander pooling",
          "§5.2 bandwidth anticipation")
def run_pooling(fast: bool,
                fault_plan: FaultPlan | None = None) -> ExperimentResult:
    del fast
    plan = fault_plan if fault_plan is not None else POOLING_DEGRADED_PLAN
    rows = []
    healthy = {}
    degraded = {}
    for devices in (1, 2, 4):
        testbed = pooled_cxl_testbed(devices)
        healthy[devices] = DlrmInferenceStudy(
            testbed).kernel("cxl-pool").throughput(32)
        # The degraded twin reuses the same testbed; the plan derates
        # every expander's analytic model (expected stall/retry ns on
        # the protocol path, CRC/retrain derate on the link ceiling).
        degraded[devices] = DlrmInferenceStudy(
            testbed, fault_plan=plan).kernel("cxl-pool").throughput(32)
        rows.append(f"{devices} device(s): "
                    f"{healthy[devices]:12,.0f} inferences/s @32T "
                    f"(degraded: {degraded[devices]:12,.0f})")
    checks = [
        ShapeCheck("pooling scales bandwidth-bound throughput",
                   healthy[2] > 1.8 * healthy[1]
                   and healthy[4] > 3.2 * healthy[1],
                   f"x2={healthy[2] / healthy[1]:.2f}, "
                   f"x4={healthy[4] / healthy[1]:.2f}"),
        ShapeCheck("a degraded pool never beats a healthy one",
                   all(degraded[n] < healthy[n] for n in healthy),
                   ", ".join(f"x{n}={degraded[n] / healthy[n]:.2f}"
                             for n in sorted(healthy))),
        ShapeCheck("pooling still scales under degraded links",
                   degraded[2] > 1.5 * degraded[1]
                   and degraded[4] > 2.5 * degraded[1],
                   f"x2={degraded[2] / degraded[1]:.2f}, "
                   f"x4={degraded[4] / degraded[1]:.2f}"),
    ]
    return ExperimentResult("ext-pooling", "Multi-expander pooling",
                            "\n".join(rows), checks)


@register("ext-loaded-latency", "Loaded latency curves",
          "MLC-style extension of §4")
def run_loaded_latency(fast: bool) -> ExperimentResult:
    del fast
    bench = LoadedLatencyBench(build_system(combined_testbed()))
    report = bench.run()
    at_12 = bench.latency_at_equal_injection(12.0)
    checks = [
        ShapeCheck("every scheme's latency rises under load",
                   all(series.is_monotone_increasing()
                       for series in report.panel("loaded-latency")),
                   "all curves monotone"),
        ShapeCheck("CXL degrades fastest at equal injection",
                   at_12["CXL"] > at_12["DDR5-R1"] > at_12["DDR5-L8"],
                   " > ".join(f"{k}={v:.0f}ns" for k, v in
                              sorted(at_12.items(), key=lambda i: -i[1]))),
    ]
    return ExperimentResult("ext-loaded-latency", "Loaded latency",
                            report.render(), checks)
