"""Figure 8: DLRM embedding-reduction throughput vs thread count."""

from __future__ import annotations

from .. import combined_testbed
from ..analysis.compare import ShapeCheck, check_monotone
from ..analysis.tables import format_table, series_table
from ..apps.dlrm import DlrmInferenceStudy
from .registry import ExperimentResult, register, series_payload

PLACEMENTS = ["local", "cxl", "remote", 0.0323, 0.5]


@register("fig8", "DLRM embedding-reduction throughput", "Fig. 8, §5.2")
def run(fast: bool) -> ExperimentResult:
    study = DlrmInferenceStudy(combined_testbed())
    threads = [1, 4, 8, 16, 24, 32] if fast else [1, 2, 4, 8, 12, 16, 20,
                                                  24, 28, 32]
    curves = [study.curve(placement, threads) for placement in PLACEMENTS]
    left = series_table(curves, y_format="{:.0f}",
                        title="Fig 8 (left): inferences/s vs threads")

    normalized = study.normalized_at(["cxl", "remote", 0.0323, 0.5],
                                     threads=32)
    right = format_table(["scheme", "normalized to DRAM @32T"],
                         [[name, f"{value:.3f}"]
                          for name, value in normalized.items()],
                         title="Fig 8 (right)")

    dram = curves[0]
    per_thread = [y / x for x, y in zip(dram.x, dram.y)]
    cxl = curves[1]
    r1 = curves[2]
    checks = [
        ShapeCheck("pure-DRAM scales linearly through 32 threads",
                   max(per_thread) / min(per_thread) < 1.05,
                   f"slope spread {max(per_thread) / min(per_thread):.3f}"),
        ShapeCheck("CXL and DDR5-R1 trends are similar (both flatten)",
                   cxl.y_at(32) < 0.5 * 32 * cxl.y_at(1)
                   and r1.y_at(32) < 0.5 * 32 * r1.y_at(1),
                   f"CXL@32={cxl.y_at(32):.0f} R1@32={r1.y_at(32):.0f}"),
        ShapeCheck("less CXL interleave -> higher throughput, but even "
                   "3.23% cannot match pure DRAM",
                   normalized["CXL"] < normalized["CXL-50.00%"]
                   < normalized["CXL-3.23%"] < 1.0,
                   " < ".join(f"{k}={v:.3f}"
                              for k, v in normalized.items()
                              if k != "DDR5-R1")),
    ]
    for series in curves:
        checks.append(check_monotone(
            f"{series.name} throughput monotone in threads", series))
    return ExperimentResult("fig8", "DLRM embedding-reduction throughput",
                            left + "\n\n" + right, checks,
                            series=series_payload({"fig8-left": curves}))
