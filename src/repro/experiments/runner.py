"""The ``repro-experiments`` CLI: regenerate any table/figure.

Examples::

    repro-experiments                 # run everything (fast parameters)
    repro-experiments fig3 fig5       # selected figures
    repro-experiments --only figC     # same selection, flag form
    repro-experiments --full fig6     # full-resolution sweep
    repro-experiments --jobs 4        # fan experiments across processes
    repro-experiments --no-cache fig3 # force re-simulation
    repro-experiments --profile prof  # wall-clock profiles under prof/
    repro-experiments --list

Repeated runs are served from the content-addressed result cache under
``results/.cache/`` (key: experiment id + parameters + a source-tree
fingerprint, so any code edit invalidates automatically).  ``--jobs N``
shards cache-miss experiments across ``N`` worker processes; results
merge back in id order, so output and ``--save`` files are identical to
a serial run's.  See docs/PERFORMANCE.md.

Observability (docs/OBSERVABILITY.md): figures print to **stdout**;
progress, leveled log events, and errors go to **stderr** only, so
serial and parallel stdout stay byte-identical.  Every run appends one
record to the run ledger (``results/runs.jsonl``, ``--no-ledger`` to
opt out); ``--profile DIR`` writes per-experiment wall-clock profiles
plus a suite-level phase breakdown, and ``--cprofile N`` adds a
cProfile top-N table.

Resilience (docs/RESILIENCE.md): every sweep journals completed units
to ``results/.checkpoint/`` as they land, so SIGINT/SIGTERM drain
gracefully and print a ``--resume`` hint; ``--resume`` replays the
journal and runs only the remainder, byte-identical to an
uninterrupted run.  ``--unit-timeout``/``--retries`` supervise worker
units (kill+respawn with deterministic backoff); a unit that exhausts
its retries is reported per-unit instead of aborting the sweep
(``--fail-fast`` opts back into aborting).  Corrupt cache entries are
quarantined and recomputed, never fatal.  Exit codes: 0 = all checks
passed, 1 = a shape check failed or a unit failed to produce a result,
2 = bad arguments, 130 = interrupted (resume to continue).
"""

from __future__ import annotations

import argparse
import signal
import sys
import time
from datetime import datetime, timezone

from ..obs import Profiler, ProgressReporter, RunHooks, RunLog
from ..obs.runlog import EXIT_FAILED_CHECKS, EXIT_INTERRUPTED, EXIT_OK
from .registry import ALIASES, REGISTRY, ExperimentResult, resolve_id


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures on the "
                    "simulated testbed")
    parser.add_argument("ids", nargs="*",
                        help="experiment ids (default: all)")
    parser.add_argument("--only", action="append", metavar="ID",
                        default=None,
                        help="run only this experiment id or alias "
                             "(repeatable; combines with positional "
                             "ids)")
    parser.add_argument("--scenario", action="append", default=None,
                        metavar="NAME|FILE|pack",
                        help="run declarative scenario(s): a shipped "
                             "pack scenario by name, a scenario file "
                             "path, or 'pack' for the whole shipped "
                             "pack (repeatable; combines with ids; "
                             "see docs/SCENARIOS.md)")
    parser.add_argument("--full", action="store_true",
                        help="full-resolution sweeps (slower)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    parser.add_argument("--validate", action="store_true",
                        help="run the cross-model validation suite")
    parser.add_argument("--save", metavar="DIR", default=None,
                        help="also write each result to DIR/<id>.txt "
                             "plus a machine-readable DIR/<id>.json")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="run experiments across N worker processes "
                             "(default: 1, serial)")
    parser.add_argument("--faults", metavar="SPEC", default=None,
                        help="run under a degraded-mode fault plan, "
                             "e.g. 'crc=0.01,poison=0.002,seed=7' "
                             "(keys: crc poison timeout stall stall-ns "
                             "timeout-ns backoff-ns retries width speed "
                             "seed; see docs/FAULTS.md)")
    parser.add_argument("--spans", metavar="SPEC", nargs="?",
                        const="", default=None,
                        help="record per-request spans for tail "
                             "attribution, e.g. 'k=8,windows=6' "
                             "(keys: k/exemplars windows; bare --spans "
                             "uses defaults; see docs/TELEMETRY.md)")
    parser.add_argument("--resilience", metavar="SPEC", default=None,
                        help="run cluster experiments under a request "
                             "resilience policy: a preset name "
                             "('hedged', 'guarded', ...) or a spec "
                             "like 'deadline-ns=60000,retries=2,"
                             "budget=0.1' (keys: deadline-ns retries "
                             "backoff-ns budget hedge breaker "
                             "breaker-alpha breaker-min "
                             "breaker-cooldown-ns shed; see "
                             "docs/CLUSTER.md)")
    parser.add_argument("--unit-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="kill and retry any worker unit exceeding "
                             "this wall clock (default: no timeout; "
                             "see docs/RESILIENCE.md)")
    parser.add_argument("--retries", type=int, default=0, metavar="N",
                        help="respawn a crashed/timed-out unit up to N "
                             "times with deterministic exponential "
                             "backoff (default: 0)")
    parser.add_argument("--resume", action="store_true",
                        help="replay completed units from the "
                             "results/.checkpoint journal of an "
                             "interrupted identical sweep, run only "
                             "the remainder")
    parser.add_argument("--fail-fast", action="store_true",
                        help="abort the sweep on the first unit "
                             "failure instead of recording it and "
                             "continuing")
    parser.add_argument("--no-checkpoint", action="store_true",
                        help="do not journal completed units under "
                             "results/.checkpoint (disables --resume)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the results/.cache result cache "
                             "(neither read nor write)")
    parser.add_argument("--clear-cache", action="store_true",
                        help="delete every cached result, then proceed")
    parser.add_argument("--profile", metavar="DIR", nargs="?",
                        const="results", default=None,
                        help="write wall-clock profiles: DIR/<id>."
                             "profile.json per experiment plus "
                             "DIR/suite.profile.json (DIR defaults "
                             "to results/)")
    parser.add_argument("--cprofile", type=int, default=0, metavar="N",
                        help="add a cProfile top-N table to the suite "
                             "profile (implies --profile)")
    parser.add_argument("--no-ledger", action="store_true",
                        help="do not append this run to the "
                             "results/runs.jsonl run ledger")
    parser.add_argument("--no-progress", action="store_true",
                        help="suppress live stderr progress")
    parser.add_argument("--log-level", default=None,
                        choices=["debug", "info", "warn", "error"],
                        help="stderr event verbosity (default: info, "
                             "or $REPRO_LOG_LEVEL)")
    return parser


class _SweepControl:
    """Bridges SIGINT/SIGTERM handlers to the in-flight supervisor.

    The handler only calls :meth:`drain` (flag-setting, async-safe);
    the sweep attaches its :class:`SupervisedRunner` once it exists,
    and a drain requested *before* attachment still lands.
    """

    def __init__(self) -> None:
        self.runner = None
        self.requested = False

    def drain(self) -> None:
        self.requested = True
        if self.runner is not None:
            self.runner.request_drain()

    def attach(self, runner) -> None:
        self.runner = runner
        if self.requested:
            runner.request_drain()


def run_config(fast: bool, *, fault_plan=None, span_config=None,
               resilience=None) -> dict:
    """The result-shaping config material for cache keys and journals.

    Everything that can change an experiment's payload belongs here:
    ``fast`` mode, the engine scheduling mode
    (:func:`repro.sim.engine.scheduling_fingerprint`) and, when given,
    the full fault-plan and span configurations (a spanned result
    carries its attribution payload, so it must never be served from —
    or land in — a spans-off cache slot).  Tests that predict cache or
    journal paths should build their material through this function
    rather than hard-coding the dict shape.
    """
    from ..sim.engine import scheduling_fingerprint

    config: dict = {"fast": fast,
                    "scheduler": scheduling_fingerprint()}
    if fault_plan is not None:
        config["faults"] = fault_plan.to_dict()
    if span_config is not None:
        config["spans"] = span_config.to_dict()
    if resilience is not None:
        config["resilience"] = resilience.to_dict()
    return config


def config_for(experiment_id: str, config: dict) -> dict:
    """Fold an experiment's registered ``extra_config`` into the shared
    run config.

    Scenario-derived experiments carry their document content hash
    here, so editing a scenario file is a cache miss even though
    :func:`~repro.parallel.cache.package_fingerprint` only hashes
    Python sources.  Experiments without extras get the shared config
    unchanged (their keys are identical to pre-scenario releases).
    """
    experiment = REGISTRY.get(experiment_id)
    if experiment is None or not experiment.extra_config:
        return config
    return {**config, "extra": dict(experiment.extra_config)}


def _suite_config(ids: list[str], config: dict) -> dict:
    """The checkpoint-journal config: the shared config plus every
    selected experiment's extras (only when some exist, so suites
    without scenarios keep their historical journal hashes)."""
    extras = {eid: dict(REGISTRY[eid].extra_config) for eid in ids
              if eid in REGISTRY and REGISTRY[eid].extra_config}
    if not extras:
        return config
    return {**config, "extras": extras}


def _run_ids(ids: list[str], *, fast: bool, jobs: int,
             use_cache: bool, fault_plan=None, span_config=None,
             resilience=None,
             hooks: RunHooks = None,
             profiler: Profiler = None, policy=None,
             resume: bool = False, checkpoint: bool = True,
             control: _SweepControl | None = None):
    """Run (or cache-load / journal-replay) ``ids`` in order.

    Two-wave scheduling: experiments whose runners shard internally
    (``accepts_jobs`` — the DES-heavy figures whose single-experiment
    wall clock would otherwise bound the whole suite) run one at a time
    in this process with all ``jobs`` workers on their sweep points;
    everything else fans out one-experiment-per-worker under
    :class:`~repro.resilience.SupervisedRunner`.  Either way the
    result list comes back in id order and matches a serial run
    byte-for-byte.

    The cache key covers every result-shaping input: ``fast``, the
    engine scheduling mode (:func:`repro.sim.engine.scheduling_fingerprint`
    — a result computed under the legacy heap scheduler is never served
    for the calendar path or vice versa) and, when given, the full
    fault-plan configuration — so a changed fault plan is a cache
    miss, never a stale healthy (or degraded) result.  The
    checkpoint journal is addressed by the same material plus the id
    list (:func:`~repro.resilience.suite_hash`), and every completed
    unit is journaled **as it lands**, so an interrupt at any point
    keeps the finished prefix.

    Returns ``(results, failures, interrupted, journal)``: ``results``
    is ``[(eid, ExperimentResult)]`` in id order for units that have
    one; ``failures`` maps poisoned unit ids to
    :class:`~repro.resilience.UnitFailure`; ``interrupted`` is True
    after a graceful drain; ``journal`` is the
    :class:`~repro.resilience.CheckpointJournal` (or ``None``).
    """
    from ..parallel import ResultCache, result_key
    from ..parallel.sweeps import run_experiment
    from ..resilience import (
        CheckpointJournal,
        SupervisedRunner,
        SupervisionPolicy,
        UnitFailure,
        suite_hash,
    )

    if hooks is None:
        hooks = RunHooks()
    if profiler is None:
        profiler = Profiler(enabled=False)
    if policy is None:
        policy = SupervisionPolicy()
    config = run_config(fast, fault_plan=fault_plan,
                        span_config=span_config,
                        resilience=resilience)
    cache = ResultCache(on_quarantine=hooks.cache_quarantined) \
        if use_cache else None
    keys = {eid: result_key(eid, config_for(eid, config))
            for eid in ids} if cache is not None else {}
    cached: dict[str, ExperimentResult] = {}
    if cache is not None:
        for eid in ids:
            payload = cache.get(keys[eid])
            if payload is not None:
                cached[eid] = ExperimentResult.from_payload(payload)

    journal = CheckpointJournal(suite_hash(ids, _suite_config(ids,
                                                              config))) \
        if checkpoint else None
    resumed: list[str] = []
    if journal is not None and resume:
        loaded = journal.load()
        for eid in ids:
            if eid not in cached and eid in loaded:
                cached[eid] = ExperimentResult.from_payload(loaded[eid])
                resumed.append(eid)

    misses = [eid for eid in ids if eid not in cached]
    for eid in ids:
        if eid in resumed:
            hooks.unit_resumed(eid)
        elif eid in cached:
            hooks.cache_hit(eid)
    for eid in misses:
        hooks.cache_miss(eid)
    sharded = [eid for eid in misses
               if jobs > 1 and REGISTRY[eid].accepts_jobs]
    pooled = [eid for eid in misses if eid not in sharded]
    failures: dict[str, UnitFailure] = {}
    interrupted = False

    def record(eid: str, result: ExperimentResult) -> None:
        """Land one result: memory, result cache, checkpoint journal.

        Called as each unit completes (not after the sweep), so the
        journal always holds the finished prefix.  Cache/journal I/O
        trouble degrades to a recompute later, never a failed run.
        """
        cached[eid] = result
        try:
            if cache is not None:
                cache.put(keys[eid], result.payload(),
                          key_material={"experiment": eid,
                                        "config": config_for(eid,
                                                             config)})
            if journal is not None:
                journal.record(eid, result.payload())
        except OSError:
            pass
    # Resumed units re-enter the result cache so the *next* run is a
    # plain cache hit even after the journal is discarded.
    if cache is not None:
        for eid in resumed:
            try:
                cache.put(keys[eid], cached[eid].payload(),
                          key_material={"experiment": eid,
                                        "config": config_for(eid,
                                                             config)})
            except OSError:
                pass

    def on_result(index: int, result: ExperimentResult) -> None:
        record(pooled[index], result)

    def on_progress(event: str, index: int, total: int,
                    wall_s: float | None = None,
                    kind: str | None = None,
                    attempt: int | None = None) -> None:
        eid = pooled[index]
        if event == "started":
            hooks.unit_started(eid)
        elif event == "finished":
            hooks.unit_finished(eid, wall_s=wall_s)
        elif event == "retry":
            hooks.unit_retry(eid, attempt=attempt or 1,
                             kind=kind or "exception")
        elif event == "failed" and hooks.reporter is not None:
            # Live display only; the structured failure is collected
            # from the outcome list after the map returns.
            hooks.reporter.unit_failed(eid, kind=kind or "exception",
                                       attempts=attempt or 1)

    with profiler.collecting():
        with profiler.phase("pooled-experiments"):
            runner = SupervisedRunner(jobs, policy=policy,
                                      progress=on_progress,
                                      names=pooled,
                                      on_result=on_result)
            if control is not None:
                control.attach(runner)
            try:
                outcomes = runner.map(
                    run_experiment,
                    [(eid, fast, 1, fault_plan, span_config,
                      resilience)
                     for eid in pooled])
            except KeyboardInterrupt:
                outcomes = []
                interrupted = True
        if runner.drained:
            interrupted = True
        for outcome in outcomes:
            if outcome.ok:
                continue
            if outcome.failure.kind == "interrupted":
                continue           # not poisoned — --resume reruns it
            eid = pooled[outcome.index]
            failures[eid] = outcome.failure
            hooks.unit_failed(eid, outcome.failure, notify=False)
        for eid in sharded:
            if interrupted or (control is not None and control.requested):
                interrupted = True
                break
            if policy.fail_fast and failures:
                break
            hooks.unit_started(eid)
            attempt = 0
            with profiler.phase(f"run:{eid}"):
                while True:
                    # Sharded runners execute in this process (their
                    # sweep points own the worker pool), so supervision
                    # covers retries but not wall-clock kills here.
                    try:
                        record(eid, REGISTRY[eid].run(
                            fast=fast, jobs=jobs,
                            fault_plan=fault_plan,
                            span_config=span_config,
                            resilience=resilience))
                        hooks.unit_finished(eid)
                    except KeyboardInterrupt:
                        interrupted = True
                    except Exception as exc:
                        if attempt < policy.retries:
                            attempt += 1
                            hooks.unit_retry(eid, attempt=attempt,
                                             kind="exception")
                            time.sleep(policy.backoff_s(
                                ids.index(eid), attempt))
                            continue
                        failure = UnitFailure(
                            index=ids.index(eid), unit=eid,
                            kind="exception", attempts=attempt + 1,
                            message=str(exc))
                        failures[eid] = failure
                        hooks.unit_failed(eid, failure)
                    break
            if interrupted:
                break
    results = [(eid, cached[eid]) for eid in ids if eid in cached]
    return results, failures, interrupted, journal


def _append_ledger(args, argv, ids, *, started_at: str, wall_s: float,
                   hooks: RunHooks, results, fault_plan,
                   exit_code: int, runlog: RunLog,
                   interrupted: bool = False,
                   spans: dict | None = None) -> None:
    """Best-effort ledger append (a ledger I/O error never fails a run)."""
    from ..obs import append_record, describe_append_failure, run_record

    try:
        record = run_record(
            tool="repro-experiments",
            argv=list(argv) if argv is not None else sys.argv[1:],
            ids=ids, started_at=started_at, wall_s=wall_s,
            config={"fast": not args.full, "jobs": args.jobs,
                    "cache": not args.no_cache},
            fault_plan_config=fault_plan.to_dict()
            if fault_plan is not None else None,
            seed=getattr(fault_plan, "seed", None),
            cache_hits=hooks.cache_hits,
            cache_misses=hooks.cache_misses,
            verdicts=hooks.verdicts(results),
            resilience=hooks.resilience_record(interrupted=interrupted),
            spans=spans,
            exit_code=exit_code)
        path = append_record(record)
        runlog.debug("ledger-appended", path=str(path))
    except OSError as exc:
        runlog.warn("ledger-append-failed",
                    **describe_append_failure(exc))


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    runlog = RunLog("repro-experiments", level=args.log_level)
    if args.jobs < 1:
        return runlog.error("--jobs must be >= 1")
    if args.cprofile < 0:
        return runlog.error("--cprofile must be >= 0")
    if args.unit_timeout is not None and args.unit_timeout <= 0:
        return runlog.error("--unit-timeout must be positive")
    if args.retries < 0:
        return runlog.error("--retries must be >= 0")
    if args.resume and args.no_checkpoint:
        return runlog.error(
            "--resume needs the checkpoint journal; drop "
            "--no-checkpoint")
    if args.clear_cache:
        from ..parallel import ResultCache

        removed = ResultCache().clear()
        print(f"cleared {removed} cached result(s)")
    if args.list:
        for eid in sorted(REGISTRY):
            experiment = REGISTRY[eid]
            print(f"{eid:8s} {experiment.title}  [{experiment.paper_ref}]")
        return EXIT_OK
    if args.validate:
        from .. import build_system, combined_testbed
        from ..validate import cross_validate

        checks = cross_validate(build_system(combined_testbed()))
        for check in checks:
            print(check)
        if all(c.passed for c in checks):
            return EXIT_OK
        return runlog.error(
            f"{sum(1 for c in checks if not c.passed)} validation "
            f"check(s) failed", code=EXIT_FAILED_CHECKS)

    scenario_ids: list[str] = []
    if args.scenario:
        from ..errors import ScenarioError
        from ..scenarios import resolve_scenario_ids

        try:
            for spec in args.scenario:
                for eid in resolve_scenario_ids(spec):
                    if eid not in scenario_ids:
                        scenario_ids.append(eid)
        except ScenarioError as exc:
            return runlog.error(f"bad --scenario: {exc}")
    selected = list(args.ids) + (args.only or [])
    ids = [resolve_id(eid) for eid in selected] + scenario_ids \
        or sorted(REGISTRY)
    unknown = [eid for eid in ids if eid not in REGISTRY]
    if unknown:
        # The valid-id list includes scenario-derived ids (scn-*) and
        # the paper-figure aliases, so a typo is a one-edit fix.
        return runlog.error(
            "unknown experiment id(s): " + " ".join(sorted(unknown)),
            available=" ".join(sorted(REGISTRY)),
            aliases=" ".join(f"{alias}={target}" for alias, target
                             in sorted(ALIASES.items())))
    fault_plan = None
    if args.faults is not None:
        from ..errors import FaultError
        from ..faults import FaultPlan

        try:
            fault_plan = FaultPlan.parse(args.faults)
        except FaultError as exc:
            return runlog.error(f"bad --faults spec: {exc}")
        refusing = [eid for eid in ids
                    if not REGISTRY[eid].accepts_faults]
        if refusing:
            return runlog.error(
                "experiment(s) do not accept a fault plan: "
                + " ".join(sorted(refusing)))
    span_config = None
    if args.spans is not None:
        from ..telemetry.spans import SpanConfig, SpanError

        try:
            span_config = SpanConfig.parse(args.spans)
        except SpanError as exc:
            return runlog.error(f"bad --spans spec: {exc}")
        refusing = [eid for eid in ids
                    if not REGISTRY[eid].accepts_spans]
        if refusing:
            return runlog.error(
                "experiment(s) do not accept a span config: "
                + " ".join(sorted(refusing)))
    resilience = None
    if args.resilience is not None:
        from ..cluster.resilience import parse_policy
        from ..errors import ClusterError

        try:
            resilience = parse_policy(args.resilience)
        except ClusterError as exc:
            return runlog.error(f"bad --resilience spec: {exc}")
        if not resilience.active:
            return runlog.error(
                "bad --resilience spec: the policy is inactive "
                "(every knob is zero); drop the flag instead")
        refusing = [eid for eid in ids
                    if not REGISTRY[eid].accepts_resilience]
        if refusing:
            return runlog.error(
                "experiment(s) do not accept a resilience policy: "
                + " ".join(sorted(refusing)))
    save_dir = None
    if args.save:
        from pathlib import Path

        save_dir = Path(args.save)
        save_dir.mkdir(parents=True, exist_ok=True)
    profile_dir = None
    if args.profile or args.cprofile:
        from pathlib import Path

        profile_dir = Path(args.profile or "results")
    profiler = Profiler(enabled=profile_dir is not None,
                        cprofile_top=args.cprofile)

    from ..resilience import SupervisionPolicy

    policy = SupervisionPolicy(
        timeout_s=args.unit_timeout, retries=args.retries,
        seed=getattr(fault_plan, "seed", None) or 0,
        fail_fast=args.fail_fast)

    started_at = datetime.now(timezone.utc).strftime(
        "%Y-%m-%dT%H:%M:%SZ")
    reporter = None if args.no_progress else ProgressReporter(
        total=len(ids), runlog=runlog)
    hooks = RunHooks(reporter=reporter, runlog=runlog)
    if args.jobs > 1:
        from ..parallel import effective_cpu_count

        cpus = effective_cpu_count()
        if args.jobs > cpus:
            # Oversubscribed pools *slow the suite down* (workers fight
            # for the same cores); say so up front rather than leaving
            # a suite.speedup < 1 surprise for repro-report --baseline.
            runlog.warn("jobs-oversubscribed", jobs=args.jobs,
                        cpus=cpus)
            note = (f"note: --jobs {args.jobs} exceeds the "
                    f"{cpus} CPU(s) available to this process; "
                    f"expect a slowdown, not a speedup")
            if reporter is not None:
                reporter.note(note)
    runlog.info("run-start", ids=" ".join(ids), jobs=args.jobs,
                full=args.full, cache=not args.no_cache,
                faults=args.faults, spans=args.spans,
                resilience=args.resilience,
                resume=args.resume)
    start = time.perf_counter()
    control = _SweepControl()
    previous_handlers = {}

    def _on_signal(signum, frame):
        control.drain()
        # A second signal falls through to the default (fatal) action:
        # the graceful drain must never trap an operator who wants out.
        try:
            signal.signal(signal.SIGINT, signal.default_int_handler)
            signal.signal(signal.SIGTERM, signal.SIG_DFL)
        except (ValueError, OSError):
            pass

    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous_handlers[signum] = signal.signal(signum,
                                                      _on_signal)
        except (ValueError, OSError):
            pass                   # not the main thread: no handlers
    try:
        results, failures, interrupted, journal = _run_ids(
            ids, fast=not args.full, jobs=args.jobs,
            use_cache=not args.no_cache, fault_plan=fault_plan,
            span_config=span_config, resilience=resilience,
            hooks=hooks, profiler=profiler, policy=policy,
            resume=args.resume, checkpoint=not args.no_checkpoint,
            control=control)
    finally:
        for signum, handler in previous_handlers.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):
                pass
        hooks.close()
    wall_s = time.perf_counter() - start

    if interrupted:
        # Nothing lands on stdout: a partial suite must never pass for
        # a complete one.  Completed units live in the journal.
        hint_argv = [a for a in (list(argv) if argv is not None
                                 else sys.argv[1:]) if a != "--resume"]
        hint = "repro-experiments " + " ".join(hint_argv + ["--resume"])
        runlog.warn("interrupted", completed=len(results),
                    total=len(ids),
                    journal=str(journal.path) if journal is not None
                    else None,
                    resume=hint)
        if not args.no_ledger:
            _append_ledger(args, argv, ids, started_at=started_at,
                           wall_s=wall_s, hooks=hooks, results=results,
                           fault_plan=fault_plan,
                           exit_code=EXIT_INTERRUPTED, runlog=runlog,
                           interrupted=True)
        runlog.info("run-end", wall_s=wall_s, exit_code=EXIT_INTERRUPTED)
        return EXIT_INTERRUPTED

    failed = 0
    spans_ledger = None
    if span_config is not None:
        from ..telemetry.spans import spans_digest

        spans_ledger = spans_digest(
            {eid: result.spans for eid, result in results
             if result.spans})
    with profiler.phase("render+save"):
        for eid, result in results:
            print(result.render())
            print()
            if save_dir is not None:
                import json

                (save_dir / f"{eid}.txt").write_text(
                    result.render() + "\n")
                (save_dir / f"{eid}.json").write_text(
                    json.dumps(result.to_dict(), indent=2,
                               sort_keys=True) + "\n")
                if result.spans:
                    from ..telemetry.spans import perfetto_spans_trace

                    (save_dir / f"{eid}.spans.json").write_text(
                        json.dumps(result.spans, indent=2,
                                   sort_keys=True) + "\n")
                    (save_dir / f"{eid}.spans.trace.json").write_text(
                        json.dumps(perfetto_spans_trace(
                            result.spans.get("points", {}),
                            process_name=f"repro-spans:{eid}"),
                            indent=2, sort_keys=True) + "\n")
            if not result.passed:
                failed += 1
        if save_dir is not None:
            import json

            for eid, failure in failures.items():
                (save_dir / f"{eid}.failed.json").write_text(
                    json.dumps(failure.to_dict(), indent=2,
                               sort_keys=True) + "\n")
    if failed:
        print(f"{failed} experiment(s) had failing shape checks")
    if failures:
        print(f"{len(failures)} experiment(s) failed to produce "
              f"a result:")
        for eid in sorted(failures):
            print(f"  {failures[eid]}")
    exit_code = EXIT_FAILED_CHECKS if failed or failures else EXIT_OK
    if journal is not None and not failures:
        # A fully-landed sweep has nothing to resume; a sweep with
        # poisoned units keeps its journal so --resume (after the
        # cause is fixed) reruns only what is missing.
        journal.discard()

    if profile_dir is not None:
        from ..obs.profiler import write_experiment_profile

        for eid, result in results:
            write_experiment_profile(
                profile_dir, eid,
                wall_s=hooks.unit_wall.get(eid),
                cached=eid in hooks.cache_hits,
                passed=result.passed)
        suite_path = profiler.write(
            profile_dir / "suite.profile.json",
            extra={"ids": ids, "jobs": args.jobs,
                   "wall_s": round(wall_s, 6)})
        runlog.info("profile-written", path=str(suite_path),
                    experiments=len(results))
    if not args.no_ledger:
        _append_ledger(args, argv, ids, started_at=started_at,
                       wall_s=wall_s, hooks=hooks, results=results,
                       fault_plan=fault_plan, exit_code=exit_code,
                       runlog=runlog, spans=spans_ledger)
    runlog.info("run-end", wall_s=wall_s, failed=failed,
                unit_failures=len(failures),
                resumed=len(hooks.resumed),
                cache_hits=len(hooks.cache_hits),
                cache_misses=len(hooks.cache_misses),
                exit_code=exit_code)
    if failed:
        runlog.error(f"{failed} experiment(s) had failing shape checks",
                     code=EXIT_FAILED_CHECKS)
    if failures:
        runlog.error(
            f"{len(failures)} experiment(s) failed to produce a result",
            code=EXIT_FAILED_CHECKS)
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
