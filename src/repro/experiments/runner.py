"""The ``repro-experiments`` CLI: regenerate any table/figure.

Examples::

    repro-experiments                 # run everything (fast parameters)
    repro-experiments fig3 fig5       # selected figures
    repro-experiments --full fig6     # full-resolution sweep
    repro-experiments --list
"""

from __future__ import annotations

import argparse
import sys

from .registry import REGISTRY, get


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures on the "
                    "simulated testbed")
    parser.add_argument("ids", nargs="*",
                        help="experiment ids (default: all)")
    parser.add_argument("--full", action="store_true",
                        help="full-resolution sweeps (slower)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    parser.add_argument("--validate", action="store_true",
                        help="run the cross-model validation suite")
    parser.add_argument("--save", metavar="DIR", default=None,
                        help="also write each result to DIR/<id>.txt "
                             "plus a machine-readable DIR/<id>.json")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for eid in sorted(REGISTRY):
            experiment = REGISTRY[eid]
            print(f"{eid:8s} {experiment.title}  [{experiment.paper_ref}]")
        return 0
    if args.validate:
        from .. import build_system, combined_testbed
        from ..validate import cross_validate

        checks = cross_validate(build_system(combined_testbed()))
        for check in checks:
            print(check)
        return 0 if all(c.passed for c in checks) else 1

    ids = args.ids or sorted(REGISTRY)
    save_dir = None
    if args.save:
        from pathlib import Path

        save_dir = Path(args.save)
        save_dir.mkdir(parents=True, exist_ok=True)
    failed = 0
    for eid in ids:
        result = get(eid).run(fast=not args.full)
        print(result.render())
        print()
        if save_dir is not None:
            import json

            (save_dir / f"{eid}.txt").write_text(result.render() + "\n")
            (save_dir / f"{eid}.json").write_text(
                json.dumps(result.to_dict(), indent=2, sort_keys=True)
                + "\n")
        if not result.passed:
            failed += 1
    if failed:
        print(f"{failed} experiment(s) had failing shape checks")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
