"""The ``repro-experiments`` CLI: regenerate any table/figure.

Examples::

    repro-experiments                 # run everything (fast parameters)
    repro-experiments fig3 fig5       # selected figures
    repro-experiments --full fig6     # full-resolution sweep
    repro-experiments --jobs 4        # fan experiments across processes
    repro-experiments --no-cache fig3 # force re-simulation
    repro-experiments --list

Repeated runs are served from the content-addressed result cache under
``results/.cache/`` (key: experiment id + parameters + a source-tree
fingerprint, so any code edit invalidates automatically).  ``--jobs N``
shards cache-miss experiments across ``N`` worker processes; results
merge back in id order, so output and ``--save`` files are identical to
a serial run's.  See docs/PERFORMANCE.md.
"""

from __future__ import annotations

import argparse
import sys

from .registry import REGISTRY, ExperimentResult, resolve_id


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures on the "
                    "simulated testbed")
    parser.add_argument("ids", nargs="*",
                        help="experiment ids (default: all)")
    parser.add_argument("--full", action="store_true",
                        help="full-resolution sweeps (slower)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    parser.add_argument("--validate", action="store_true",
                        help="run the cross-model validation suite")
    parser.add_argument("--save", metavar="DIR", default=None,
                        help="also write each result to DIR/<id>.txt "
                             "plus a machine-readable DIR/<id>.json")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="run experiments across N worker processes "
                             "(default: 1, serial)")
    parser.add_argument("--faults", metavar="SPEC", default=None,
                        help="run under a degraded-mode fault plan, "
                             "e.g. 'crc=0.01,poison=0.002,seed=7' "
                             "(keys: crc poison timeout stall stall-ns "
                             "timeout-ns backoff-ns retries width speed "
                             "seed; see docs/FAULTS.md)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the results/.cache result cache "
                             "(neither read nor write)")
    parser.add_argument("--clear-cache", action="store_true",
                        help="delete every cached result, then proceed")
    return parser


def _run_ids(ids: list[str], *, fast: bool, jobs: int,
             use_cache: bool,
             fault_plan=None) -> list[tuple[str, ExperimentResult]]:
    """Run (or cache-load) ``ids`` in order; parallel across misses.

    Two-wave scheduling: experiments whose runners shard internally
    (``accepts_jobs`` — the DES-heavy figures whose single-experiment
    wall clock would otherwise bound the whole suite) run one at a time
    in this process with all ``jobs`` workers on their sweep points;
    everything else fans out one-experiment-per-worker.  Either way the
    result list comes back in id order and matches a serial run
    byte-for-byte.

    The cache key covers every result-shaping input: ``fast`` and, when
    given, the full fault-plan configuration — so a changed fault plan
    is a cache miss, never a stale healthy (or degraded) result.
    """
    from ..parallel import ParallelRunner, ResultCache, result_key
    from ..parallel.sweeps import run_experiment

    config: dict = {"fast": fast}
    if fault_plan is not None:
        config["faults"] = fault_plan.to_dict()
    cache = ResultCache() if use_cache else None
    keys = {eid: result_key(eid, config) for eid in ids} \
        if cache is not None else {}
    cached: dict[str, ExperimentResult] = {}
    if cache is not None:
        for eid in ids:
            payload = cache.get(keys[eid])
            if payload is not None:
                cached[eid] = ExperimentResult.from_payload(payload)

    misses = [eid for eid in ids if eid not in cached]
    sharded = [eid for eid in misses
               if jobs > 1 and REGISTRY[eid].accepts_jobs]
    pooled = [eid for eid in misses if eid not in sharded]

    def record(eid: str, result: ExperimentResult) -> None:
        cached[eid] = result
        if cache is not None:
            cache.put(keys[eid], result.payload(),
                      key_material={"experiment": eid,
                                    "config": config})

    fresh = ParallelRunner(jobs).map(
        run_experiment,
        [(eid, fast, 1, fault_plan) for eid in pooled])
    for eid, result in zip(pooled, fresh):
        record(eid, result)
    for eid in sharded:
        record(eid, REGISTRY[eid].run(fast=fast, jobs=jobs,
                                      fault_plan=fault_plan))
    return [(eid, cached[eid]) for eid in ids]


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    if args.clear_cache:
        from ..parallel import ResultCache

        removed = ResultCache().clear()
        print(f"cleared {removed} cached result(s)")
    if args.list:
        for eid in sorted(REGISTRY):
            experiment = REGISTRY[eid]
            print(f"{eid:8s} {experiment.title}  [{experiment.paper_ref}]")
        return 0
    if args.validate:
        from .. import build_system, combined_testbed
        from ..validate import cross_validate

        checks = cross_validate(build_system(combined_testbed()))
        for check in checks:
            print(check)
        return 0 if all(c.passed for c in checks) else 1

    ids = [resolve_id(eid) for eid in args.ids] or sorted(REGISTRY)
    unknown = [eid for eid in ids if eid not in REGISTRY]
    if unknown:
        print("error: unknown experiment id(s): "
              + " ".join(sorted(unknown))
              + f"\navailable: {' '.join(sorted(REGISTRY))}",
              file=sys.stderr)
        return 2
    fault_plan = None
    if args.faults is not None:
        from ..errors import FaultError
        from ..faults import FaultPlan

        try:
            fault_plan = FaultPlan.parse(args.faults)
        except FaultError as exc:
            print(f"error: bad --faults spec: {exc}", file=sys.stderr)
            return 2
        refusing = [eid for eid in ids
                    if not REGISTRY[eid].accepts_faults]
        if refusing:
            print("error: experiment(s) do not accept a fault plan: "
                  + " ".join(sorted(refusing)), file=sys.stderr)
            return 2
    save_dir = None
    if args.save:
        from pathlib import Path

        save_dir = Path(args.save)
        save_dir.mkdir(parents=True, exist_ok=True)
    failed = 0
    for eid, result in _run_ids(ids, fast=not args.full, jobs=args.jobs,
                                use_cache=not args.no_cache,
                                fault_plan=fault_plan):
        print(result.render())
        print()
        if save_dir is not None:
            import json

            (save_dir / f"{eid}.txt").write_text(result.render() + "\n")
            (save_dir / f"{eid}.json").write_text(
                json.dumps(result.to_dict(), indent=2, sort_keys=True)
                + "\n")
        if not result.passed:
            failed += 1
    if failed:
        print(f"{failed} experiment(s) had failing shape checks")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
