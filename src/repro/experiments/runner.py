"""The ``repro-experiments`` CLI: regenerate any table/figure.

Examples::

    repro-experiments                 # run everything (fast parameters)
    repro-experiments fig3 fig5       # selected figures
    repro-experiments --full fig6     # full-resolution sweep
    repro-experiments --jobs 4        # fan experiments across processes
    repro-experiments --no-cache fig3 # force re-simulation
    repro-experiments --profile prof  # wall-clock profiles under prof/
    repro-experiments --list

Repeated runs are served from the content-addressed result cache under
``results/.cache/`` (key: experiment id + parameters + a source-tree
fingerprint, so any code edit invalidates automatically).  ``--jobs N``
shards cache-miss experiments across ``N`` worker processes; results
merge back in id order, so output and ``--save`` files are identical to
a serial run's.  See docs/PERFORMANCE.md.

Observability (docs/OBSERVABILITY.md): figures print to **stdout**;
progress, leveled log events, and errors go to **stderr** only, so
serial and parallel stdout stay byte-identical.  Every run appends one
record to the run ledger (``results/runs.jsonl``, ``--no-ledger`` to
opt out); ``--profile DIR`` writes per-experiment wall-clock profiles
plus a suite-level phase breakdown, and ``--cprofile N`` adds a
cProfile top-N table.  Exit codes: 0 = all checks passed, 1 = a shape
check failed, 2 = bad arguments.
"""

from __future__ import annotations

import argparse
import sys
import time
from datetime import datetime, timezone

from ..obs import Profiler, ProgressReporter, RunHooks, RunLog
from ..obs.runlog import EXIT_FAILED_CHECKS, EXIT_OK
from .registry import REGISTRY, ExperimentResult, resolve_id


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures on the "
                    "simulated testbed")
    parser.add_argument("ids", nargs="*",
                        help="experiment ids (default: all)")
    parser.add_argument("--full", action="store_true",
                        help="full-resolution sweeps (slower)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    parser.add_argument("--validate", action="store_true",
                        help="run the cross-model validation suite")
    parser.add_argument("--save", metavar="DIR", default=None,
                        help="also write each result to DIR/<id>.txt "
                             "plus a machine-readable DIR/<id>.json")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="run experiments across N worker processes "
                             "(default: 1, serial)")
    parser.add_argument("--faults", metavar="SPEC", default=None,
                        help="run under a degraded-mode fault plan, "
                             "e.g. 'crc=0.01,poison=0.002,seed=7' "
                             "(keys: crc poison timeout stall stall-ns "
                             "timeout-ns backoff-ns retries width speed "
                             "seed; see docs/FAULTS.md)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the results/.cache result cache "
                             "(neither read nor write)")
    parser.add_argument("--clear-cache", action="store_true",
                        help="delete every cached result, then proceed")
    parser.add_argument("--profile", metavar="DIR", nargs="?",
                        const="results", default=None,
                        help="write wall-clock profiles: DIR/<id>."
                             "profile.json per experiment plus "
                             "DIR/suite.profile.json (DIR defaults "
                             "to results/)")
    parser.add_argument("--cprofile", type=int, default=0, metavar="N",
                        help="add a cProfile top-N table to the suite "
                             "profile (implies --profile)")
    parser.add_argument("--no-ledger", action="store_true",
                        help="do not append this run to the "
                             "results/runs.jsonl run ledger")
    parser.add_argument("--no-progress", action="store_true",
                        help="suppress live stderr progress")
    parser.add_argument("--log-level", default=None,
                        choices=["debug", "info", "warn", "error"],
                        help="stderr event verbosity (default: info, "
                             "or $REPRO_LOG_LEVEL)")
    return parser


def _run_ids(ids: list[str], *, fast: bool, jobs: int,
             use_cache: bool, fault_plan=None, hooks: RunHooks = None,
             profiler: Profiler = None) \
        -> list[tuple[str, ExperimentResult]]:
    """Run (or cache-load) ``ids`` in order; parallel across misses.

    Two-wave scheduling: experiments whose runners shard internally
    (``accepts_jobs`` — the DES-heavy figures whose single-experiment
    wall clock would otherwise bound the whole suite) run one at a time
    in this process with all ``jobs`` workers on their sweep points;
    everything else fans out one-experiment-per-worker.  Either way the
    result list comes back in id order and matches a serial run
    byte-for-byte.

    The cache key covers every result-shaping input: ``fast`` and, when
    given, the full fault-plan configuration — so a changed fault plan
    is a cache miss, never a stale healthy (or degraded) result.

    ``hooks`` (optional) receives cache hit/miss and unit
    start/finish notifications — the observability side channel; it
    never touches the results, so runs with and without it are
    byte-identical on stdout.  ``profiler`` attributes wall clock to
    per-experiment phases when profiling is enabled.
    """
    from ..parallel import ParallelRunner, ResultCache, result_key
    from ..parallel.sweeps import run_experiment

    if hooks is None:
        hooks = RunHooks()
    if profiler is None:
        profiler = Profiler(enabled=False)
    config: dict = {"fast": fast}
    if fault_plan is not None:
        config["faults"] = fault_plan.to_dict()
    cache = ResultCache() if use_cache else None
    keys = {eid: result_key(eid, config) for eid in ids} \
        if cache is not None else {}
    cached: dict[str, ExperimentResult] = {}
    if cache is not None:
        for eid in ids:
            payload = cache.get(keys[eid])
            if payload is not None:
                cached[eid] = ExperimentResult.from_payload(payload)

    misses = [eid for eid in ids if eid not in cached]
    for eid in ids:
        if eid in cached:
            hooks.cache_hit(eid)
    for eid in misses:
        hooks.cache_miss(eid)
    sharded = [eid for eid in misses
               if jobs > 1 and REGISTRY[eid].accepts_jobs]
    pooled = [eid for eid in misses if eid not in sharded]

    def record(eid: str, result: ExperimentResult) -> None:
        cached[eid] = result
        if cache is not None:
            cache.put(keys[eid], result.payload(),
                      key_material={"experiment": eid,
                                    "config": config})

    def on_progress(event: str, index: int, total: int,
                    wall_s: float | None = None) -> None:
        eid = pooled[index]
        if event == "started":
            hooks.unit_started(eid)
        elif event == "finished":
            hooks.unit_finished(eid, wall_s=wall_s)

    with profiler.collecting():
        with profiler.phase("pooled-experiments"):
            fresh = ParallelRunner(jobs, progress=on_progress).map(
                run_experiment,
                [(eid, fast, 1, fault_plan) for eid in pooled])
        for eid, result in zip(pooled, fresh):
            record(eid, result)
        for eid in sharded:
            hooks.unit_started(eid)
            with profiler.phase(f"run:{eid}"):
                record(eid, REGISTRY[eid].run(fast=fast, jobs=jobs,
                                              fault_plan=fault_plan))
            hooks.unit_finished(eid)
    return [(eid, cached[eid]) for eid in ids]


def _append_ledger(args, argv, ids, *, started_at: str, wall_s: float,
                   hooks: RunHooks, results, fault_plan,
                   exit_code: int, runlog: RunLog) -> None:
    """Best-effort ledger append (a ledger I/O error never fails a run)."""
    from ..obs import append_record, run_record

    try:
        record = run_record(
            tool="repro-experiments",
            argv=list(argv) if argv is not None else sys.argv[1:],
            ids=ids, started_at=started_at, wall_s=wall_s,
            config={"fast": not args.full, "jobs": args.jobs,
                    "cache": not args.no_cache},
            fault_plan_config=fault_plan.to_dict()
            if fault_plan is not None else None,
            seed=getattr(fault_plan, "seed", None),
            cache_hits=hooks.cache_hits,
            cache_misses=hooks.cache_misses,
            verdicts=hooks.verdicts(results),
            exit_code=exit_code)
        path = append_record(record)
        runlog.debug("ledger-appended", path=str(path))
    except OSError as exc:
        runlog.warn("ledger-append-failed", error=str(exc))


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    runlog = RunLog("repro-experiments", level=args.log_level)
    if args.jobs < 1:
        return runlog.error("--jobs must be >= 1")
    if args.cprofile < 0:
        return runlog.error("--cprofile must be >= 0")
    if args.clear_cache:
        from ..parallel import ResultCache

        removed = ResultCache().clear()
        print(f"cleared {removed} cached result(s)")
    if args.list:
        for eid in sorted(REGISTRY):
            experiment = REGISTRY[eid]
            print(f"{eid:8s} {experiment.title}  [{experiment.paper_ref}]")
        return EXIT_OK
    if args.validate:
        from .. import build_system, combined_testbed
        from ..validate import cross_validate

        checks = cross_validate(build_system(combined_testbed()))
        for check in checks:
            print(check)
        if all(c.passed for c in checks):
            return EXIT_OK
        return runlog.error(
            f"{sum(1 for c in checks if not c.passed)} validation "
            f"check(s) failed", code=EXIT_FAILED_CHECKS)

    ids = [resolve_id(eid) for eid in args.ids] or sorted(REGISTRY)
    unknown = [eid for eid in ids if eid not in REGISTRY]
    if unknown:
        return runlog.error(
            "unknown experiment id(s): " + " ".join(sorted(unknown)),
            available=" ".join(sorted(REGISTRY)))
    fault_plan = None
    if args.faults is not None:
        from ..errors import FaultError
        from ..faults import FaultPlan

        try:
            fault_plan = FaultPlan.parse(args.faults)
        except FaultError as exc:
            return runlog.error(f"bad --faults spec: {exc}")
        refusing = [eid for eid in ids
                    if not REGISTRY[eid].accepts_faults]
        if refusing:
            return runlog.error(
                "experiment(s) do not accept a fault plan: "
                + " ".join(sorted(refusing)))
    save_dir = None
    if args.save:
        from pathlib import Path

        save_dir = Path(args.save)
        save_dir.mkdir(parents=True, exist_ok=True)
    profile_dir = None
    if args.profile or args.cprofile:
        from pathlib import Path

        profile_dir = Path(args.profile or "results")
    profiler = Profiler(enabled=profile_dir is not None,
                        cprofile_top=args.cprofile)

    started_at = datetime.now(timezone.utc).strftime(
        "%Y-%m-%dT%H:%M:%SZ")
    reporter = None if args.no_progress else ProgressReporter(
        total=len(ids), runlog=runlog)
    hooks = RunHooks(reporter=reporter)
    runlog.info("run-start", ids=" ".join(ids), jobs=args.jobs,
                full=args.full, cache=not args.no_cache,
                faults=args.faults)
    start = time.perf_counter()
    results = _run_ids(ids, fast=not args.full, jobs=args.jobs,
                       use_cache=not args.no_cache,
                       fault_plan=fault_plan, hooks=hooks,
                       profiler=profiler)
    hooks.close()

    failed = 0
    with profiler.phase("render+save"):
        for eid, result in results:
            print(result.render())
            print()
            if save_dir is not None:
                import json

                (save_dir / f"{eid}.txt").write_text(
                    result.render() + "\n")
                (save_dir / f"{eid}.json").write_text(
                    json.dumps(result.to_dict(), indent=2,
                               sort_keys=True) + "\n")
            if not result.passed:
                failed += 1
    if failed:
        print(f"{failed} experiment(s) had failing shape checks")
    wall_s = time.perf_counter() - start
    exit_code = EXIT_FAILED_CHECKS if failed else EXIT_OK

    if profile_dir is not None:
        from ..obs.profiler import write_experiment_profile

        for eid, result in results:
            write_experiment_profile(
                profile_dir, eid,
                wall_s=hooks.unit_wall.get(eid),
                cached=eid in hooks.cache_hits,
                passed=result.passed)
        suite_path = profiler.write(
            profile_dir / "suite.profile.json",
            extra={"ids": ids, "jobs": args.jobs,
                   "wall_s": round(wall_s, 6)})
        runlog.info("profile-written", path=str(suite_path),
                    experiments=len(results))
    if not args.no_ledger:
        _append_ledger(args, argv, ids, started_at=started_at,
                       wall_s=wall_s, hooks=hooks, results=results,
                       fault_plan=fault_plan, exit_code=exit_code,
                       runlog=runlog)
    runlog.info("run-end", wall_s=wall_s, failed=failed,
                cache_hits=len(hooks.cache_hits),
                cache_misses=len(hooks.cache_misses),
                exit_code=exit_code)
    if failed:
        runlog.error(f"{failed} experiment(s) had failing shape checks",
                     code=EXIT_FAILED_CHECKS)
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
