"""Figure 7: Redis max sustainable QPS across workloads and CXL ratios."""

from __future__ import annotations

from .. import build_system, combined_testbed
from ..analysis.compare import ShapeCheck, check_ratio
from ..analysis.tables import format_table
from ..apps.kvstore import RedisYcsbStudy
from .registry import ExperimentResult, register

CXL_FRACTIONS = [1.0, 0.5, 0.1, 1 / 31, 0.0]
FRACTION_LABELS = ["100%", "50%", "10%", "3.23%", "0%"]


@register("fig7", "Redis max sustainable QPS", "Fig. 7, §5.1")
def run(fast: bool) -> ExperimentResult:
    system = build_system(combined_testbed())
    study = RedisYcsbStudy(system, num_keys=200_000)
    names = ["A", "D"] if fast else ["A", "B", "C", "D", "F"]
    table = study.max_qps_table(cxl_fractions=CXL_FRACTIONS,
                                workload_names=names)

    rows = []
    for name, series in table.items():
        rows.append([name] + [f"{value / 1000:.1f}k"
                              for value in series.y])
    rendered = format_table(["workload"] + FRACTION_LABELS, rows,
                            title="Fig 7: max sustainable QPS "
                                  "(columns: memory on CXL)")

    a = table["A"]
    checks = [
        ShapeCheck("less CXL -> higher max QPS (every workload)",
                   all(series.y == sorted(series.y)
                       for series in table.values()),
                   "all rows monotone"),
        ShapeCheck("no interleave beats pure DRAM",
                   all(series.y[-1] == max(series.y)
                       for series in table.values()),
                   "DRAM column is max"),
        check_ratio("workload A: pure DRAM ~80k QPS",
                    a.y_at(0.0), 1.0, 80_000, 7_000),
        check_ratio("workload A: pure CXL ~55k QPS",
                    a.y_at(1.0), 1.0, 55_000, 5_000),
        ShapeCheck("workload D: lat > zipf > uni on CXL",
                   table["D-lat"].y_at(1.0) > table["D-zipf"].y_at(1.0)
                   > table["D-uni"].y_at(1.0),
                   f"lat={table['D-lat'].y_at(1.0):.0f} "
                   f"zipf={table['D-zipf'].y_at(1.0):.0f} "
                   f"uni={table['D-uni'].y_at(1.0):.0f}"),
    ]
    return ExperimentResult("fig7", "Redis max sustainable QPS", rendered,
                            checks)
