"""Figure 5: random block-access bandwidth (3x3 grid)."""

from __future__ import annotations

from .. import build_system, combined_testbed
from ..analysis.compare import ShapeCheck, check_monotone, check_peak_near
from ..cpu.isa import AccessKind
from ..cpu.system import MemoryScheme
from ..memo.random_bench import RandomBlockBench
from ..units import KIB
from .registry import ExperimentResult, register, series_payload

L8, R1, CXL = MemoryScheme.DDR5_L8, MemoryScheme.DDR5_R1, MemoryScheme.CXL


@register("fig5", "Random block access bandwidth", "Fig. 5, §4.3.2")
def run(fast: bool) -> ExperimentResult:
    system = build_system(combined_testbed())
    blocks = ([1 * KIB, 4 * KIB, 16 * KIB, 32 * KIB, 64 * KIB, 128 * KIB]
              if fast else
              [1 * KIB, 2 * KIB, 4 * KIB, 8 * KIB, 16 * KIB, 32 * KIB,
               64 * KIB, 128 * KIB])
    threads = [1, 2, 4, 8, 16] if fast else [1, 2, 4, 8, 16, 32]
    bench = RandomBlockBench(system, block_sizes=blocks,
                             thread_counts=threads)
    report = bench.run()

    def gain_16k(scheme):
        four = bench.point(scheme, AccessKind.LOAD, threads=4,
                           block_bytes=16 * KIB)
        sixteen = bench.point(scheme, AccessKind.LOAD, threads=16,
                              block_bytes=16 * KIB)
        return sixteen / four

    small_block = {
        scheme: bench.point(scheme, AccessKind.LOAD, threads=4,
                            block_bytes=1 * KIB)
        / bench.point(scheme, AccessKind.LOAD, threads=4,
                      block_bytes=128 * KIB)
        for scheme in (L8, R1, CXL)}

    checks = [
        ShapeCheck("1 KiB random blocks hurt all three schemes",
                   all(ratio < 0.8 for ratio in small_block.values()),
                   " ".join(f"{s.label}={r:.2f}"
                            for s, r in small_block.items())),
        ShapeCheck("at 16 KiB, L8 keeps scaling with threads; R1/CXL don't",
                   gain_16k(L8) > 3.0 and gain_16k(CXL) < 2.0
                   and gain_16k(R1) < 2.0,
                   f"L8 x{gain_16k(L8):.1f}, CXL x{gain_16k(CXL):.1f}, "
                   f"R1 x{gain_16k(R1):.1f}"),
        check_monotone("single-thread CXL nt-store scales with block size",
                       report.series("fig5-CXL-nt-st", "1T")),
        check_peak_near("2-thread CXL nt-store peaks near 32 KiB",
                        report.series("fig5-CXL-nt-st", "2T"),
                        expected_x=32, slack=16),
        check_peak_near("4-thread CXL nt-store peaks near 16 KiB",
                        report.series("fig5-CXL-nt-st", "4T"),
                        expected_x=16, slack=8),
    ]
    return ExperimentResult("fig5", "Random block access bandwidth",
                            report.render(), checks,
                            series=series_payload(report))
