"""Figure 2: access latency probes and the pointer-chase WSS staircase."""

from __future__ import annotations

from .. import build_system, combined_testbed
from ..analysis.compare import check_monotone, check_ordering, check_ratio
from ..cpu.system import MemoryScheme
from ..memo.latency_bench import LatencyBench
from ..memo.pointer_chase import PointerChaseBench
from ..units import KIB, MIB
from .registry import ExperimentResult, register, series_payload

L8, R1, CXL = MemoryScheme.DDR5_L8, MemoryScheme.DDR5_R1, MemoryScheme.CXL


@register("fig2", "Access latency (ld / st+wb / nt-st / ptr-chase)",
          "Fig. 2, §4.2")
def run(fast: bool) -> ExperimentResult:
    system = build_system(combined_testbed())
    latency = LatencyBench(system)
    report = latency.run()

    wss_points = ([64 * KIB, 1 * MIB, 16 * MIB, 128 * MIB, 1024 * MIB]
                  if fast else
                  [2 ** e * KIB for e in range(4, 21)])
    chase_report = PointerChaseBench(system, wss_points=wss_points).run()
    for series in chase_report.panel("fig2-right"):
        report.add_series("fig2-right", series)

    model = latency.model
    checks = [
        check_ratio("CXL flushed-load latency ~2.2x DDR5-L8",
                    model.flushed_load_ns(CXL),
                    model.flushed_load_ns(L8), 2.2, 0.35),
        check_ratio("CXL pointer chase ~3.7x DDR5-L8",
                    latency.pointer_chase(CXL),
                    latency.pointer_chase(L8), 3.7, 0.45),
        check_ratio("CXL pointer chase ~2.2x DDR5-R1",
                    latency.pointer_chase(CXL),
                    latency.pointer_chase(R1), 2.2, 0.3),
        check_ordering("nt-st < st+wb on CXL (RFO penalty)",
                       {"nt-st": model.nt_store_ns(CXL),
                        "st+wb": model.flushed_store_writeback_ns(CXL)}),
        check_ordering("flushed loads ordered L8 < R1 < CXL",
                       {"L8": model.flushed_load_ns(L8),
                        "R1": model.flushed_load_ns(R1),
                        "CXL": model.flushed_load_ns(CXL)}),
    ]
    for series in chase_report.panel("fig2-right"):
        checks.append(check_monotone(
            f"{series.name} chase latency rises with WSS", series))
    return ExperimentResult("fig2", "Access latency", report.render(),
                            checks, series=series_payload(report))
