"""One module per paper table/figure, plus a registry and runner.

Every experiment regenerates its figure as text tables (the same
rows/series the paper plots) and validates the paper's qualitative
claims as :class:`~repro.analysis.compare.ShapeCheck` assertions.

Run everything with ``repro-experiments`` (or
``python -m repro.experiments.runner``); see EXPERIMENTS.md for the
paper-vs-measured record.
"""

from .registry import Experiment, ExperimentResult, REGISTRY, get, run_all

# Importing the experiment modules populates the registry.
from . import (          # noqa: F401  (imported for registration side effect)
    table1_testbeds,
    fig2_latency,
    fig3_seq_bw,
    fig4_movdir_dsa,
    fig5_random_bw,
    fig6_redis_latency,
    fig7_redis_qps,
    fig8_dlrm,
    fig9_dlrm_snc,
    fig10_dsb,
    figc_cluster,
    figf_degraded_cxl,
    figr_resilience,
    extensions,
)

# The shipped scenario pack registers last, alongside the hand-written
# experiments (docs/SCENARIOS.md); ids carry the ``scn-`` prefix.
from ..scenarios import register_pack as _register_pack

_register_pack()

__all__ = ["Experiment", "ExperimentResult", "REGISTRY", "get", "run_all"]
