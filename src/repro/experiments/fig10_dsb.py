"""Figure 10: DeathStarBench p99 latency and memory breakdown."""

from __future__ import annotations

from .. import build_system, combined_testbed
from ..analysis.compare import ShapeCheck, check_ratio
from ..analysis.tables import format_table, series_table
from ..apps.dsb import DsbRunner, RequestType, memory_breakdown
from ..apps.dsb.runner import p99_curves
from ..apps.dsb.socialnet import MIXED_WORKLOAD, SocialNetwork
from .registry import ExperimentResult, register, series_payload


@register("fig10", "DeathStarBench p99 latency and memory breakdown",
          "Fig. 10, §5.3")
def run(fast: bool, jobs: int = 1) -> ExperimentResult:
    system = build_system(combined_testbed())
    dram = DsbRunner(system, database_node=system.LOCAL_NODE)
    cxl = DsbRunner(system, database_node=system.cxl_node_id)
    qps_points = [200.0, 600.0, 1200.0] if fast else [100.0, 200.0, 400.0,
                                                      600.0, 900.0, 1200.0,
                                                      1600.0]
    requests = 1500 if fast else 5000

    request_types = (RequestType.COMPOSE_POST,
                     RequestType.READ_USER_TIMELINE, None)
    # One flat (type × backend × QPS) sweep: with --jobs every point is
    # its own worker unit instead of sharding one curve at a time.
    combos = [(runner, request_type)
              for request_type in request_types
              for runner in (dram, cxl)]
    all_curves = p99_curves(combos, qps_points, requests=requests,
                            jobs=jobs)

    panels = []
    per_type_curves = {}
    for index, request_type in enumerate(request_types):
        name = request_type.value if request_type else "mixed"
        curves = all_curves[2 * index:2 * index + 2]
        per_type_curves[name] = curves
        panels.append(series_table(curves, y_format="{:.2f}",
                                   title=f"Fig 10: {name} p99 (ms)"))

    breakdown = memory_breakdown()
    panels.append(format_table(
        ["component", "memory share"],
        [[name, f"{share * 100:.0f}%"]
         for name, share in breakdown.items()],
        title="Fig 10 (right): memory breakdown"))

    compose_gap = (per_type_curves["compose-post"][1].y_at(qps_points[0])
                   / per_type_curves["compose-post"][0].y_at(qps_points[0]))
    user_gap = (per_type_curves["read-user-timeline"][1].y_at(qps_points[0])
                / per_type_curves["read-user-timeline"][0].y_at(
                    qps_points[0]))
    dram_net = SocialNetwork(system, database_node=system.LOCAL_NODE)
    cxl_net = SocialNetwork(system, database_node=system.cxl_node_id)
    sat_ratio = (cxl_net.saturation_qps(MIXED_WORKLOAD)
                 / dram_net.saturation_qps(MIXED_WORKLOAD))

    checks = [
        ShapeCheck("compose-post shows a visible CXL p99 gap",
                   compose_gap > 1.1, f"gap={compose_gap:.2f}x"),
        ShapeCheck("read-user-timeline shows little to no difference",
                   user_gap < 1.12, f"gap={user_gap:.2f}x"),
        ShapeCheck("DSB latencies are ms-level (vs Redis' us-level)",
                   per_type_curves["mixed"][0].y_at(qps_points[0]) > 0.5,
                   f"{per_type_curves['mixed'][0].y_at(qps_points[0]):.2f} ms"),
        check_ratio("mixed-workload saturation point similar on CXL",
                    sat_ratio, 1.0, 1.0, 0.35),
        ShapeCheck("databases dominate the memory footprint",
                   breakdown["storage"] + breakdown["cache"] > 0.6,
                   f"storage+cache="
                   f"{(breakdown['storage'] + breakdown['cache']) * 100:.0f}%"),
    ]
    return ExperimentResult("fig10", "DeathStarBench p99 latency",
                            "\n\n".join(panels), checks,
                            series=series_payload(
                                {f"fig10-{name}": curves
                                 for name, curves in
                                 per_type_curves.items()}))
