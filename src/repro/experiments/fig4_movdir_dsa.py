"""Figure 4: data-movement bandwidth (movdir64B routes + DSA methods)."""

from __future__ import annotations

from .. import build_system, combined_testbed
from ..analysis.compare import ShapeCheck, check_ratio
from ..memo.dsa_bench import DsaBench
from ..memo.movdir_bench import MovdirBench
from ..cpu.system import MemoryScheme
from .registry import ExperimentResult, register, series_payload

L8, CXL = MemoryScheme.DDR5_L8, MemoryScheme.CXL


@register("fig4", "Data movement: movdir64B routes and DSA offload",
          "Fig. 4, §4.3.1")
def run(fast: bool) -> ExperimentResult:
    system = build_system(combined_testbed())
    movdir = MovdirBench(system,
                         thread_counts=[1, 2, 4] if fast else [1, 2, 4, 8])
    dsa = DsaBench(system)
    report = movdir.run()
    dsa_report = dsa.run()
    for series in dsa_report.panel("fig4b"):
        report.add_series("fig4b", series)
    report.notes += dsa_report.notes

    d2d = movdir.route_bandwidth(L8, L8)
    d2c = movdir.route_bandwidth(L8, CXL)
    c2d = movdir.route_bandwidth(CXL, L8)
    c2c = movdir.route_bandwidth(CXL, CXL)
    sync1 = dsa.throughput("dsa-sync-b1", L8, CXL)
    memcpy = dsa.throughput("memcpy", L8, CXL)
    async128 = dsa.throughput("dsa-async-b128", L8, CXL)
    dsa_c2d = dsa.throughput("dsa-async-b128", CXL, L8)
    dsa_c2c = dsa.throughput("dsa-async-b128", CXL, CXL)

    checks = [
        check_ratio("movdir64B: D2C similar to D2D", d2c, d2d, 1.0, 0.15),
        ShapeCheck("movdir64B: C2* routes lower than D2* (slow CXL load)",
                   c2d < 0.6 * d2d and c2c <= c2d,
                   f"D2D={d2d:.1f} C2D={c2d:.1f} C2C={c2c:.1f} GB/s"),
        check_ratio("DSA sync b1 matches CPU memcpy", sync1, memcpy,
                    1.0, 0.5),
        ShapeCheck("async/batched DSA beats sync unbatched",
                   async128 > 2 * sync1,
                   f"async-b128={async128:.1f} sync-b1={sync1:.1f} GB/s"),
        ShapeCheck("C2D beats D2C (lower write latency on DRAM)",
                   dsa_c2d > dsa.throughput("dsa-async-b128", L8, CXL),
                   f"C2D={dsa_c2d:.1f} D2C="
                   f"{dsa.throughput('dsa-async-b128', L8, CXL):.1f}"),
        ShapeCheck("splitting src/dst beats exclusive CXL (C2C lowest)",
                   dsa_c2c < dsa_c2d
                   and dsa_c2c < dsa.throughput("dsa-async-b128", L8, CXL),
                   f"C2C={dsa_c2c:.1f} GB/s"),
    ]
    return ExperimentResult("fig4", "Data movement bandwidth",
                            report.render(), checks,
                            series=series_payload(report))
