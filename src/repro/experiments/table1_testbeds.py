"""Table 1: testbed configurations."""

from __future__ import annotations

from .. import combined_testbed, dual_socket_testbed, single_socket_testbed
from ..analysis.compare import ShapeCheck
from ..analysis.tables import format_table
from ..units import format_bytes, to_gb_per_s
from .registry import ExperimentResult, register


@register("table1", "Testbed configurations", "Table 1, §3")
def run(fast: bool) -> ExperimentResult:
    del fast    # static content
    single = single_socket_testbed()
    dual = dual_socket_testbed()
    rows = []
    socket = single.socket
    rows.append(["single-socket CPU",
                 f"{socket.name}, {socket.cores} cores, SMT{socket.smt}"])
    rows.append(["single-socket LLC",
                 format_bytes(socket.cache.llc.capacity_bytes)])
    rows.append(["single-socket DRAM",
                 f"DDR5-{socket.dram.transfer_mt_s:.0f} x"
                 f"{socket.dram.channels}, "
                 f"{format_bytes(socket.dram.capacity_bytes)}"])
    cxl = single.cxl
    rows.append(["CXL device",
                 f"CXL 1.1 on {cxl.link.name}, "
                 f"DDR4-{cxl.dram.transfer_mt_s:.0f} x{cxl.dram.channels}, "
                 f"{format_bytes(cxl.dram.capacity_bytes)}"])
    for index, dsocket in enumerate(dual.sockets):
        rows.append([f"dual-socket CPU {index}",
                     f"{dsocket.name}, {dsocket.cores} cores, "
                     f"LLC {format_bytes(dsocket.cache.llc.capacity_bytes)}"])
    rendered = format_table(["item", "configuration"], rows,
                            title="Table 1: testbeds")

    combined = combined_testbed()
    checks = [
        ShapeCheck("single socket has 32 cores and 60 MB LLC",
                   socket.cores == 32
                   and socket.cache.llc.capacity_bytes == 60 * 1024 ** 2,
                   f"{socket.cores} cores"),
        ShapeCheck("dual socket has 2x40 cores, 210 MB total LLC",
                   sum(s.cores for s in dual.sockets) == 80
                   and sum(s.cache.llc.capacity_bytes
                           for s in dual.sockets) == 210 * 1024 ** 2,
                   f"{sum(s.cores for s in dual.sockets)} cores"),
        ShapeCheck("CXL device: 16 GB DDR4-2666 x1 behind PCIe Gen5 x16",
                   cxl.dram.transfer_mt_s == 2666
                   and cxl.dram.channels == 1
                   and round(to_gb_per_s(
                       cxl.link.bandwidth_bytes_per_s)) == 64,
                   cxl.link.name),
        ShapeCheck("combined testbed exposes all three schemes",
                   len(combined.sockets) == 2 and bool(combined.cxl_devices),
                   combined.name),
    ]
    return ExperimentResult("table1", "Testbed configurations", rendered,
                            checks)
