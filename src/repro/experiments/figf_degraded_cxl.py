"""Fig F (extension): degraded-mode CXL — tail latency under faults.

The paper measures healthy hardware; its RAS discussion (§2.1: per-flit
CRC with link-layer retry, data poisoning) is what this extension
exercises.  We sweep a severity multiplier over a baseline
:class:`~repro.faults.FaultPlan` (CRC errors, poisoned reads, transient
timeouts, device stalls) and drive the mechanism-level end-to-end read
simulator under each plan.  Faults are injected with counter-based
draws (docs/FAULTS.md), so the sweep is deterministic, identical under
``--jobs``, and fault sets *nest* as severity grows — which is why the
reported tail inflation is monotone rather than merely trending up.

Registered as ``degraded-cxl`` (alias ``figF``).
"""

from __future__ import annotations

from ..analysis.compare import ShapeCheck, check_monotone
from ..analysis.series import Series
from ..analysis.tables import series_table
from ..cxl.e2e_sim import CxlEndToEndSim, E2eResult
from ..faults import ZERO_FAULTS, FaultPlan
from .registry import ExperimentResult, register, series_payload

# The 1x plan: roughly one CRC-failed flit per hundred, one poisoned
# read per five hundred, rare transient timeouts, and occasional 400 ns
# device stalls.  Severity scales these rates together.
BASE_PLAN = FaultPlan(crc_rate=0.01, poison_rate=0.002,
                      timeout_rate=0.001, stall_rate=0.01,
                      stall_ns=400.0, seed=11)
THREADS = 4


def _run_points(plans: list[FaultPlan | None],
                severities: list[float], lines: int,
                jobs: int) -> list[E2eResult]:
    """One sim run per plan, optionally sharded across processes."""
    run_kwargs = {"threads": THREADS, "lines_per_thread": lines}
    if jobs > 1:
        from ..parallel import ParallelRunner
        from ..parallel.sweeps import run_sim_point

        units = [(CxlEndToEndSim, {"fault_plan": plan}, run_kwargs, None)
                 for plan in plans]
        names = [f"figF[severity={severity:g}x]"
                 for severity in severities]
        return [result for result, _export
                in ParallelRunner(jobs, names=names).map(run_sim_point,
                                                         units)]
    return [CxlEndToEndSim(fault_plan=plan).run(**run_kwargs)
            for plan in plans]


@register("degraded-cxl", "Degraded-mode CXL tail latency",
          "extension of §2.1 (RAS) + §4.3.1")
def run(fast: bool, jobs: int = 1,
        fault_plan: FaultPlan | None = None) -> ExperimentResult:
    base = fault_plan if fault_plan is not None else BASE_PLAN
    severities = [0.0, 0.25, 1.0, 4.0] if fast \
        else [0.0, 0.25, 1.0, 2.0, 4.0, 8.0]
    lines = 600 if fast else 2000
    plans = [base.scaled(severity) if severity > 0 else None
             for severity in severities]
    results = _run_points(plans, severities, lines, jobs)
    # The zero-plan fast path must be byte-identical to an explicit
    # all-zero-rates plan (the "faults off means OFF" contract).
    zero_plan_result = CxlEndToEndSim(fault_plan=ZERO_FAULTS).run(
        threads=THREADS, lines_per_thread=lines)

    baseline = results[0]
    x_kw = {"x_label": "severity"}
    p50 = Series("p50-ns", list(severities),
                 [r.p50_ns for r in results], y_label="ns", **x_kw)
    p99 = Series("p99-ns", list(severities),
                 [r.p99_ns for r in results], y_label="ns", **x_kw)
    inflation = p99.normalized_to(baseline.p99_ns, "p99-inflation")
    bandwidth = Series("GB/s", list(severities),
                       [r.gb_per_s for r in results],
                       y_label="GB/s", **x_kw)
    injected = Series("faults", list(severities),
                      [float(r.faults_injected) for r in results],
                      y_label="count", **x_kw)
    series_list = [p50, p99, inflation, bandwidth, injected]

    expected = THREADS * lines
    checks = [
        check_monotone("p99 read latency inflates monotonically with "
                       "fault severity", inflation),
        ShapeCheck("fault-free and zero-rate-plan runs are identical",
                   zero_plan_result == baseline,
                   f"p99 {zero_plan_result.p99_ns:.3f} vs "
                   f"{baseline.p99_ns:.3f}, "
                   f"inj {zero_plan_result.faults_injected}"),
        ShapeCheck("zero severity injects zero faults",
                   baseline.faults_injected == 0,
                   f"injected={baseline.faults_injected}"),
        ShapeCheck("top severity injects faults",
                   results[-1].faults_injected > 0,
                   f"injected={results[-1].faults_injected}"),
        ShapeCheck("every injected fault is recovered, every read "
                   "completes",
                   all(r.faults_injected == r.faults_recovered
                       and r.completed == expected for r in results),
                   f"worst gap={max(r.faults_injected - r.faults_recovered for r in results)}, "
                   f"completed={results[-1].completed}/{expected}"),
        ShapeCheck("bandwidth never rises with severity",
                   all(after <= before for before, after
                       in zip(bandwidth.y, bandwidth.y[1:])),
                   " >= ".join(f"{value:.2f}" for value in bandwidth.y)),
    ]
    rendered = series_table(
        series_list,
        title=f"Degraded-mode CXL reads ({THREADS} threads, "
              f"{lines} lines/thread; severity x baseline plan)",
        y_format="{:.2f}")
    return ExperimentResult(
        "degraded-cxl", "Degraded-mode CXL tail latency", rendered,
        checks, series=series_payload({"degraded-cxl": series_list}))
