"""Cross-model validation: the three model layers must agree.

The library computes the same quantities in independent ways — analytic
formulas, functional cache/protocol simulation, and discrete-event
simulation.  :func:`cross_validate` checks that they agree where they
overlap:

1. the credit-based link DES reproduces the analytic flit-framing
   bandwidth ceiling;
2. functionally-measured bus traffic matches each access kind's declared
   RFO traffic factor;
3. the DES Redis server saturates at the analytic ``1/E[service]``
   capacity;
4. the functional pointer chase lands between the analytic staircase
   and the full-traversal bound.

Run from the CLI with ``repro-experiments --validate``.
"""

from __future__ import annotations

from .analysis.compare import ShapeCheck
from .apps.kvstore import RedisYcsbStudy
from .cache.hierarchy import CacheHierarchy
from .config import CacheConfig, CacheLevelConfig
from .cpu.isa import AccessKind
from .cpu.system import System
from .cxl.link_sim import CreditedLinkSim
from .cxl.port import CxlPort
from .memo.pointer_chase import simulate_chase
from .memo.traffic import measure_stream_traffic
from .units import KIB
from .workloads.ycsb import WORKLOADS


def _small_hierarchy() -> CacheHierarchy:
    return CacheHierarchy(CacheConfig(
        l1=CacheLevelConfig("L1d", 4 * KIB, ways=4, latency_ns=2.0),
        l2=CacheLevelConfig("L2", 16 * KIB, ways=4, latency_ns=8.0),
        llc=CacheLevelConfig("LLC", 64 * KIB, ways=8, latency_ns=25.0),
    ))


def validate_link_ceiling() -> ShapeCheck:
    """DES-achieved link bandwidth vs the analytic 64/136 framing."""
    port = CxlPort()
    sim = CreditedLinkSim(port, device_service_ns=1.0,
                          device_parallelism=64, request_credits=64)
    achieved = sim.read_bandwidth()
    analytic = port.data_bandwidth_ceiling(slots_per_line=5)
    agree = abs(achieved - analytic) / analytic < 0.05 \
        and achieved <= analytic
    return ShapeCheck(
        "link DES reproduces the analytic flit-framing ceiling",
        agree, f"DES={achieved / 1e9:.1f} vs analytic="
               f"{analytic / 1e9:.1f} GB/s")


def validate_traffic_factors() -> ShapeCheck:
    """Functional bus counts vs the declared per-kind traffic factors."""
    mismatches = []
    for kind in (AccessKind.LOAD, AccessKind.STORE, AccessKind.NT_STORE):
        measured = measure_stream_traffic(_small_hierarchy(), kind,
                                          512).traffic_factor
        if abs(measured - kind.traffic_factor) > 0.05:
            mismatches.append(f"{kind.value}: {measured:.2f} vs "
                              f"{kind.traffic_factor}")
    return ShapeCheck(
        "functional traffic matches declared RFO factors",
        not mismatches,
        "; ".join(mismatches) if mismatches else "ld=1, st+wb=2, nt-st=1")


def validate_redis_capacity(system: System) -> ShapeCheck:
    """DES server saturation vs the analytic max-QPS capacity."""
    study = RedisYcsbStudy(system, num_keys=100_000)
    workload = WORKLOADS["A"]
    capacity = study.max_qps(workload, 1.0)
    below = study.p99_point(workload, 1.0, capacity * 0.85,
                            requests=6000)
    above = study.p99_point(workload, 1.0, capacity * 1.3,
                            requests=6000)
    agree = (not below.saturated) and (above.saturated
                                       or above.p99_ns > 5 * below.p99_ns)
    return ShapeCheck(
        "DES Redis saturates at the analytic 1/E[service] capacity",
        agree, f"capacity={capacity:.0f} QPS; 85% keeps up, "
               f"130% p99={above.p99_ns / 1000:.0f}us")


def validate_chase_bounds() -> ShapeCheck:
    """Functional chase between the analytic staircase and full path."""
    wss = 48 * KIB
    functional = simulate_chase(_small_hierarchy(), wss, accesses=3000,
                                memory_latency_ns=400.0)
    analytic = _small_hierarchy().expected_latency_ns(wss, 400.0)
    traversal = 2.0 + 8.0 + 25.0
    within = analytic <= functional <= traversal + 400.0
    return ShapeCheck(
        "functional pointer chase bounded by analytic regimes",
        within, f"analytic={analytic:.1f} <= functional="
                f"{functional:.1f} <= {traversal + 400:.1f} ns")


def cross_validate(system: System) -> list[ShapeCheck]:
    """All cross-model agreement checks."""
    return [
        validate_link_ceiling(),
        validate_traffic_factors(),
        validate_redis_capacity(system),
        validate_chase_bounds(),
    ]
