"""The page allocator: ``numa_alloc_onnode`` and policy-driven placement.

Tracks per-node occupancy so that :class:`~repro.topology.interleave.Preferred`
actually spills when the preferred node fills up — the behavior the paper
relies on when Redis' working set exceeds the 16 GB CXL node.
"""

from __future__ import annotations

import numpy as np

from ..errors import AllocationError
from ..units import PAGE_4K
from .interleave import Membind, PlacementPolicy, Preferred
from .numa import NumaTopology
from .pages import Allocation


class PageAllocator:
    """Allocates page-mapped buffers from a :class:`NumaTopology`."""

    def __init__(self, topology: NumaTopology,
                 page_bytes: int = PAGE_4K) -> None:
        self.topology = topology
        self.page_bytes = page_bytes
        self._used_pages: dict[int, int] = {
            node.node_id: 0 for node in topology.nodes}

    # -- capacity accounting -------------------------------------------------

    def capacity_pages(self, node_id: int) -> int:
        """Total pages a node can hold."""
        return self.topology.node(node_id).capacity_bytes // self.page_bytes

    def free_pages(self, node_id: int) -> int:
        """Pages still unallocated on a node."""
        return self.capacity_pages(node_id) - self._used_pages[node_id]

    def used_bytes(self, node_id: int) -> int:
        """Bytes currently allocated on a node."""
        return self._used_pages[node_id] * self.page_bytes

    # -- allocation ----------------------------------------------------------

    def allocate(self, size_bytes: int,
                 policy: PlacementPolicy) -> Allocation:
        """Allocate ``size_bytes`` placed according to ``policy``.

        * ``Membind(strict=True)`` raises :class:`AllocationError` when the
          node cannot hold the request (mirroring the OOM-kill a strict
          bind produces on Linux).
        * ``Preferred`` fills the preferred node first and spills the
          remainder to the fallback node.
        * Interleave policies place page ``i`` on ``node_for_page(i)``
          and fail if any participating node runs out.
        """
        if size_bytes <= 0:
            raise AllocationError(f"allocation size must be positive: {size_bytes}")
        num_pages = -(-size_bytes // self.page_bytes)

        if isinstance(policy, Preferred):
            page_nodes = self._place_preferred(num_pages, policy)
        else:
            page_nodes = self._place_by_policy(num_pages, policy)

        for node_id in np.unique(page_nodes):
            count = int(np.count_nonzero(page_nodes == node_id))
            self._used_pages[int(node_id)] += count
        return Allocation(size_bytes=size_bytes, page_bytes=self.page_bytes,
                          page_nodes=page_nodes)

    def on_node(self, size_bytes: int, node_id: int) -> Allocation:
        """``numa_alloc_onnode`` — strict single-node allocation (§4.1)."""
        return self.allocate(size_bytes, Membind(node_id))

    def free(self, allocation: Allocation) -> None:
        """Return an allocation's pages to their nodes."""
        for node_id, pages in allocation.node_histogram().items():
            if self._used_pages.get(node_id, 0) < pages:
                raise AllocationError(
                    f"double free: node {node_id} has fewer used pages "
                    f"than being freed")
            self._used_pages[node_id] -= pages

    # -- internals -------------------------------------------------------

    def _place_by_policy(self, num_pages: int,
                         policy: PlacementPolicy) -> np.ndarray:
        page_nodes = self._materialize(num_pages, policy)
        ids, counts = np.unique(page_nodes, return_counts=True)
        for node_id, pages in zip(ids, counts):
            node_id, pages = int(node_id), int(pages)
            if node_id not in self.topology:
                raise AllocationError(f"policy names unknown node {node_id}")
            if pages > self.free_pages(node_id):
                raise AllocationError(
                    f"node {node_id} cannot hold {pages} pages "
                    f"({self.free_pages(node_id)} free)")
        return page_nodes

    @staticmethod
    def _materialize(num_pages: int, policy: PlacementPolicy) -> np.ndarray:
        # All shipped policies are cyclic in the page index, so one cycle
        # tiled with numpy covers multi-GiB allocations without a Python
        # loop over millions of pages.
        cycle = getattr(policy, "cycle_length", None)
        if cycle is None and isinstance(policy, Membind):
            cycle = 1
        elif cycle is None and hasattr(policy, "node_ids"):
            cycle = len(policy.node_ids)
        if cycle is not None and cycle < num_pages:
            one_cycle = np.fromiter(
                (policy.node_for_page(i) for i in range(cycle)),
                dtype=np.int16, count=cycle)
            reps = -(-num_pages // cycle)
            return np.tile(one_cycle, reps)[:num_pages]
        return np.fromiter(
            (policy.node_for_page(i) for i in range(num_pages)),
            dtype=np.int16, count=num_pages)

    def _place_preferred(self, num_pages: int,
                         policy: Preferred) -> np.ndarray:
        for node_id in (policy.node_id, policy.fallback_node_id):
            if node_id not in self.topology:
                raise AllocationError(f"policy names unknown node {node_id}")
        first = min(num_pages, self.free_pages(policy.node_id))
        spill = num_pages - first
        if spill > self.free_pages(policy.fallback_node_id):
            raise AllocationError(
                f"preferred allocation needs {spill} spill pages on node "
                f"{policy.fallback_node_id}, only "
                f"{self.free_pages(policy.fallback_node_id)} free")
        page_nodes = np.empty(num_pages, dtype=np.int16)
        page_nodes[:first] = policy.node_id
        page_nodes[first:] = policy.fallback_node_id
        return page_nodes
