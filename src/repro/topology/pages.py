"""Allocations: page-granular mappings from a buffer to NUMA nodes.

An :class:`Allocation` is what the allocator hands back — the simulated
analogue of the pointer returned by ``numa_alloc_onnode`` plus the page
table entries behind it.  Benchmarks and applications query
:meth:`Allocation.node_of` to find where a byte offset lives, and
:meth:`Allocation.node_histogram` to verify interleave ratios.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AllocationError
from ..units import PAGE_4K


@dataclass(frozen=True)
class Allocation:
    """A contiguous virtual buffer whose pages are spread over nodes.

    ``page_nodes[i]`` is the NUMA node id backing page ``i``.  Stored as a
    compact numpy array: a 16 GiB allocation is 4 Mi pages, i.e. 8 MB of
    int16 — cheap enough to materialize exactly rather than model
    statistically, which keeps node lookups honest.
    """

    size_bytes: int
    page_bytes: int
    page_nodes: np.ndarray

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise AllocationError("allocation size must be positive")
        if self.page_bytes <= 0 or self.page_bytes % 512:
            raise AllocationError(f"bad page size: {self.page_bytes}")
        expected = -(-self.size_bytes // self.page_bytes)   # ceil division
        if len(self.page_nodes) != expected:
            raise AllocationError(
                f"page map has {len(self.page_nodes)} entries, "
                f"expected {expected}")

    @property
    def num_pages(self) -> int:
        return len(self.page_nodes)

    def node_of(self, offset: int) -> int:
        """NUMA node id backing byte ``offset`` of the buffer."""
        if not 0 <= offset < self.size_bytes:
            raise AllocationError(
                f"offset {offset} outside allocation of {self.size_bytes} B")
        return int(self.page_nodes[offset // self.page_bytes])

    def nodes_of(self, offsets: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`node_of` for benchmark inner loops."""
        pages = offsets // self.page_bytes
        if pages.size and (pages.min() < 0 or pages.max() >= self.num_pages):
            raise AllocationError("offset array outside allocation")
        return self.page_nodes[pages]

    def node_histogram(self) -> dict[int, int]:
        """Pages per node — used to verify interleave ratios in tests."""
        ids, counts = np.unique(self.page_nodes, return_counts=True)
        return {int(node): int(count) for node, count in zip(ids, counts)}

    def node_fractions(self) -> dict[int, float]:
        """Fraction of pages per node."""
        histogram = self.node_histogram()
        total = self.num_pages
        return {node: count / total for node, count in histogram.items()}

    def bytes_on_node(self, node_id: int) -> int:
        """Bytes resident on ``node_id`` (last page counted in full)."""
        pages = int(np.count_nonzero(self.page_nodes == node_id))
        return pages * self.page_bytes


def build_page_map(size_bytes: int, page_bytes: int = PAGE_4K,
                   *, node_for_page) -> np.ndarray:
    """Materialize ``node_for_page`` over every page of a buffer."""
    num_pages = -(-size_bytes // page_bytes)
    return np.fromiter((node_for_page(i) for i in range(num_pages)),
                       dtype=np.int16, count=num_pages)
