"""NUMA nodes and topologies.

The paper's systems expose up to three kinds of memory, all visible to
the OS as NUMA nodes:

* node 0 — local-socket DDR5 with CPU cores ("DDR5-L8"),
* node 1 — remote-socket DDR5 across UPI ("DDR5-R1" when restricted to a
  single channel),
* node 2 — the CXL Type-3 device, a *CPU-less* node (§3: "transparently
  exposed to the CPU and OS as a NUMA node having 16 GB memory without
  CPU cores").

Under SNC mode one socket further splits into four nodes (§5.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import ConfigError


class MemoryKind(enum.Enum):
    """What physically backs a NUMA node."""

    DRAM_LOCAL = "dram-local"
    DRAM_REMOTE = "dram-remote"
    CXL = "cxl"

    @property
    def is_cxl(self) -> bool:
        return self is MemoryKind.CXL


@dataclass(frozen=True)
class NumaNode:
    """One OS-visible memory node."""

    node_id: int
    kind: MemoryKind
    capacity_bytes: int
    cpus: int = 0
    label: str = ""

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ConfigError(f"node id must be non-negative: {self.node_id}")
        if self.capacity_bytes <= 0:
            raise ConfigError(f"node {self.node_id}: capacity must be positive")
        if self.cpus < 0:
            raise ConfigError(f"node {self.node_id}: negative cpu count")
        if self.kind.is_cxl and self.cpus:
            raise ConfigError(
                f"node {self.node_id}: a CXL Type-3 node is CPU-less (§3)")

    @property
    def is_cpuless(self) -> bool:
        return self.cpus == 0


@dataclass
class NumaTopology:
    """An indexed set of NUMA nodes with a relative-distance matrix.

    Distances follow the ACPI SLIT convention: the local node is 10 and
    other entries scale relative to it.  They are descriptive metadata —
    actual latencies come from :mod:`repro.perfmodel` — but experiments
    use them to pick "nearest DRAM node" style defaults.
    """

    nodes: list[NumaNode]
    distances: dict[tuple[int, int], int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        ids = [node.node_id for node in self.nodes]
        if len(set(ids)) != len(ids):
            raise ConfigError(f"duplicate node ids: {ids}")
        if not self.nodes:
            raise ConfigError("topology needs at least one node")
        if not self.distances:
            self.distances = self._default_distances()

    def _default_distances(self) -> dict[tuple[int, int], int]:
        table: dict[tuple[int, int], int] = {}
        for a in self.nodes:
            for b in self.nodes:
                if a.node_id == b.node_id:
                    table[(a.node_id, b.node_id)] = 10
                elif MemoryKind.CXL in (a.kind, b.kind):
                    # CXL nodes sit further than a socket hop, matching
                    # how SPR firmware reports them.
                    table[(a.node_id, b.node_id)] = 32
                else:
                    table[(a.node_id, b.node_id)] = 21
        return table

    def node(self, node_id: int) -> NumaNode:
        """Look up a node by id; raises ``ConfigError`` if absent."""
        for candidate in self.nodes:
            if candidate.node_id == node_id:
                return candidate
        raise ConfigError(f"no NUMA node with id {node_id}")

    def __contains__(self, node_id: int) -> bool:
        return any(node.node_id == node_id for node in self.nodes)

    def distance(self, src: int, dst: int) -> int:
        """SLIT distance between two nodes."""
        key = (src, dst)
        if key not in self.distances:
            raise ConfigError(f"no distance entry for {key}")
        return self.distances[key]

    @property
    def cpu_nodes(self) -> list[NumaNode]:
        """Nodes that have CPU cores attached."""
        return [node for node in self.nodes if not node.is_cpuless]

    @property
    def cxl_nodes(self) -> list[NumaNode]:
        """CPU-less CXL expander nodes."""
        return [node for node in self.nodes if node.kind.is_cxl]

    def nearest_dram(self, from_node: int) -> NumaNode:
        """The closest non-CXL node to ``from_node`` (itself if DRAM)."""
        dram = [node for node in self.nodes if not node.kind.is_cxl]
        if not dram:
            raise ConfigError("topology has no DRAM node")
        return min(dram, key=lambda n: self.distance(from_node, n.node_id))
