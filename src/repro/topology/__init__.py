"""NUMA topology, page allocation, and memory-placement policies.

This package models the pieces of Linux memory management the paper's
application studies rely on (§5):

* CPU-less NUMA node exposure of the CXL device (§3) —
  :class:`~repro.topology.numa.NumaNode` with ``cpus=0``;
* ``numa_alloc_onnode`` and friends —
  :class:`~repro.topology.allocator.PageAllocator`;
* ``numactl`` membind / preferred / interleave modes plus the N:M
  weighted-interleave kernel patch [30] —
  :mod:`repro.topology.interleave`.
"""

from .numa import MemoryKind, NumaNode, NumaTopology
from .pages import Allocation
from .allocator import PageAllocator
from .interleave import (
    Interleaved,
    Membind,
    PlacementPolicy,
    Preferred,
    WeightedInterleave,
)

__all__ = [
    "MemoryKind",
    "NumaNode",
    "NumaTopology",
    "Allocation",
    "PageAllocator",
    "PlacementPolicy",
    "Membind",
    "Preferred",
    "Interleaved",
    "WeightedInterleave",
]
