"""Memory-placement policies: the ``numactl`` modes plus weighted interleave.

The paper pins application memory with three standard modes (§5) and the
then-new N:M weighted-interleave kernel patch [30]:

    "we can allocate 20% of memory to CXL memory if we set the DRAM:CXL
    ratio to 4:1"

Each policy answers one question — *which node receives page i?* — via
:meth:`PlacementPolicy.node_for_page`.  Policies are deterministic in the
page index, so an allocation's layout is reproducible and exactly matches
the requested ratio over any full cycle of pages.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigError


class PlacementPolicy:
    """Deterministically maps page indices to NUMA node ids."""

    def node_for_page(self, page_index: int) -> int:
        """Node id that should back page ``page_index`` (0-based)."""
        raise NotImplementedError

    def fractions(self) -> dict[int, float]:
        """Long-run fraction of pages landing on each node."""
        raise NotImplementedError

    def nodes(self) -> list[int]:
        """All node ids this policy may place pages on, in priority order."""
        return sorted(self.fractions())


@dataclass(frozen=True)
class Membind(PlacementPolicy):
    """``numactl --membind``: every page on one node, hard binding."""

    node_id: int
    strict: bool = True

    def node_for_page(self, page_index: int) -> int:
        return self.node_id

    def fractions(self) -> dict[int, float]:
        return {self.node_id: 1.0}


@dataclass(frozen=True)
class Preferred(PlacementPolicy):
    """``numactl --preferred``: one node first, spill elsewhere when full.

    The spill decision is made by the allocator (which knows occupancy);
    the policy itself just ranks nodes.
    """

    node_id: int
    fallback_node_id: int

    def __post_init__(self) -> None:
        if self.node_id == self.fallback_node_id:
            raise ConfigError("preferred and fallback node must differ")

    def node_for_page(self, page_index: int) -> int:
        return self.node_id

    def fractions(self) -> dict[int, float]:
        # Nominal behavior (no spill): everything on the preferred node.
        return {self.node_id: 1.0, self.fallback_node_id: 0.0}

    def nodes(self) -> list[int]:
        return [self.node_id, self.fallback_node_id]


@dataclass(frozen=True)
class Interleaved(PlacementPolicy):
    """``numactl --interleave``: round-robin across a node set."""

    node_ids: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.node_ids:
            raise ConfigError("interleave needs at least one node")
        if len(set(self.node_ids)) != len(self.node_ids):
            raise ConfigError(f"duplicate nodes in interleave: {self.node_ids}")

    def node_for_page(self, page_index: int) -> int:
        return self.node_ids[page_index % len(self.node_ids)]

    def fractions(self) -> dict[int, float]:
        share = 1.0 / len(self.node_ids)
        return {node_id: share for node_id in self.node_ids}


@dataclass(frozen=True)
class WeightedInterleave(PlacementPolicy):
    """The N:M weighted-interleave patch [30].

    ``WeightedInterleave(((0, 4), (2, 1)))`` places pages in a repeating
    cycle of 4 pages on node 0 then 1 page on node 2 — the paper's
    "DRAM:CXL ratio 4:1" = 20 % CXL example.  Weights are positive
    integers; the cycle length is their sum.
    """

    weights: tuple[tuple[int, int], ...]   # ((node_id, weight), ...)

    def __post_init__(self) -> None:
        if not self.weights:
            raise ConfigError("weighted interleave needs at least one node")
        node_ids = [node_id for node_id, _ in self.weights]
        if len(set(node_ids)) != len(node_ids):
            raise ConfigError(f"duplicate nodes in weights: {node_ids}")
        for node_id, weight in self.weights:
            if weight <= 0 or not isinstance(weight, int):
                raise ConfigError(
                    f"weight for node {node_id} must be a positive integer, "
                    f"got {weight!r}")

    @classmethod
    def from_ratio(cls, dram_node: int, cxl_node: int, dram: int,
                   cxl: int) -> "WeightedInterleave":
        """Build the paper's ``DRAM:CXL = dram:cxl`` policy, reduced.

        ``from_ratio(0, 2, 30, 1)`` is the paper's 3.23 %-on-CXL setting;
        ``from_ratio(0, 2, 9, 1)`` is the 10 % setting; 4:1 gives 20 %.
        """
        if dram <= 0 or cxl <= 0:
            raise ConfigError("ratio terms must be positive")
        divisor = math.gcd(dram, cxl)
        return cls(((dram_node, dram // divisor), (cxl_node, cxl // divisor)))

    @classmethod
    def from_cxl_fraction(cls, dram_node: int, cxl_node: int,
                          fraction: float,
                          max_cycle: int = 1000) -> "WeightedInterleave":
        """Closest integer-ratio policy to a target CXL page fraction.

        Used by experiments specified as "50 % of memory on CXL" etc.
        Raises if the fraction is 0 or 1 — use :class:`Membind` for those.
        """
        if not 0.0 < fraction < 1.0:
            raise ConfigError(
                f"fraction must be strictly between 0 and 1, got {fraction}; "
                "use Membind for all-DRAM or all-CXL placement")
        best: tuple[int, int] | None = None
        best_err = math.inf
        for cycle in range(2, max_cycle + 1):
            cxl_pages = round(fraction * cycle)
            if not 0 < cxl_pages < cycle:
                continue
            err = abs(cxl_pages / cycle - fraction)
            if err < best_err - 1e-15:
                best_err = err
                best = (cycle - cxl_pages, cxl_pages)
            if best_err == 0.0:
                break
        assert best is not None
        return cls.from_ratio(dram_node, cxl_node, best[0], best[1])

    @property
    def cycle_length(self) -> int:
        return sum(weight for _, weight in self.weights)

    def node_for_page(self, page_index: int) -> int:
        slot = page_index % self.cycle_length
        for node_id, weight in self.weights:
            if slot < weight:
                return node_id
            slot -= weight
        raise AssertionError("unreachable: slot within cycle length")

    def fractions(self) -> dict[int, float]:
        cycle = self.cycle_length
        return {node_id: weight / cycle for node_id, weight in self.weights}

    def cxl_fraction(self, cxl_node: int) -> float:
        """Fraction of pages on ``cxl_node`` — the number quoted in §5."""
        return self.fractions().get(cxl_node, 0.0)
