"""Contention primitives for the DES layer.

These are deliberately callback-based (the :class:`~repro.sim.process.Process`
driver adapts them to generators) so that non-process code — e.g. the DSA
engine model — can also use them directly.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable

from ..errors import SimulationError


class Server:
    """A capacity-``n`` service station with a FIFO wait queue.

    Models anything that serves one request per slot: the single-threaded
    Redis event loop (capacity 1), an nginx worker pool, a DSA processing
    engine, or a memory-controller queue.
    """

    def __init__(self, capacity: int, name: str = "server") -> None:
        if capacity <= 0:
            raise SimulationError(f"server capacity must be positive: {capacity}")
        self.capacity = capacity
        self.name = name
        self._busy = 0
        self._waiters: deque[tuple[Callable[..., None], tuple]] = deque()
        # Peak queue depth, useful for sizing diagnostics in tests.
        self.max_queue_depth = 0

    @property
    def busy(self) -> int:
        """Slots currently held."""
        return self._busy

    @property
    def queue_depth(self) -> int:
        """Requests waiting for a slot."""
        return len(self._waiters)

    def acquire(self, granted: Callable[..., None], *args: Any) -> None:
        """Claim a slot; ``granted(*args)`` fires immediately or when one
        frees.  Extra ``args`` ride through the wait queue, so hot
        callers can pass a bound method plus state instead of
        allocating a closure per request."""
        if self._busy < self.capacity:
            self._busy += 1
            granted(*args)
        else:
            self._waiters.append((granted, args))
            self.max_queue_depth = max(self.max_queue_depth, len(self._waiters))

    def release(self) -> None:
        """Free one slot, handing it to the oldest waiter if any."""
        if self._busy <= 0:
            raise SimulationError(f"release() on idle server {self.name!r}")
        if self._waiters:
            # The slot transfers directly; _busy stays constant.
            granted, args = self._waiters.popleft()
            granted(*args)
        else:
            self._busy -= 1


class Store:
    """An unbounded FIFO buffer of items with blocking consumers."""

    def __init__(self, name: str = "store") -> None:
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Callable[[Any], None]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes the oldest blocked consumer if any."""
        if self._getters:
            getter = self._getters.popleft()
            getter(item)
        else:
            self._items.append(item)

    def get(self, consumer: Callable[[Any], None]) -> None:
        """Hand the oldest item to ``consumer``, blocking if empty."""
        if self._items:
            consumer(self._items.popleft())
        else:
            self._getters.append(consumer)


class SimEvent:
    """A one-shot broadcast event carrying an optional value."""

    def __init__(self, name: str = "event") -> None:
        self.name = name
        self.fired = False
        self.value: Any = None
        self._waiters: list[Callable[[Any], None]] = []

    def wait(self, waiter: Callable[[Any], None]) -> None:
        """Register ``waiter``; fires immediately if already signalled."""
        if self.fired:
            waiter(self.value)
        else:
            self._waiters.append(waiter)

    def signal(self, value: Any = None) -> None:
        """Fire the event.  Signalling twice is an error by design."""
        if self.fired:
            raise SimulationError(f"event {self.name!r} signalled twice")
        self.fired = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter(value)
