"""Generator-based processes on top of the event engine.

A process is a Python generator that ``yield``\\ s *command* objects; the
:class:`Process` driver interprets each command, parks the generator, and
resumes it (optionally with a value) when the command completes:

* :class:`Timeout` — advance simulated time;
* :class:`Acquire` / :class:`Release` — claim / free a slot of a
  :class:`~repro.sim.resources.Server`;
* :class:`Serve` — the fused acquire → sampled-service timeout →
  release visit, one command instead of three (hot-path form; the
  service time is sampled at grant time so results are byte-identical
  to the unfused sequence);
* :class:`Get` / :class:`Put` — consume / produce items of a
  :class:`~repro.sim.resources.Store`;
* :class:`WaitEvent` / :class:`Signal` — one-shot broadcast events;
* a :class:`Process` instance — wait for a child process to finish
  (its return value becomes the ``yield`` result).

This mirrors the SimPy programming model, reimplemented minimally so the
library has no runtime dependencies beyond numpy.
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from ..errors import SimulationError
from .engine import Engine
from .resources import Server, SimEvent, Store

Command = Any
ProcessBody = Generator[Command, Any, Any]


class Timeout:
    """Suspend the process for ``delay`` ns."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        self.delay = delay


class Acquire:
    """Wait for, then hold, one slot of a :class:`Server`."""

    __slots__ = ("server",)

    def __init__(self, server: Server) -> None:
        self.server = server


class Release:
    """Free one previously acquired slot of a :class:`Server`."""

    __slots__ = ("server",)

    def __init__(self, server: Server) -> None:
        self.server = server


class Get:
    """Wait for an item from a :class:`Store`; the item is yielded back."""

    __slots__ = ("store",)

    def __init__(self, store: Store) -> None:
        self.store = store


class Put:
    """Deposit an item into a :class:`Store` (never blocks)."""

    __slots__ = ("store", "item")

    def __init__(self, store: Store, item: Any) -> None:
        self.store = store
        self.item = item


class Serve:
    """Fused ``Acquire`` → ``Timeout`` → ``Release`` on one :class:`Server`.

    The hot-path visit pattern as a single command: wait for a slot,
    hold it for ``sampler(*args)`` ns — the service time is sampled
    lazily **at grant time**, exactly where the unfused three-command
    sequence samples it, so RNG draw order (and therefore every result
    byte) is unchanged — then release and resume the process with the
    sampled service time as the ``yield`` value.  One command object
    and one generator resume replace three of each.
    """

    __slots__ = ("server", "sampler", "args")

    def __init__(self, server: Server,
                 sampler: Callable[..., float], *args: Any) -> None:
        self.server = server
        self.sampler = sampler
        self.args = args


class WaitEvent:
    """Block until a :class:`SimEvent` is signalled."""

    __slots__ = ("event",)

    def __init__(self, event: SimEvent) -> None:
        self.event = event


class Signal:
    """Fire a :class:`SimEvent`, waking every waiter."""

    __slots__ = ("event", "value")

    def __init__(self, event: SimEvent, value: Any = None) -> None:
        self.event = event
        self.value = value


class Process:
    """Drives one generator to completion against an :class:`Engine`.

    The process starts at the current simulation time (scheduled as an
    immediate event).  ``proc.done`` / ``proc.result`` report completion;
    other processes may ``yield proc`` to join on it.
    """

    def __init__(self, engine: Engine, body: ProcessBody,
                 name: str = "proc", *, immediate: bool = False) -> None:
        self.engine = engine
        self.name = name
        self._body = body
        self.done = False
        self.result: Any = None
        self._joiners: list[Callable[[Any], None]] = []
        if immediate:
            # Start synchronously instead of via a zero-delay event —
            # for spawns made *inside* an event callback where the
            # extra start event is pure queue traffic.  The generator
            # runs to its first suspension before __init__ returns.
            self._resume(None)
        else:
            engine.schedule(0.0, self._resume, None)

    def __repr__(self) -> str:
        state = "done" if self.done else "running"
        return f"<Process {self.name} {state}>"

    # -- driver ------------------------------------------------------------

    def _resume(self, value: Any) -> None:
        try:
            command = self._body.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._dispatch(command)

    def _finish(self, result: Any) -> None:
        self.done = True
        self.result = result
        joiners, self._joiners = self._joiners, []
        for wake in joiners:
            wake(result)

    def _wake(self) -> None:
        self._resume(None)

    def _serve_granted(self, command: "Serve") -> None:
        service = command.sampler(*command.args)
        self.engine.schedule(service, self._serve_finish,
                             command.server, service)

    def _serve_finish(self, server: Server, service: float) -> None:
        server.release()
        self._resume(service)

    def _dispatch(self, command: Command) -> None:
        # Hot path: exact-type checks in rough frequency order, and
        # bound methods (plus engine-carried args) instead of a fresh
        # closure per dispatch.  The command types are plain structs;
        # anything unrecognized falls through to the isinstance chain
        # below, which keeps subclassed commands working.
        cls = type(command)
        if cls is Serve:
            command.server.acquire(self._serve_granted, command)
        elif cls is Timeout:
            self.engine.schedule(command.delay, self._resume, None)
        elif cls is Acquire:
            command.server.acquire(self._wake)
        elif cls is Release:
            command.server.release()
            self.engine.schedule(0.0, self._resume, None)
        elif cls is Get:
            command.store.get(self._resume)
        elif cls is Put:
            command.store.put(command.item)
            self.engine.schedule(0.0, self._resume, None)
        elif cls is WaitEvent:
            command.event.wait(self._resume)
        elif cls is Signal:
            command.event.signal(command.value)
            self.engine.schedule(0.0, self._resume, None)
        elif isinstance(command, Process):
            if command.done:
                self.engine.schedule(0.0, self._resume, command.result)
            else:
                command._joiners.append(self._resume)
        elif isinstance(command, Timeout):
            self.engine.schedule(command.delay, self._resume, None)
        elif isinstance(command, Serve):
            command.server.acquire(self._serve_granted, command)
        elif isinstance(command, Acquire):
            command.server.acquire(self._wake)
        elif isinstance(command, Release):
            command.server.release()
            self.engine.schedule(0.0, self._resume, None)
        elif isinstance(command, Get):
            command.store.get(self._resume)
        elif isinstance(command, Put):
            command.store.put(command.item)
            self.engine.schedule(0.0, self._resume, None)
        elif isinstance(command, WaitEvent):
            command.event.wait(self._resume)
        elif isinstance(command, Signal):
            command.event.signal(command.value)
            self.engine.schedule(0.0, self._resume, None)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unknown command: {command!r}")


def spawn(engine: Engine, body: ProcessBody, name: str = "proc",
          *, immediate: bool = False) -> Process:
    """Convenience constructor mirroring ``simpy.Environment.process``."""
    return Process(engine, body, name=name, immediate=immediate)
