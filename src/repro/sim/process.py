"""Generator-based processes on top of the event engine.

A process is a Python generator that ``yield``\\ s *command* objects; the
:class:`Process` driver interprets each command, parks the generator, and
resumes it (optionally with a value) when the command completes:

* :class:`Timeout` — advance simulated time;
* :class:`Acquire` / :class:`Release` — claim / free a slot of a
  :class:`~repro.sim.resources.Server`;
* :class:`Get` / :class:`Put` — consume / produce items of a
  :class:`~repro.sim.resources.Store`;
* :class:`WaitEvent` / :class:`Signal` — one-shot broadcast events;
* a :class:`Process` instance — wait for a child process to finish
  (its return value becomes the ``yield`` result).

This mirrors the SimPy programming model, reimplemented minimally so the
library has no runtime dependencies beyond numpy.
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from ..errors import SimulationError
from .engine import Engine
from .resources import Server, SimEvent, Store

Command = Any
ProcessBody = Generator[Command, Any, Any]


class Timeout:
    """Suspend the process for ``delay`` ns."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        self.delay = delay


class Acquire:
    """Wait for, then hold, one slot of a :class:`Server`."""

    __slots__ = ("server",)

    def __init__(self, server: Server) -> None:
        self.server = server


class Release:
    """Free one previously acquired slot of a :class:`Server`."""

    __slots__ = ("server",)

    def __init__(self, server: Server) -> None:
        self.server = server


class Get:
    """Wait for an item from a :class:`Store`; the item is yielded back."""

    __slots__ = ("store",)

    def __init__(self, store: Store) -> None:
        self.store = store


class Put:
    """Deposit an item into a :class:`Store` (never blocks)."""

    __slots__ = ("store", "item")

    def __init__(self, store: Store, item: Any) -> None:
        self.store = store
        self.item = item


class WaitEvent:
    """Block until a :class:`SimEvent` is signalled."""

    __slots__ = ("event",)

    def __init__(self, event: SimEvent) -> None:
        self.event = event


class Signal:
    """Fire a :class:`SimEvent`, waking every waiter."""

    __slots__ = ("event", "value")

    def __init__(self, event: SimEvent, value: Any = None) -> None:
        self.event = event
        self.value = value


class Process:
    """Drives one generator to completion against an :class:`Engine`.

    The process starts at the current simulation time (scheduled as an
    immediate event).  ``proc.done`` / ``proc.result`` report completion;
    other processes may ``yield proc`` to join on it.
    """

    def __init__(self, engine: Engine, body: ProcessBody,
                 name: str = "proc") -> None:
        self.engine = engine
        self.name = name
        self._body = body
        self.done = False
        self.result: Any = None
        self._joiners: list[Callable[[Any], None]] = []
        engine.schedule(0.0, lambda: self._resume(None))

    def __repr__(self) -> str:
        state = "done" if self.done else "running"
        return f"<Process {self.name} {state}>"

    # -- driver ------------------------------------------------------------

    def _resume(self, value: Any) -> None:
        try:
            command = self._body.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._dispatch(command)

    def _finish(self, result: Any) -> None:
        self.done = True
        self.result = result
        joiners, self._joiners = self._joiners, []
        for wake in joiners:
            wake(result)

    def _dispatch(self, command: Command) -> None:
        if isinstance(command, Timeout):
            self.engine.schedule(command.delay, lambda: self._resume(None))
        elif isinstance(command, Acquire):
            command.server.acquire(lambda: self._resume(None))
        elif isinstance(command, Release):
            command.server.release()
            self.engine.schedule(0.0, lambda: self._resume(None))
        elif isinstance(command, Get):
            command.store.get(lambda item: self._resume(item))
        elif isinstance(command, Put):
            command.store.put(command.item)
            self.engine.schedule(0.0, lambda: self._resume(None))
        elif isinstance(command, WaitEvent):
            command.event.wait(lambda value: self._resume(value))
        elif isinstance(command, Signal):
            command.event.signal(command.value)
            self.engine.schedule(0.0, lambda: self._resume(None))
        elif isinstance(command, Process):
            if command.done:
                self.engine.schedule(
                    0.0, lambda: self._resume(command.result))
            else:
                command._joiners.append(self._resume)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unknown command: {command!r}")


def spawn(engine: Engine, body: ProcessBody, name: str = "proc") -> Process:
    """Convenience constructor mirroring ``simpy.Environment.process``."""
    return Process(engine, body, name=name)
