"""The discrete-event engine: a clock plus a time-ordered callback heap.

Design notes
------------
* Time is a ``float`` in nanoseconds, consistent with :mod:`repro.units`.
* Events scheduled for the same instant fire in scheduling order (a
  monotonically increasing sequence number breaks ties), which makes runs
  fully deterministic for a fixed seed.
* The engine knows nothing about processes or resources; those layers
  (:mod:`repro.sim.process`, :mod:`repro.sim.resources`) are built on the
  two primitives here: :meth:`Engine.schedule` and :meth:`Engine.cancel`.

Hot-path layout
---------------
The heap holds ``(time, seq, handle)`` tuples rather than the handles
themselves, so ``heapq`` orders entries with C-level tuple comparison
(``time`` then ``seq``) instead of calling back into a Python
``__lt__`` — on engine-bound models this removes millions of
interpreter round-trips per run.  Cancellation stays a tombstone flag
on the handle; tombstones are skipped exactly once, at the heap top,
by :meth:`step`.  :meth:`run` drives :meth:`step` with its ``until``
bound pushed down, so each event costs a single bounded heap
inspection (the historical ``peek()`` + ``step()`` pair scanned the
tombstoned heap top twice per event).

Callbacks can carry positional arguments through the event
(``schedule(delay, fn, a, b)``), which lets hot models pass a bound
method plus its arguments instead of allocating a fresh closure per
request.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable

from ..errors import SimulationError
from ..telemetry import NULL_TELEMETRY, Telemetry


class _Scheduled:
    """A handle for one scheduled callback; cancellation is a tombstone."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., Any],
                 args: tuple = ()) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def __lt__(self, other: "_Scheduled") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Engine:
    """Event loop with a nanosecond clock.

    Example
    -------
    >>> eng = Engine()
    >>> fired = []
    >>> _ = eng.schedule(10.0, lambda: fired.append(eng.now))
    >>> eng.run()
    >>> fired
    [10.0]
    """

    def __init__(self, *, telemetry: Telemetry | None = None) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, _Scheduled]] = []
        self._seq = itertools.count()
        self._running = False
        self._processed = 0
        self.telemetry = telemetry if telemetry is not None \
            else NULL_TELEMETRY

    @property
    def now(self) -> float:
        """Current simulation time in ns."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (for diagnostics)."""
        return self._processed

    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any) -> _Scheduled:
        """Run ``callback(*args)`` at ``now + delay``; returns a
        cancellable handle."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: delay={delay}")
        time = self._now + delay
        seq = next(self._seq)
        handle = _Scheduled(time, seq, callback, args)
        heapq.heappush(self._heap, (time, seq, handle))
        return handle

    def schedule_at(self, time: float, callback: Callable[..., Any],
                    *args: Any) -> _Scheduled:
        """Run ``callback(*args)`` at absolute time ``time``."""
        return self.schedule(time - self._now, callback, *args)

    def cancel(self, handle: _Scheduled) -> None:
        """Cancel a previously scheduled callback (idempotent)."""
        handle.cancelled = True

    def peek(self) -> float | None:
        """Time of the next pending event, or ``None`` if the heap is empty."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
        return heap[0][0] if heap else None

    def step(self, until: float | None = None) -> bool:
        """Execute the next event in one bounded heap scan.

        Returns ``False`` when nothing is pending — or, with ``until``
        given, when the next live event lies strictly after ``until``
        (the event stays queued; the clock is not advanced).
        """
        heap = self._heap
        while heap:
            head = heap[0]
            handle = head[2]
            if handle.cancelled:
                heapq.heappop(heap)
                continue
            time = head[0]
            if until is not None and time > until:
                return False
            heapq.heappop(heap)
            if time < self._now:
                raise SimulationError(
                    f"event at t={time} before now={self._now}")
            self._now = time
            self._processed += 1
            handle.callback(*handle.args)
            return True
        return False

    def run(self, until: float | None = None,
            max_events: int | None = None) -> None:
        """Drain the event heap.

        ``until`` stops the clock at an absolute time (events strictly
        after it stay pending and the clock is left *at* ``until``).
        ``max_events`` bounds the number of callbacks — a guard against
        accidentally non-terminating models.
        """
        if self._running:
            raise SimulationError("Engine.run() is not reentrant")
        self._running = True
        run_start = self._now
        step = self.step
        try:
            if max_events is None:
                while step(until):
                    pass
            else:
                executed = 0
                while True:
                    if executed >= max_events:
                        raise SimulationError(
                            f"exceeded max_events={max_events}; "
                            "model may not terminate")
                    if not step(until):
                        break
                    executed += 1
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
            if self.telemetry.enabled:
                self.telemetry.tracer.complete(
                    "sim.engine", "run", run_start,
                    self._now - run_start, events=self._processed)
            registry = self.telemetry.registry
            registry.gauge("sim.engine.events_processed").set(
                self._processed)
            registry.gauge("sim.engine.now_ns").set(self._now)
