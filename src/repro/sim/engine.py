"""The discrete-event engine: a clock plus a time-ordered callback heap.

Design notes
------------
* Time is a ``float`` in nanoseconds, consistent with :mod:`repro.units`.
* Events scheduled for the same instant fire in scheduling order (a
  monotonically increasing sequence number breaks ties), which makes runs
  fully deterministic for a fixed seed.
* The engine knows nothing about processes or resources; those layers
  (:mod:`repro.sim.process`, :mod:`repro.sim.resources`) are built on the
  two primitives here: :meth:`Engine.schedule` and :meth:`Engine.cancel`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable

from ..errors import SimulationError
from ..telemetry import NULL_TELEMETRY, Telemetry


class _Scheduled:
    """A handle for one scheduled callback; cancellation is a tombstone."""

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: float, seq: int,
                 callback: Callable[[], Any]) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def __lt__(self, other: "_Scheduled") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Engine:
    """Event loop with a nanosecond clock.

    Example
    -------
    >>> eng = Engine()
    >>> fired = []
    >>> _ = eng.schedule(10.0, lambda: fired.append(eng.now))
    >>> eng.run()
    >>> fired
    [10.0]
    """

    def __init__(self, *, telemetry: Telemetry | None = None) -> None:
        self._now = 0.0
        self._heap: list[_Scheduled] = []
        self._seq = itertools.count()
        self._running = False
        self._processed = 0
        self.telemetry = telemetry if telemetry is not None \
            else NULL_TELEMETRY

    @property
    def now(self) -> float:
        """Current simulation time in ns."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (for diagnostics)."""
        return self._processed

    def schedule(self, delay: float, callback: Callable[[], Any]) -> _Scheduled:
        """Run ``callback`` at ``now + delay``; returns a cancellable handle."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: delay={delay}")
        handle = _Scheduled(self._now + delay, next(self._seq), callback)
        heapq.heappush(self._heap, handle)
        return handle

    def schedule_at(self, time: float,
                    callback: Callable[[], Any]) -> _Scheduled:
        """Run ``callback`` at absolute time ``time``."""
        return self.schedule(time - self._now, callback)

    def cancel(self, handle: _Scheduled) -> None:
        """Cancel a previously scheduled callback (idempotent)."""
        handle.cancelled = True

    def peek(self) -> float | None:
        """Time of the next pending event, or ``None`` if the heap is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Execute the next event.  Returns False if nothing is pending."""
        while self._heap:
            handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            if handle.time < self._now:
                raise SimulationError(
                    f"event at t={handle.time} before now={self._now}")
            self._now = handle.time
            self._processed += 1
            handle.callback()
            return True
        return False

    def run(self, until: float | None = None,
            max_events: int | None = None) -> None:
        """Drain the event heap.

        ``until`` stops the clock at an absolute time (events strictly
        after it stay pending and the clock is left *at* ``until``).
        ``max_events`` bounds the number of callbacks — a guard against
        accidentally non-terminating models.
        """
        if self._running:
            raise SimulationError("Engine.run() is not reentrant")
        self._running = True
        run_start = self._now
        try:
            executed = 0
            while True:
                if max_events is not None and executed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; "
                        "model may not terminate")
                next_time = self.peek()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = until
                    break
                self.step()
                executed += 1
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
            if self.telemetry.enabled:
                self.telemetry.tracer.complete(
                    "sim.engine", "run", run_start,
                    self._now - run_start, events=self._processed)
            registry = self.telemetry.registry
            registry.gauge("sim.engine.events_processed").set(
                self._processed)
            registry.gauge("sim.engine.now_ns").set(self._now)
