"""The discrete-event engine: a clock plus a time-ordered event queue.

Design notes
------------
* Time is a ``float`` in nanoseconds, consistent with :mod:`repro.units`.
* Events scheduled for the same instant fire in scheduling order (a
  monotonically increasing sequence number breaks ties), which makes runs
  fully deterministic for a fixed seed.
* The engine knows nothing about processes or resources; those layers
  (:mod:`repro.sim.process`, :mod:`repro.sim.resources`) are built on the
  two primitives here: :meth:`Engine.schedule` and :meth:`Engine.cancel`.

Hot-path layout
---------------
Two scheduler implementations share the same ``(time, seq)`` total
order, so every model produces byte-identical results under either;
``REPRO_SIM_SCHEDULER`` selects one (``calendar`` is the default,
``heap`` is the legacy fallback):

* **calendar** — a two-level run queue in the calendar-queue family.
  The *current run* is a sorted list walked by index; arrivals that
  land inside the run's time span are ``bisect.insort``-ed after the
  walk cursor (a C-level binary search + memmove), while arrivals
  beyond it are appended, unsorted, to a *future* list.  When the
  current run is exhausted the future list is sorted wholesale (C
  Timsort over ``(time, seq, handle)`` tuples, near-linear on the
  mostly-ordered batches models actually generate) and swapped in as
  the next run.  :meth:`run` drains the current run in one interpreter
  loop — no per-event method call, no heap sift — which is where the
  batched ``step_until`` win comes from.
* **heap** — the historical binary heap of ``(time, seq, handle)``
  tuples; ``heapq`` orders entries with C-level tuple comparison.

Cancellation is a tombstone flag on the handle in both modes;
tombstones are skipped exactly once, at the queue head.  Callbacks can
carry positional arguments through the event
(``schedule(delay, fn, a, b)``), which lets hot models pass a bound
method plus its arguments instead of allocating a fresh closure per
request.

The active mode participates in the experiment cache key via
:func:`scheduling_fingerprint`, so results computed under one
scheduler are never served for the other (docs/PERFORMANCE.md).
"""

from __future__ import annotations

import heapq
import itertools
import os
from bisect import insort
from typing import Any, Callable

from ..errors import SimulationError
from ..telemetry import NULL_TELEMETRY, Telemetry

_MODE_ENV = "REPRO_SIM_SCHEDULER"
_MODES = ("calendar", "heap")

# Compact the executed prefix of the current run once the walk cursor
# passes this many entries; keeps long prescheduled runs from pinning
# their whole history while staying amortized O(1) per event.
_COMPACT_THRESHOLD = 65536


def scheduler_mode() -> str:
    """The process-wide scheduler mode (``calendar`` unless overridden).

    Set ``REPRO_SIM_SCHEDULER=heap`` to fall back to the legacy binary
    heap — useful for bisecting a suspected scheduler bug, and pinned
    equivalent by ``tests/sim/test_engine.py``.
    """
    mode = os.environ.get(_MODE_ENV, "").strip().lower() or "calendar"
    if mode not in _MODES:
        raise SimulationError(
            f"unknown {_MODE_ENV}={mode!r}; expected one of {_MODES}")
    return mode


def scheduling_fingerprint() -> str:
    """Cache-key component naming the active scheduler implementation."""
    return f"sim-scheduler:{scheduler_mode()}"


class _Scheduled:
    """A handle for one scheduled callback; cancellation is a tombstone."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., Any],
                 args: tuple = ()) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def __lt__(self, other: "_Scheduled") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Engine:
    """Event loop with a nanosecond clock.

    Example
    -------
    >>> eng = Engine()
    >>> fired = []
    >>> _ = eng.schedule(10.0, lambda: fired.append(eng.now))
    >>> eng.run()
    >>> fired
    [10.0]
    """

    def __init__(self, *, telemetry: Telemetry | None = None,
                 scheduler: str | None = None) -> None:
        mode = scheduler if scheduler is not None else scheduler_mode()
        if mode not in _MODES:
            raise SimulationError(
                f"unknown scheduler={mode!r}; expected one of {_MODES}")
        self._mode = mode
        self._calendar = mode == "calendar"
        self._now = 0.0
        self._seq = itertools.count()
        self._running = False
        self._processed = 0
        # heap mode: one binary heap.
        self._heap: list[tuple[float, int, _Scheduled]] = []
        # calendar mode: sorted current run walked by ``_pos`` + an
        # unsorted future list.  Every future entry's time is strictly
        # greater than ``_run_max`` (the current run's last time), so
        # draining the run before sorting the future preserves the
        # global (time, seq) order.
        self._run_list: list[tuple[float, int, _Scheduled]] = []
        self._pos = 0
        self._future: list[tuple[float, int, _Scheduled]] = []
        self._run_max = float("-inf")
        self.telemetry = telemetry if telemetry is not None \
            else NULL_TELEMETRY

    @property
    def now(self) -> float:
        """Current simulation time in ns."""
        return self._now

    @property
    def scheduler(self) -> str:
        """The scheduler implementation this engine was built with."""
        return self._mode

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (for diagnostics)."""
        return self._processed

    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any) -> _Scheduled:
        """Run ``callback(*args)`` at ``now + delay``; returns a
        cancellable handle."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: delay={delay}")
        time = self._now + delay
        seq = next(self._seq)
        handle = _Scheduled(time, seq, callback, args)
        if self._calendar:
            if time > self._run_max:
                self._future.append((time, seq, handle))
            else:
                insort(self._run_list, (time, seq, handle), self._pos)
        else:
            heapq.heappush(self._heap, (time, seq, handle))
        return handle

    def schedule_at(self, time: float, callback: Callable[..., Any],
                    *args: Any) -> _Scheduled:
        """Run ``callback(*args)`` at absolute time ``time``."""
        return self.schedule(time - self._now, callback, *args)

    def cancel(self, handle: _Scheduled) -> None:
        """Cancel a previously scheduled callback (idempotent)."""
        handle.cancelled = True

    def _advance(self) -> bool:
        """Position the walk cursor at the next live entry.

        Skips tombstones and, when the current run is exhausted, sorts
        the future list in as the next run.  Returns ``False`` when
        nothing is pending.
        """
        run = self._run_list
        pos = self._pos
        n = len(run)
        while True:
            while pos < n:
                if run[pos][2].cancelled:
                    pos += 1
                    continue
                self._pos = pos
                return True
            if not self._future:
                self._pos = pos
                return False
            future = self._future
            future.sort()
            self._run_list = run = future
            self._future = []
            self._run_max = run[-1][0]
            self._pos = pos = 0
            n = len(run)

    def peek(self) -> float | None:
        """Time of the next pending event, or ``None`` if none is queued."""
        if self._calendar:
            if not self._advance():
                return None
            return self._run_list[self._pos][0]
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
        return heap[0][0] if heap else None

    def step(self, until: float | None = None) -> bool:
        """Execute the next event in one bounded queue scan.

        Returns ``False`` when nothing is pending — or, with ``until``
        given, when the next live event lies strictly after ``until``
        (the event stays queued; the clock is not advanced).
        """
        if self._calendar:
            if not self._advance():
                return False
            pos = self._pos
            time, _seq, handle = self._run_list[pos]
            if until is not None and time > until:
                return False
            self._pos = pos + 1
            if time < self._now:
                raise SimulationError(
                    f"event at t={time} before now={self._now}")
            self._now = time
            self._processed += 1
            handle.callback(*handle.args)
            return True
        heap = self._heap
        while heap:
            head = heap[0]
            handle = head[2]
            if handle.cancelled:
                heapq.heappop(heap)
                continue
            time = head[0]
            if until is not None and time > until:
                return False
            heapq.heappop(heap)
            if time < self._now:
                raise SimulationError(
                    f"event at t={time} before now={self._now}")
            self._now = time
            self._processed += 1
            handle.callback(*handle.args)
            return True
        return False

    def _drain(self, until: float | None,
               max_events: int | None) -> int:
        """Batched calendar-mode drain: one interpreter loop per run.

        Executes live events in ``(time, seq)`` order until the queue
        empties or the next event lies strictly after ``until``.
        Returns the number of callbacks executed.
        """
        executed = 0
        run = self._run_list
        pos = self._pos
        future = self._future
        now = self._now
        while True:
            if max_events is not None and executed >= max_events:
                self._pos = pos
                raise SimulationError(
                    f"exceeded max_events={max_events}; "
                    "model may not terminate")
            if pos >= len(run):
                if not future:
                    self._pos = pos
                    return executed
                future.sort()
                self._run_list = run = future
                self._future = future = []
                self._run_max = run[-1][0]
                pos = 0
                continue
            entry = run[pos]
            handle = entry[2]
            if handle.cancelled:
                pos += 1
                continue
            time = entry[0]
            if until is not None and time > until:
                self._pos = pos
                return executed
            pos += 1
            if pos >= _COMPACT_THRESHOLD:
                del run[:pos]
                pos = 0
            self._pos = pos
            if time < now:
                raise SimulationError(
                    f"event at t={time} before now={now}")
            self._now = now = time
            self._processed += 1
            executed += 1
            handle.callback(*handle.args)
            # A callback may have stepped the engine itself; re-sync
            # the cursor (schedule() insorts after it, so entries
            # before ``pos`` are never displaced).
            pos = self._pos
            now = self._now

    def step_until(self, until: float) -> int:
        """Execute every pending event with ``time <= until``.

        The batched counterpart of repeated :meth:`step` calls: the
        whole drain runs in one interpreter loop (calendar mode).
        Unlike :meth:`run` the clock is left at the last executed
        event, not advanced to ``until``.  Returns the number of
        callbacks executed.
        """
        if self._running:
            raise SimulationError("Engine.step_until() is not reentrant")
        self._running = True
        try:
            if self._calendar:
                return self._drain(until, None)
            executed = 0
            while self.step(until):
                executed += 1
            return executed
        finally:
            self._running = False

    def run(self, until: float | None = None,
            max_events: int | None = None) -> None:
        """Drain the event queue.

        ``until`` stops the clock at an absolute time (events strictly
        after it stay pending and the clock is left *at* ``until``).
        ``max_events`` bounds the number of callbacks — a guard against
        accidentally non-terminating models.
        """
        if self._running:
            raise SimulationError("Engine.run() is not reentrant")
        self._running = True
        run_start = self._now
        try:
            if self._calendar:
                self._drain(until, max_events)
            elif max_events is None:
                step = self.step
                while step(until):
                    pass
            else:
                step = self.step
                executed = 0
                while True:
                    if executed >= max_events:
                        raise SimulationError(
                            f"exceeded max_events={max_events}; "
                            "model may not terminate")
                    if not step(until):
                        break
                    executed += 1
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
            if self.telemetry.enabled:
                self.telemetry.tracer.complete(
                    "sim.engine", "run", run_start,
                    self._now - run_start, events=self._processed)
            registry = self.telemetry.registry
            registry.gauge("sim.engine.events_processed").set(
                self._processed)
            registry.gauge("sim.engine.now_ns").set(self._now)
