"""Measurement utilities: percentile estimation and rate metering.

The paper reports p99 tail latency (Figs 6, 10) and sustained bandwidth
over fixed intervals (§4.3 — "the main program calculates the average
bandwidth for a fixed interval").  Both measurement styles live here.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..telemetry.metrics import Histogram, interpolate_percentile


def percentile(samples: list[float], pct: float) -> float:
    """Linear-interpolated percentile, ``pct`` in [0, 100].

    Matches ``numpy.percentile(..., method='linear')`` without requiring
    a numpy array.  One-shot convenience over an unsorted list; code
    that takes repeated percentiles of a growing sample set should use
    :class:`LatencyRecorder` (or :class:`repro.telemetry.Histogram`
    directly), whose sorted cache avoids the re-sort per call.
    """
    if not samples:
        raise ValueError("percentile of an empty sample set")
    return interpolate_percentile(sorted(samples), pct)


class LatencyRecorder:
    """Accumulates latency samples and reports summary statistics.

    A thin guard over :class:`repro.telemetry.Histogram` — one shared
    percentile implementation (with its record-invalidated sorted
    cache), so the DES stat path and the telemetry snapshot path cannot
    drift.
    """

    def __init__(self, name: str = "latency", *,
                 histogram: Histogram | None = None) -> None:
        self.name = name
        self._hist = histogram if histogram is not None \
            else Histogram(name)

    def record(self, latency_ns: float) -> None:
        """Add one sample; negative latencies indicate a model bug."""
        if latency_ns < 0:
            raise ValueError(f"negative latency recorded: {latency_ns}")
        self._hist.record(latency_ns)

    def __len__(self) -> int:
        return len(self._hist)

    @property
    def histogram(self) -> Histogram:
        """The backing telemetry histogram (bucket counts + percentiles)."""
        return self._hist

    @property
    def samples(self) -> list[float]:
        """A copy of the raw samples (ns)."""
        return self._hist.samples

    def mean(self) -> float:
        return self._hist.mean()

    def p(self, pct: float) -> float:
        """Percentile of the recorded samples (cached-sort path)."""
        return self._hist.percentile(pct)

    def p50(self) -> float:
        return self.p(50.0)

    def p99(self) -> float:
        """The paper's headline tail metric."""
        return self.p(99.0)

    def max(self) -> float:
        return self._hist.max()

    def summary(self) -> dict[str, float]:
        """Mean / p50 / p99 / max in one dict, for table rendering."""
        return {
            "count": float(len(self._hist)),
            "mean_ns": self.mean(),
            "p50_ns": self.p50(),
            "p99_ns": self.p99(),
            "max_ns": self.max(),
        }


@dataclass
class RateMeter:
    """Counts completed bytes/operations over a simulated window."""

    name: str = "rate"
    bytes_total: float = 0.0
    ops_total: int = 0
    window_start_ns: float = 0.0

    def add(self, nbytes: float, ops: int = 1) -> None:
        """Record ``nbytes`` moved by ``ops`` completed operations."""
        if nbytes < 0 or ops < 0:
            raise ValueError("rate meter additions must be non-negative")
        self.bytes_total += nbytes
        self.ops_total += ops

    def bandwidth(self, now_ns: float) -> float:
        """Average B/s since ``window_start_ns``."""
        elapsed = now_ns - self.window_start_ns
        if elapsed <= 0:
            raise ValueError("rate window has zero or negative length")
        return self.bytes_total / (elapsed / 1e9)

    def throughput(self, now_ns: float) -> float:
        """Average operations/s since ``window_start_ns``."""
        elapsed = now_ns - self.window_start_ns
        if elapsed <= 0:
            raise ValueError("rate window has zero or negative length")
        return self.ops_total / (elapsed / 1e9)

    def reset(self, now_ns: float) -> None:
        """Start a fresh measurement window at ``now_ns``."""
        self.bytes_total = 0.0
        self.ops_total = 0
        self.window_start_ns = now_ns


def window_width(end_ns: float, count: int) -> float:
    """Width of each of ``count`` equal windows covering [0, end_ns).

    Degenerate spans (``end_ns <= 0`` — e.g. a single instantaneous
    event at t=0) get a 1 ns width so callers never divide by zero.
    Used by the fixed-interval measurement style of §4.3 and by the
    span layer's time-windowed series
    (:mod:`repro.telemetry.spans`).
    """
    if count <= 0:
        raise ValueError(f"window count must be positive, got {count}")
    return end_ns / count if end_ns > 0.0 else 1.0


def window_slot(ts_ns: float, width_ns: float, count: int) -> int:
    """Index of the window containing ``ts_ns``.

    The final window is closed on the right: a timestamp exactly at
    (or past, from float rounding) the end of the covered span lands
    in window ``count - 1`` rather than out of range.
    """
    if count <= 0:
        raise ValueError(f"window count must be positive, got {count}")
    return min(count - 1, int(ts_ns // width_ns))
