"""Deterministic named random-number substreams.

Every stochastic component (YCSB key pickers, Poisson arrival processes,
service-time jitter) draws from its own named substream derived from a
single root seed.  Two benefits:

* experiments are exactly reproducible from one integer seed, and
* adding a new random consumer does not perturb the draws seen by
  existing consumers (no shared-stream coupling).
"""

from __future__ import annotations

import hashlib

import numpy as np

DEFAULT_SEED = 0x5EED_C0DE


def substream(name: str, seed: int = DEFAULT_SEED) -> np.random.Generator:
    """A :class:`numpy.random.Generator` keyed by ``(seed, name)``.

    The same ``(seed, name)`` pair always yields an identical stream;
    distinct names yield statistically independent streams (derived via
    SHA-256, then fed to PCG64).
    """
    if not name:
        raise ValueError("substream name must be non-empty")
    digest = hashlib.sha256(f"{seed}:{name}".encode()).digest()
    child_seed = int.from_bytes(digest[:8], "little")
    return np.random.Generator(np.random.PCG64(child_seed))


def decision_uniform(seed: int, *key: object) -> float:
    """A uniform draw in ``[0, 1)`` addressed by ``(seed, *key)``.

    Counter-based (stateless) randomness: the value depends only on the
    key, never on how many draws happened before it.  Two properties
    follow that sequential generators cannot give:

    * **order independence** — a parallel run that visits decision
      points in a different order sees exactly the serial run's values
      (the fault-determinism contract, docs/FAULTS.md);
    * **coupled thresholds** — comparing the same draw against two
      rates ``p1 < p2`` makes the ``p1`` event set a subset of the
      ``p2`` set, so raising a fault rate only ever *adds* faults
      (monotone degradation, no random crossover).
    """
    material = ":".join(str(part) for part in (seed, *key))
    digest = hashlib.blake2b(material.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "little") / 2.0 ** 64
