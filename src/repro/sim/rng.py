"""Deterministic named random-number substreams.

Every stochastic component (YCSB key pickers, Poisson arrival processes,
service-time jitter) draws from its own named substream derived from a
single root seed.  Two benefits:

* experiments are exactly reproducible from one integer seed, and
* adding a new random consumer does not perturb the draws seen by
  existing consumers (no shared-stream coupling).
"""

from __future__ import annotations

import hashlib

import numpy as np

DEFAULT_SEED = 0x5EED_C0DE


def substream(name: str, seed: int = DEFAULT_SEED) -> np.random.Generator:
    """A :class:`numpy.random.Generator` keyed by ``(seed, name)``.

    The same ``(seed, name)`` pair always yields an identical stream;
    distinct names yield statistically independent streams (derived via
    SHA-256, then fed to PCG64).
    """
    if not name:
        raise ValueError("substream name must be non-empty")
    digest = hashlib.sha256(f"{seed}:{name}".encode()).digest()
    child_seed = int.from_bytes(digest[:8], "little")
    return np.random.Generator(np.random.PCG64(child_seed))
