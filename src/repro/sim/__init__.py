"""A small discrete-event simulation (DES) kernel.

The engine drives the request-level application studies (Redis-YCSB,
DeathStarBench) and the DSA offload pipeline, where *tail* latency — not
just the mean — is the result the paper reports.

Public surface:

* :class:`~repro.sim.engine.Engine` — the event loop and clock (ns).
* :class:`~repro.sim.process.Process` and the command objects
  (:class:`~repro.sim.process.Timeout`, …) — generator-based processes.
* :class:`~repro.sim.resources.Server`,
  :class:`~repro.sim.resources.Store` — contention primitives.
* :class:`~repro.sim.stats.LatencyRecorder`,
  :class:`~repro.sim.stats.RateMeter` — measurement.
* :func:`~repro.sim.rng.substream` — deterministic named RNG streams.
"""

from .engine import Engine
from .process import Process, Timeout, Acquire, Release, Serve, Get, Put, WaitEvent, Signal
from .resources import Server, Store, SimEvent
from .stats import (
    LatencyRecorder,
    RateMeter,
    percentile,
    window_slot,
    window_width,
)
from .rng import substream

__all__ = [
    "Engine",
    "Process",
    "Timeout",
    "Acquire",
    "Release",
    "Serve",
    "Get",
    "Put",
    "WaitEvent",
    "Signal",
    "Server",
    "Store",
    "SimEvent",
    "LatencyRecorder",
    "RateMeter",
    "percentile",
    "window_slot",
    "window_width",
    "substream",
]
