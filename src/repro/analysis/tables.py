"""Fixed-width text tables — the library's figure output format.

The benchmarks regenerate the paper's figures as *tables of the plotted
values* (one row per x, one column per series), which diff cleanly and
need no plotting dependency.
"""

from __future__ import annotations

from ..errors import ExperimentError
from .series import Series


def format_table(headers: list[str], rows: list[list[str]],
                 title: str | None = None) -> str:
    """Render a left-padded fixed-width table."""
    if any(len(row) != len(headers) for row in rows):
        raise ExperimentError("every row must match the header width")
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append("  ".join(cell.rjust(w)
                               for cell, w in zip(row, widths)))
    return "\n".join(lines)


def series_table(series_list: list[Series], *, title: str | None = None,
                 x_format: str = "{:g}", y_format: str = "{:.1f}") -> str:
    """Tabulate several series sharing one x axis (a figure's panel)."""
    if not series_list:
        raise ExperimentError("no series to tabulate")
    x_axis = series_list[0].x
    for series in series_list[1:]:
        if series.x != x_axis:
            raise ExperimentError(
                f"series {series.name!r} has a different x axis than "
                f"{series_list[0].name!r}")
    headers = [series_list[0].x_label] + [s.name for s in series_list]
    rows = []
    for index, x in enumerate(x_axis):
        row = [x_format.format(x)]
        row += [y_format.format(s.y[index]) for s in series_list]
        rows.append(row)
    return format_table(headers, rows, title=title)
