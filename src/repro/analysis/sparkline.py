"""Unicode sparklines for compact series rendering in CLI output.

`▁▂▃▄▅▆▇█` bars give a one-line visual of each curve next to its table —
useful when a report holds nine panels of Fig-5 grids and the reader
wants shape at a glance.
"""

from __future__ import annotations

from ..errors import ExperimentError
from .series import Series

BARS = "▁▂▃▄▅▆▇█"


def sparkline(values: list[float], *, lo: float | None = None,
              hi: float | None = None) -> str:
    """Render values as a bar-per-point string.

    ``lo``/``hi`` pin the scale (e.g. zero-based for bandwidths); by
    default the scale spans the data.  A flat series renders mid-height.
    """
    if not values:
        raise ExperimentError("cannot sparkline an empty series")
    low = min(values) if lo is None else lo
    high = max(values) if hi is None else hi
    if high < low:
        raise ExperimentError(f"hi < lo: {high} < {low}")
    span = high - low
    if span == 0:
        return BARS[len(BARS) // 2] * len(values)
    cells = []
    for value in values:
        clamped = min(max(value, low), high)
        index = int((clamped - low) / span * (len(BARS) - 1))
        cells.append(BARS[index])
    return "".join(cells)


def trend(values: list[float], *, width: int = 24) -> str:
    """A sparkline of the last ``width`` points, tolerant of thin data.

    The ``repro-report`` trend-cell renderer: an empty history renders
    as a placeholder dot rather than raising, and a single point (a
    fresh ledger, a just-migrated ``BENCH_*.json``) renders as one
    mid-height bar — the table column stays well-formed while history
    accumulates.
    """
    if not values:
        return "·"
    return sparkline(values[-width:])


def series_sparklines(series_list: list[Series], *,
                      zero_based: bool = True) -> str:
    """One labelled sparkline per series, shared scale across the set."""
    if not series_list:
        raise ExperimentError("no series to render")
    all_values = [v for s in series_list for v in s.y]
    lo = 0.0 if zero_based else min(all_values)
    hi = max(all_values)
    width = max(len(s.name) for s in series_list)
    lines = []
    for series in series_list:
        lines.append(f"{series.name.rjust(width)}  "
                     f"{sparkline(series.y, lo=lo, hi=hi)}  "
                     f"max={series.max_y:.3g}")
    return "\n".join(lines)
