"""Named data series — the unit of every reproduced figure."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ExperimentError


@dataclass
class Series:
    """One curve: a name, x values, y values, and unit labels."""

    name: str
    x: list[float] = field(default_factory=list)
    y: list[float] = field(default_factory=list)
    x_label: str = "x"
    y_label: str = "y"

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ExperimentError(
                f"series {self.name!r}: {len(self.x)} x values vs "
                f"{len(self.y)} y values")

    def append(self, x: float, y: float) -> None:
        self.x.append(x)
        self.y.append(y)

    def __len__(self) -> int:
        return len(self.x)

    def y_at(self, x: float) -> float:
        """The y value recorded at exactly ``x``."""
        for xi, yi in zip(self.x, self.y):
            if xi == x:
                return yi
        raise ExperimentError(f"series {self.name!r} has no point x={x}")

    @property
    def peak(self) -> tuple[float, float]:
        """(x, y) of the maximum y."""
        if not self.y:
            raise ExperimentError(f"series {self.name!r} is empty")
        index = max(range(len(self.y)), key=lambda i: self.y[i])
        return self.x[index], self.y[index]

    @property
    def max_y(self) -> float:
        return self.peak[1]

    def scaled(self, factor: float, name: str | None = None) -> "Series":
        """A copy with every y multiplied by ``factor``."""
        return Series(name or self.name, list(self.x),
                      [value * factor for value in self.y],
                      x_label=self.x_label, y_label=self.y_label)

    def normalized_to(self, reference: float,
                      name: str | None = None) -> "Series":
        """y values divided by ``reference`` (Fig 8 right is normalized)."""
        if reference == 0:
            raise ExperimentError("cannot normalize to zero")
        return self.scaled(1.0 / reference, name=name)

    def is_monotone_increasing(self, tolerance: float = 0.0) -> bool:
        """True if y never drops by more than ``tolerance`` (relative)."""
        for before, after in zip(self.y, self.y[1:]):
            if after < before * (1.0 - tolerance):
                return False
        return True
