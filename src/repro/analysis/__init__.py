"""Result containers, table rendering, shape checks, and the §6 advisor.

* :class:`~repro.analysis.series.Series` — one named curve (the unit
  every figure is made of);
* :mod:`~repro.analysis.tables` — fixed-width text tables, the library's
  output format (we print the same rows/series the paper plots);
* :mod:`~repro.analysis.compare` — "shape checks": machine-checkable
  statements like *CXL pointer chase is 3.7x DDR5-L8* used by the
  integration tests and EXPERIMENTS.md;
* :mod:`~repro.analysis.guidelines` — the §6 best-practice advisor.
"""

from .series import Series
from .tables import format_table, series_table
from .compare import ShapeCheck, check_monotone, check_peak_near, check_ratio

__all__ = [
    "Series",
    "format_table",
    "series_table",
    "ShapeCheck",
    "check_ratio",
    "check_monotone",
    "check_peak_near",
]
