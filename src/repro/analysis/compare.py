"""Shape checks: machine-verifiable statements about reproduced figures.

EXPERIMENTS.md records, for every figure, the paper's qualitative claim
and our measured value; these helpers make those claims executable so
integration tests and the experiment runner can assert them.
"""

from __future__ import annotations

from dataclasses import dataclass

from .series import Series


@dataclass(frozen=True)
class ShapeCheck:
    """One verified (or failed) claim about a result."""

    claim: str
    passed: bool
    measured: str

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return f"[{status}] {self.claim} (measured: {self.measured})"


def check_ratio(claim: str, numerator: float, denominator: float,
                expected: float, tolerance: float) -> ShapeCheck:
    """Check ``numerator/denominator ~= expected`` within ± tolerance."""
    if denominator == 0:
        return ShapeCheck(claim, False, "denominator is zero")
    ratio = numerator / denominator
    passed = abs(ratio - expected) <= tolerance
    return ShapeCheck(claim, passed, f"ratio={ratio:.2f} vs {expected:.2f}"
                                     f"±{tolerance:.2f}")


def check_monotone(claim: str, series: Series,
                   tolerance: float = 0.0) -> ShapeCheck:
    """Check a series never decreases (beyond a relative tolerance)."""
    passed = series.is_monotone_increasing(tolerance)
    return ShapeCheck(claim, passed,
                      f"{series.name}: y={['%.3g' % v for v in series.y]}")


def check_peak_near(claim: str, series: Series, expected_x: float,
                    slack: float) -> ShapeCheck:
    """Check the series peaks within ``slack`` of ``expected_x``."""
    peak_x, peak_y = series.peak
    passed = abs(peak_x - expected_x) <= slack
    return ShapeCheck(claim, passed,
                      f"peak at x={peak_x:g} (y={peak_y:.3g}), expected "
                      f"x={expected_x:g}±{slack:g}")


def check_ordering(claim: str, values: dict[str, float]) -> ShapeCheck:
    """Check the dict's values are strictly increasing in insertion order."""
    items = list(values.items())
    passed = all(a[1] < b[1] for a, b in zip(items, items[1:]))
    measured = " < ".join(f"{k}={v:.3g}" for k, v in items)
    return ShapeCheck(claim, passed, measured)
